"""Recursive-descent parser for the Strand dialect.

Grammar (operator precedence, loosest first)::

    program   :=  clause*
    clause    :=  head [ ':-' goals [ '|' goals ] ] '.'
    goals     :=  goal ( (','|'&') goal )*
    goal      :=  annot
    annot     :=  assign ( '@' assign )*          -- placement / pragma
    assign    :=  compare [ (':='|'is'|'=') compare ]
    compare   :=  additive [ ('<'|'>'|'=<'|'>='|'=='|'\\=='|'=\\=') additive ]
    additive  :=  multipl ( ('+'|'-') multipl )*
    multipl   :=  unary ( ('*'|'/'|'//'|'mod') unary )*
    unary     :=  '-' unary | primary
    primary   :=  number | string | variable | list | tuple
               |  atom [ '(' goals… no — '(' term ( ',' term )* ')' ]
               |  '(' goal ')'

The commit bar ``|`` is recognized only at clause top level; inside ``[...]``
it is list-tail punctuation.  ``&`` (Strand's sequential-and) is accepted as
a goal separator; the dataflow semantics of this dialect make the
distinction unobservable, so it is treated like ``,``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Cons, NIL, Struct, Term, Tup, Var
from repro.strand.tokenizer import Token, tokenize

__all__ = ["parse_program", "parse_term", "parse_rule", "parse_query"]

_COMPARE_OPS = {"<", ">", "=<", ">=", "==", "\\==", "=\\=", "=:="}
_ASSIGN_OPS = {":=", "=", "is"}
_ADD_OPS = {"+", "-"}
_MUL_OPS = {"*", "/", "//", "mod"}


class _Parser:
    def __init__(self, tokens: list[Token], source_name: str):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name
        # Variables scope per clause: same name -> same Var object.
        self.varmap: dict[str, Var] = {}

    # -- token plumbing ----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def at_punct(self, *texts: str) -> bool:
        tok = self.peek()
        return tok.kind == "punct" and tok.text in texts

    def at_atom(self, *names: str) -> bool:
        tok = self.peek()
        return tok.kind == "atom" and tok.text in names

    def expect(self, text: str) -> Token:
        tok = self.next()
        if not (tok.kind == "punct" and tok.text == text):
            raise ParseError(
                f"expected {text!r} but found {tok.text!r} in {self.source_name}",
                tok.line,
                tok.column,
            )
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message} in {self.source_name}", tok.line, tok.column)

    # -- grammar -----------------------------------------------------------
    def program(self, name: str) -> Program:
        rules: list[Rule] = []
        while self.peek().kind != "eof":
            rules.append(self.clause())
        return Program(rules, name=name)

    def clause(self) -> Rule:
        self.varmap = {}
        head = self.primary()
        if isinstance(head, Atom):
            head = Struct(head.name, ())  # zero-arity head like `halt.`
        if not isinstance(head, Struct):
            raise self.error(f"rule head must be a structure, got {head!r}")
        guards: list[Term] = []
        body: list[Term] = []
        if self.at_punct(":-"):
            self.next()
            first = self.goal_list()
            if self.at_punct("|"):
                self.next()
                guards = first
                body = self.goal_list()
            else:
                body = first
        self.expect(".")
        return Rule(head, guards, body)

    def goal_list(self) -> list[Term]:
        goals = [self.goal()]
        while self.at_punct(",", "&"):
            self.next()
            goals.append(self.goal())
        return goals

    def goal(self) -> Term:
        return self.annot()

    def annot(self) -> Term:
        left = self.assign()
        while self.at_punct("@"):
            self.next()
            right = self.assign()
            left = Struct("@", (left, right))
        return left

    def assign(self) -> Term:
        left = self.compare()
        if self.at_punct(":=", "=") or self.at_atom("is"):
            op = self.next().text
            right = self.compare()
            # `=` and `is` are accepted as spellings of assignment; the
            # paper itself uses both `:=` and `=` (Figure 2 Part A).
            functor = ":=" if op in (":=", "=", "is") else op
            return Struct(functor, (left, right))
        return left

    def compare(self) -> Term:
        left = self.additive()
        if self.at_punct(*_COMPARE_OPS):
            op = self.next().text
            right = self.additive()
            return Struct(op, (left, right))
        return left

    def additive(self) -> Term:
        left = self.multiplicative()
        while self.at_punct(*_ADD_OPS):
            op = self.next().text
            right = self.multiplicative()
            left = Struct(op, (left, right))
        return left

    def multiplicative(self) -> Term:
        left = self.unary()
        while self.at_punct(*(_MUL_OPS - {"mod"})) or self.at_atom("mod"):
            op = self.next().text
            right = self.unary()
            left = Struct(op, (left, right))
        return left

    def unary(self) -> Term:
        if self.at_punct("-"):
            tok = self.next()
            operand = self.unary()
            if isinstance(operand, (int, float)):
                return -operand
            return Struct("-", (0, operand))
        return self.primary()

    def primary(self) -> Term:
        tok = self.next()
        if tok.kind == "int":
            return int(tok.text)
        if tok.kind == "float":
            return float(tok.text)
        if tok.kind == "string":
            return tok.text
        if tok.kind == "var":
            if tok.text == "_":
                return Var("_")  # each `_` is a distinct variable
            var = self.varmap.get(tok.text)
            if var is None:
                var = Var(tok.text)
                self.varmap[tok.text] = var
            return var
        if tok.kind == "atom":
            if self.at_punct("("):
                self.next()
                args = [self.goal()]
                while self.at_punct(","):
                    self.next()
                    args.append(self.goal())
                self.expect(")")
                return Struct(tok.text, args)
            return Atom(tok.text)
        if tok.kind == "punct":
            if tok.text == "(":
                inner = self.goal()
                self.expect(")")
                return inner
            if tok.text == "[":
                return self.list_tail()
            if tok.text == "{":
                if self.at_punct("}"):
                    self.next()
                    return Tup(())
                args = [self.goal()]
                while self.at_punct(","):
                    self.next()
                    args.append(self.goal())
                self.expect("}")
                return Tup(args)
        raise ParseError(
            f"unexpected token {tok.text!r} in {self.source_name}", tok.line, tok.column
        )

    def list_tail(self) -> Term:
        if self.at_punct("]"):
            self.next()
            return NIL
        items = [self.goal()]
        while self.at_punct(","):
            self.next()
            items.append(self.goal())
        tail: Term = NIL
        if self.at_punct("|"):
            self.next()
            tail = self.goal()
        self.expect("]")
        result = tail
        for item in reversed(items):
            result = Cons(item, result)
        return result


def parse_program(source: str, name: str = "program") -> Program:
    """Parse Strand source text into a :class:`Program`."""
    return _Parser(tokenize(source), name).program(name)


def parse_rule(source: str) -> Rule:
    """Parse a single clause (ending with ``.``)."""
    parser = _Parser(tokenize(source), "rule")
    rule = parser.clause()
    if parser.peek().kind != "eof":
        raise parser.error("trailing input after rule")
    return rule


def parse_query(source: str) -> tuple[list[Term], dict[str, Var]]:
    """Parse a comma-separated goal conjunction (no trailing ``.``).

    Returns the goals plus the name→variable map, so callers can read
    answer bindings after a run.
    """
    parser = _Parser(tokenize(source), "query")
    goals = parser.goal_list()
    if parser.peek().kind != "eof":
        raise parser.error("trailing input after query")
    return goals, dict(parser.varmap)


def parse_term(source: str) -> Term:
    """Parse a single term (no trailing ``.``); variable names share scope."""
    parser = _Parser(tokenize(source), "term")
    term = parser.goal()
    if parser.peek().kind != "eof":
        raise parser.error("trailing input after term")
    return term
