"""Program representation: rules, procedures, programs.

A Strand program is a collection of guarded rules

    H :- G1, ..., Gm | B1, ..., Bn.

grouped into *procedures* by the head's name/arity.  Programs are plain data
(terms), which is what makes the paper's source-to-source transformations
possible: "Programs are represented as structured terms and transformations
as programs that manipulate these terms" (§2.2).

``Program.union`` implements the ``T(A) ∪ L`` step of motif application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import MotifError
from repro.strand.terms import Cons, Struct, Term, Tup, Var, deref, rename_term

__all__ = ["Rule", "Procedure", "Program", "rule_key"]


def _canon(term: Term, numbering: dict[int, int]) -> tuple:
    """A hashable canonical form with variables numbered by first
    occurrence, so two renamings of one rule produce equal keys."""
    term = deref(term)
    tt = type(term)
    if tt is Var:
        index = numbering.get(id(term))
        if index is None:
            index = len(numbering)
            numbering[id(term)] = index
        return ("v", index)
    if tt is Struct:
        return ("f", term.functor,
                tuple(_canon(a, numbering) for a in term.args))
    if tt is Tup:
        return ("t", tuple(_canon(a, numbering) for a in term.args))
    if tt is Cons:
        return ("c", _canon(term.head, numbering), _canon(term.tail, numbering))
    if hasattr(term, "name"):  # Atom
        return ("a", term.name)
    return ("k", type(term).__name__, term)


def rule_key(rule: "Rule") -> tuple:
    """Structural identity of a rule modulo variable naming.

    Motif application compares output rules against input rules with this
    key to decide which rules a transformation actually *rewrote* — those
    get stamped with the transforming motif's name (see
    :meth:`repro.core.motif.Motif._apply_impl`).
    """
    numbering: dict[int, int] = {}
    return (
        _canon(rule.head, numbering),
        tuple(_canon(g, numbering) for g in rule.guards),
        tuple(_canon(b, numbering) for b in rule.body),
    )


@dataclass
class Rule:
    """One guarded rule.  ``guards`` may be empty (guard ``true``); ``body``
    may be empty (a fact, e.g. ``consumer([]).``).

    ``motif`` is the rule's provenance tag: the name of the motif layer
    whose library or transformation produced it, or ``None`` for rules the
    application programmer wrote.  Stamped during motif application (see
    :mod:`repro.core.motif`) and carried through copies, it is what lets
    traces and profiles attribute runtime cost back to a motif layer.
    """

    head: Struct
    guards: list[Term] = field(default_factory=list)
    body: list[Term] = field(default_factory=list)
    motif: str | None = None

    @property
    def indicator(self) -> tuple[str, int]:
        return self.head.indicator

    def rename(self) -> "Rule":
        """A copy of the rule with fresh variables (consistent across
        head, guards and body); provenance is preserved."""
        mapping: dict = {}
        head = rename_term(self.head, mapping)
        guards = [rename_term(g, mapping) for g in self.guards]
        body = [rename_term(b, mapping) for b in self.body]
        return Rule(head, guards, body, motif=self.motif)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.strand.pretty import format_rule

        return format_rule(self)


@dataclass
class Procedure:
    """All rules sharing one head name/arity (``p/k`` in the paper)."""

    name: str
    arity: int
    rules: list[Rule] = field(default_factory=list)

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)

    def add(self, rule: Rule) -> None:
        if rule.indicator != self.indicator:
            raise ValueError(
                f"rule for {rule.indicator} added to procedure {self.indicator}"
            )
        self.rules.append(rule)


class Program:
    """A set of procedures, ordered by first definition.

    Supports the operations motifs need: lookup, iteration, structural
    copies, and union (with collision detection, because silently merging two
    different definitions of the same procedure is how composition bugs
    hide).
    """

    def __init__(self, rules: Iterable[Rule] = (), name: str = "program"):
        self.name = name
        self._procs: dict[tuple[str, int], Procedure] = {}
        # Bumped on every structural change; compiled artifacts (symbol
        # tables, rule indexes) are cached against this stamp.
        self._version = 0
        for rule in rules:
            self.add_rule(rule)

    @property
    def version(self) -> int:
        """Monotone structural-modification counter (cache invalidation)."""
        return self._version

    def __getstate__(self):
        # Compiled artifacts are cached as dynamic attributes keyed on the
        # version stamp; they hold closures and are rebuilt on demand, so
        # they must not (and cannot) cross process boundaries when the
        # parallel backend ships programs to workers.
        state = self.__dict__.copy()
        state.pop("_symbol_cache", None)
        state.pop("_compiled_cache", None)
        return state

    # -- construction -----------------------------------------------------
    def add_rule(self, rule: Rule) -> None:
        key = rule.indicator
        proc = self._procs.get(key)
        if proc is None:
            proc = Procedure(key[0], key[1])
            self._procs[key] = proc
        proc.add(rule)
        self._version += 1

    def add_procedure(self, proc: Procedure) -> None:
        if proc.indicator in self._procs:
            raise MotifError(f"procedure {_fmt(proc.indicator)} already defined")
        self._procs[proc.indicator] = proc
        self._version += 1

    # -- queries -----------------------------------------------------------
    def procedure(self, name: str, arity: int) -> Procedure | None:
        return self._procs.get((name, arity))

    def __contains__(self, indicator: tuple[str, int]) -> bool:
        return indicator in self._procs

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self._procs.values())

    def __len__(self) -> int:
        return len(self._procs)

    @property
    def indicators(self) -> list[tuple[str, int]]:
        return list(self._procs.keys())

    def rules(self) -> Iterator[Rule]:
        for proc in self._procs.values():
            yield from proc.rules

    def rule_count(self) -> int:
        return sum(len(p.rules) for p in self._procs.values())

    def goal_count(self) -> int:
        return sum(len(r.guards) + len(r.body) for r in self.rules())

    # -- transformation support ---------------------------------------------
    def copy(self, name: str | None = None) -> "Program":
        """A deep structural copy with fresh variables, so transformations
        never mutate their input program."""
        out = Program(name=name or self.name)
        for rule in self.rules():
            out.add_rule(rule.rename())
        return out

    def union(self, other: "Program", name: str | None = None) -> "Program":
        """``self ∪ other`` — motif application's linking step.

        Raises :class:`MotifError` if both programs define the same
        procedure (the paper's libraries and applications have disjoint
        procedure sets by construction).
        """
        out = self.copy(name=name or f"{self.name}+{other.name}")
        for proc in other:
            if proc.indicator in out._procs:
                raise MotifError(
                    f"procedure {_fmt(proc.indicator)} defined by both "
                    f"{self.name!r} and {other.name!r}"
                )
            for rule in proc.rules:
                out.add_rule(rule.rename())
        return out

    def replace_procedure(self, proc: Procedure) -> None:
        """Overwrite (or add) a procedure — used by transformations that
        rewrite whole procedures in place on their working copy."""
        self._procs[proc.indicator] = proc
        self._version += 1

    def remove_procedure(self, name: str, arity: int) -> None:
        self._procs.pop((name, arity), None)
        self._version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program({self.name!r}, {self.rule_count()} rules)"

    def pretty(self) -> str:
        from repro.strand.pretty import format_program

        return format_program(self)


def _fmt(indicator: tuple[str, int]) -> str:
    return f"{indicator[0]}/{indicator[1]}"
