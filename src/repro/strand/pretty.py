"""Pretty-printer for terms, rules, and programs.

The printer round-trips with the parser (``parse(format(x)) == x`` up to
variable renaming); this is tested property-style, and it is what lets a
motif's output be *read* — the paper's whole argument is that motif
libraries should be legible artifacts.

Within one rule, distinct variables are guaranteed distinct printed names
(and ``_`` is reserved for variables occurring exactly once), so that
re-parsing the text reconstructs the same sharing structure.
"""

from __future__ import annotations

from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Cons, NIL, Struct, Term, Tup, Var, deref

__all__ = ["format_term", "format_rule", "format_program", "format_goal"]

# Operators printed infix, with their precedence (higher binds tighter).
_INFIX = {
    "@": 1,
    ":=": 2,
    "<": 3,
    ">": 3,
    "=<": 3,
    ">=": 3,
    "==": 3,
    "\\==": 3,
    "=\\=": 3,
    "=:=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "//": 5,
    "mod": 5,
}

_LOWER = set("abcdefghijklmnopqrstuvwxyz")


def _atom_needs_quotes(name: str) -> bool:
    if not name:
        return True
    if name[0] not in _LOWER:
        return True
    return not all(c.isalnum() or c == "_" for c in name)


class _VarNames:
    """Assigns collision-free display names to variables within one scope."""

    def __init__(self) -> None:
        self.names: dict[int, str] = {}
        self.used: set[str] = set()

    def name_of(self, var: Var) -> str:
        key = id(var)
        name = self.names.get(key)
        if name is not None:
            return name
        base = var.name or "_V"
        if base == "_":
            base = "_U"
        if not (base[0].isupper() or base[0] == "_"):
            base = "_" + base
        name = base
        i = 1
        while name in self.used:
            i += 1
            name = f"{base}{i}"
        self.used.add(name)
        self.names[key] = name
        return name


def format_term(term: Term, parent_prec: int = 0, names: _VarNames | None = None) -> str:
    """Render a term in concrete syntax."""
    if names is None:
        names = _VarNames()
    term = deref(term)
    t = type(term)
    if t is Var:
        return names.name_of(term)
    if t is Atom:
        if term is NIL:
            return "[]"
        name = term.name
        if _atom_needs_quotes(name):
            escaped = name.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return name
    if t is int or t is float:
        if term < 0:
            return f"({term})" if parent_prec > 0 else str(term)
        return str(term)
    if t is str:
        escaped = term.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if t is Cons:
        return _format_list(term, names)
    if t is Tup:
        inner = ", ".join(format_term(a, 0, names) for a in term.args)
        return "{" + inner + "}"
    if t is Struct:
        prec = _INFIX.get(term.functor)
        if prec is not None and len(term.args) == 2:
            left = format_term(term.args[0], prec, names)
            right = format_term(term.args[1], prec + 1, names)
            text = f"{left} {term.functor} {right}"
            if prec < parent_prec:
                return f"({text})"
            return text
        name = term.functor
        if _atom_needs_quotes(name):
            escaped = name.replace("\\", "\\\\").replace("'", "\\'")
            name = f"'{escaped}'"
        if not term.args:
            return name
        inner = ", ".join(format_term(a, 0, names) for a in term.args)
        return f"{name}({inner})"
    # Opaque runtime objects (ports, foreign handles) appearing in error
    # messages: render as a quoted atom so the output stays parseable-ish.
    escaped = repr(term).replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def _format_list(term: Term, names: _VarNames) -> str:
    items: list[str] = []
    term = deref(term)
    while type(term) is Cons:
        items.append(format_term(term.head, 0, names))
        term = deref(term.tail)
    if term is NIL:
        return "[" + ", ".join(items) + "]"
    return "[" + ", ".join(items) + " | " + format_term(term, 0, names) + "]"


def format_goal(goal: Term) -> str:
    return format_term(goal)


def format_rule(rule: Rule) -> str:
    """Render one rule; bodies longer than two goals go one-per-line."""
    names = _VarNames()
    head = format_term(rule.head, 0, names)
    if not rule.guards and not rule.body:
        return f"{head}."
    lines: list[str] = []
    if rule.guards:
        lines.append(", ".join(format_term(g, 0, names) for g in rule.guards) + " |")
    if rule.body:
        if len(rule.body) > 2:
            lines.append(",\n    ".join(format_term(b, 0, names) for b in rule.body))
        else:
            lines.append(", ".join(format_term(b, 0, names) for b in rule.body))
    joined = "\n    ".join(lines)
    return f"{head} :-\n    {joined}."


def format_program(program: Program) -> str:
    """Render a whole program, one procedure per block."""
    blocks: list[str] = []
    for proc in program:
        lines = [format_rule(rule) for rule in proc.rules]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + ("\n" if blocks else "")
