"""The discrete-event scheduler half of the runtime core.

The seed engine held scheduling state (event heap, per-processor ready
queues, the suspension table) and reduction logic (rule selection, builtin
and foreign dispatch) in one class, and ``machine/`` and ``strand/`` reached
into each other's internals through it.  The split runtime gives each half
one job: the :class:`Scheduler` owns *when and where* a process runs — the
event heap ordering processors by next-executable time, per-processor heaps
ordering processes by readiness, suspension/wakeup, quiescence detection and
deadlock reporting — while the reducer (see :mod:`repro.strand.reducer`)
owns *what one reduction does*.

Everything is deterministic given the machine seed: ties break on a
monotone sequence number issued here.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.errors import DeadlockError, StrandError
from repro.machine.simulator import Machine
from repro.strand.terms import Struct, Var, deref

__all__ = ["Process", "Scheduler", "RUNNABLE", "SUSPENDED", "DONE"]

RUNNABLE = 0
SUSPENDED = 1
DONE = 2


class Process:
    """One lightweight process: a goal plus scheduling state.

    ``blocked_on`` holds the variables the process last suspended on (None
    while runnable) — deadlock reports read it to say *why* each stuck
    process is stuck.

    ``cause_evt`` is the trace event id that made the process runnable (its
    spawn, or the latest wake) — the causal context every event recorded
    during its reduction links back to.  ``motif`` is the provenance tag of
    the procedure the goal calls (``None`` for user code); both stay at
    their defaults when observability is off.
    """

    __slots__ = ("goal", "proc", "ready", "state", "seq", "lib", "watched",
                 "blocked_on", "cause_evt", "motif")

    def __init__(self, goal: Struct, proc: int, ready: float, seq: int,
                 lib: bool, watched: bool):
        self.goal = goal
        self.proc = proc
        self.ready = ready
        self.state = RUNNABLE
        self.seq = seq
        self.lib = lib
        self.watched = watched
        self.blocked_on: list[Var] | None = None
        self.cause_evt = 0
        self.motif: str | None = None

    def describe(self) -> str:
        from repro.strand.pretty import format_term

        return f"p{self.proc}: {format_term(self.goal)}"


class Scheduler:
    """Event heap + per-processor queues + the suspension table.

    ``run`` drives the loop, delegating each reduction attempt to an
    ``execute(process, now) -> cost | None`` callback and quiescence policy
    to an ``on_quiesce() -> bool`` callback (the engine decides whether
    closing ports may release the remaining suspensions).
    """

    def __init__(self, machine: Machine, max_reductions: int):
        self.machine = machine
        size = machine.size
        self.queues: list[list] = [[] for _ in range(size)]
        self.events: list = []
        # One live event marker per processor (None = none outstanding).
        self.event_time: list[float | None] = [None] * size
        # Timed callbacks — ``(time, seq, fn)`` — interleaved with the event
        # heap in virtual-time order (timer first on ties).  Crash events
        # and supervision timeouts (``after/2``) both live here, so failure
        # injection and failure *handling* share one deterministic clock.
        self.timers: list = []
        self.seq = 0
        self.suspended: dict[int, Process] = {}
        # Processes that were suspended on a processor when it crashed:
        # removed from the suspension table (they will never run) but kept
        # for the deadlock report, which names them as the likely reason
        # other processes are stuck.
        self.orphans: list[Process] = []
        self.live = 0
        self.max_reductions = max_reductions
        self.reduction_budget = max_reductions

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def push(self, process) -> None:
        vp = self.machine.procs[process.proc - 1]
        if not vp.alive:
            # Fail-stop: work destined for a crashed processor is lost.
            process.state = DONE
            self.live -= 1
            self.machine.fault_stats.processes_abandoned += 1
            return
        heappush(self.queues[process.proc - 1], (process.ready, process.seq, process))
        self.schedule(process.proc, max(process.ready, vp.clock))

    def add_timer(self, time: float, fn: Callable[[float], None]) -> None:
        """Arm a callback at virtual time ``time``; ``fn(now)`` runs before
        any reduction scheduled at a later time (and before reductions at
        the same time).  Callbacks are charged no cost, so a timer that has
        nothing to do (e.g. an ``after/2`` whose probe is already bound)
        never inflates the makespan."""
        heappush(self.timers, (time, self.next_seq(), fn))

    def schedule(self, pnum: int, time: float) -> None:
        """Ensure the event heap holds a marker for processor ``pnum`` at or
        before ``time``.  One live marker per processor keeps the heap
        O(P + transitions) instead of O(runnable × clock-advances)."""
        current = self.event_time[pnum - 1]
        if current is None or time < current:
            self.event_time[pnum - 1] = time
            heappush(self.events, (time, self.next_seq(), pnum))

    def schedule_from_queue(self, pnum: int) -> None:
        queue = self.queues[pnum - 1]
        if queue:
            clock = self.machine.procs[pnum - 1].clock
            self.schedule(pnum, max(queue[0][0], clock))

    # ------------------------------------------------------------------
    # Suspension and wakeup
    # ------------------------------------------------------------------
    def suspend(self, process: Process, variables: list[Var],
                now: float = 0.0) -> None:
        if not variables:
            raise StrandError(f"process suspended on no variables: {process.describe()}")
        real = []
        seen: set[int] = set()
        for var in variables:
            var = deref(var)
            if type(var) is not Var or id(var) in seen:
                continue
            seen.add(id(var))
            real.append(var)
        if not real:
            # Every blocker got bound while we were deciding — retry soon.
            process.ready = now
            self.push(process)
            return
        process.state = SUSPENDED
        process.blocked_on = real
        self.suspended[id(process)] = process
        for var in real:
            if var.waiters is None:
                var.waiters = []
            var.waiters.append(process)
        vp = self.machine.procs[process.proc - 1]
        vp.suspensions += 1
        trace = self.machine.trace
        if trace.enabled:
            trace.record(now, process.proc, "suspend",
                         process.goal.functor,
                         motif=process.motif or "")

    def wake(self, waiters: list, binder_proc: int, now: float,
             cause: int | None = None) -> None:
        """Wake suspended waiters.  ``cause`` is the trace event id of the
        binding that released them (``None`` = current causal context); the
        wake event becomes each process's new causal context."""
        machine = self.machine
        procs = machine.procs
        trace = machine.trace
        for process in waiters:
            if process.state != SUSPENDED:
                continue
            process.state = RUNNABLE
            process.blocked_on = None
            self.suspended.pop(id(process), None)
            if binder_proc != process.proc:
                latency = machine.latency(binder_proc, process.proc)
                vp = procs[binder_proc - 1]
                vp.remote_bindings += 1
                vp.hops += machine.hops(binder_proc, process.proc)
            else:
                latency = 0.0
            process.ready = now + latency
            procs[process.proc - 1].wakeups += 1
            self.push(process)
            if trace.enabled:
                eid = trace.record(now, process.proc, "wake",
                                   process.goal.functor, cause=cause,
                                   motif=process.motif or "")
                if eid:
                    process.cause_evt = eid

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, execute: Callable, on_quiesce: Callable[[], bool]) -> None:
        """Run until the pool drains.  Raises :class:`DeadlockError` if
        suspended processes remain after ``on_quiesce`` declines to release
        them, and propagates reducer errors unchanged."""
        while True:
            self.drain(execute)
            if not self.suspended:
                break
            if not on_quiesce():
                self.deadlock()

    def next_time(self) -> float | None:
        """Earliest pending virtual time (timer or event marker), or ``None``
        when nothing is scheduled.  Markers may be stale, so this is a lower
        bound — good enough for the parallel backend's epoch horizons."""
        best: float | None = None
        if self.timers:
            best = self.timers[0][0]
        if self.events:
            t = self.events[0][0]
            if best is None or t < best:
                best = t
        return best

    def drain(self, execute: Callable, horizon: float | None = None) -> float | None:
        """Process timers and events in virtual-time order.

        With ``horizon=None`` (sequential operation) the loop runs until
        both heaps are empty.  With a horizon (the parallel backend's
        conservative epoch window) items at ``time >= horizon`` are left in
        place and the earliest such pending time is returned — the caller
        barriers there, exchanges cross-shard messages, and resumes with a
        later horizon.  Returns ``None`` once nothing is pending.
        """
        machine = self.machine
        procs = machine.procs
        events = self.events
        queues = self.queues
        event_time = self.event_time
        timers = self.timers
        while events or timers:
            if timers and (not events or timers[0][0] <= events[0][0]):
                time = timers[0][0]
                if horizon is not None and time >= horizon:
                    return time
                _, _, fn = heappop(timers)
                fn(time)
                continue
            time = events[0][0]
            if horizon is not None and time >= horizon:
                return time
            time, _, pnum = heappop(events)
            if event_time[pnum - 1] != time:
                continue  # stale duplicate marker
            event_time[pnum - 1] = None
            queue = queues[pnum - 1]
            if not queue:
                continue
            vp = procs[pnum - 1]
            actual = queue[0][0]
            if vp.clock > actual:
                actual = vp.clock
            if actual > time:
                self.schedule(pnum, actual)
                continue
            _, _, process = heappop(queue)
            if process.state != RUNNABLE:
                self.schedule_from_queue(pnum)
                continue
            self.reduction_budget -= 1
            if self.reduction_budget < 0:
                raise StrandError(
                    f"reduction budget of {self.max_reductions} exhausted "
                    f"(possible runaway recursion)"
                )
            cost = execute(process, actual)
            if cost is None:
                self.schedule_from_queue(pnum)
                continue  # suspended; costs nothing
            vp.clock = actual + cost
            vp.busy += cost
            vp.reductions += 1
            self.schedule_from_queue(pnum)
        return None

    # ------------------------------------------------------------------
    # Processor failure
    # ------------------------------------------------------------------
    def kill_processor(self, pnum: int, now: float,
                       migrate_to: int | None = None) -> None:
        """Fail-stop processor ``pnum`` at virtual time ``now``.

        Runnable processes queued there are abandoned — or, when
        ``migrate_to`` names a live processor, requeued on it after one
        network hop's latency (checkpoint-style recovery).  Suspended
        processes become orphans: removed from the suspension table (no
        binding can ever run them again) and kept for the deadlock report.
        """
        vp = self.machine.procs[pnum - 1]
        if not vp.alive:
            return
        vp.alive = False
        vp.crashed_at = now
        stats = self.machine.fault_stats
        stats.crashes += 1
        trace = self.machine.trace
        # The crash is a causal root; everything it abandons, migrates, or
        # orphans links back to it.
        crash_evt = trace.record(now, pnum, "crash", f"p{pnum}", cause=0)
        # Drain the runnable queue deterministically (readiness, then seq).
        entries = sorted(self.queues[pnum - 1])
        self.queues[pnum - 1] = []
        # Any outstanding event marker becomes stale (None never equals a
        # popped time), so the run loop skips it.
        self.event_time[pnum - 1] = None
        for ready, _seq, process in entries:
            if process.state != RUNNABLE:
                continue
            if migrate_to is not None:
                process.proc = migrate_to
                process.ready = max(ready, now) + self.machine.latency(
                    pnum, migrate_to
                )
                stats.processes_migrated += 1
                eid = trace.record(
                    now, pnum, "fault",
                    f"migrate:{process.goal.functor}->p{migrate_to}",
                    cause=crash_evt,
                )
                if eid:
                    process.cause_evt = eid
                self.push(process)
            else:
                process.state = DONE
                self.live -= 1
                stats.processes_abandoned += 1
                trace.record(now, pnum, "fault",
                             f"abandon:{process.goal.functor}",
                             cause=crash_evt)
        for key, process in list(self.suspended.items()):
            if process.proc == pnum:
                del self.suspended[key]
                process.state = DONE
                self.live -= 1
                self.orphans.append(process)
                stats.orphaned_suspensions += 1
                trace.record(now, pnum, "fault",
                             f"orphan:{process.goal.functor}",
                             cause=crash_evt)

    # ------------------------------------------------------------------
    # Deadlock reporting
    # ------------------------------------------------------------------
    def deadlock(self) -> None:
        """Raise :class:`DeadlockError` listing the suspended processes in a
        deterministic order (processor, then spawn sequence) together with
        the variables each is blocked on."""
        stuck = sorted(self.suspended.values(), key=lambda p: (p.proc, p.seq))
        shown = stuck[:12]
        lines = []
        for process in shown:
            waiting = [
                v.name for v in (process.blocked_on or ())
                if type(deref(v)) is Var
            ]
            suffix = f"  [waiting on {', '.join(waiting)}]" if waiting else ""
            lines.append(process.describe() + suffix)
        more = len(stuck) - len(shown)
        listing = "\n  ".join(lines) + (f"\n  ... and {more} more" if more > 0 else "")
        orphan_note = ""
        if self.orphans:
            lost = sorted(self.orphans, key=lambda p: (p.proc, p.seq))
            names = ", ".join(p.describe() for p in lost[:6])
            extra = len(lost) - min(len(lost), 6)
            orphan_note = (
                f"\n{len(lost)} suspension(s) orphaned by crashed "
                f"processor(s): {names}"
                + (f", ... and {extra} more" if extra > 0 else "")
            )
        raise DeadlockError(
            f"computation deadlocked with {len(stuck)} suspended "
            f"process(es):\n  {listing}" + orphan_note
        )
