"""A small standard library of Strand list utilities.

The paper's libraries constantly re-derive list plumbing (``combine``,
``fill``, ``form_is`` in Figure 3...).  This module collects the common
idioms once, as a linkable library program: ``Program.union(stdlib())``
or ``Motif("std", library=STDLIB_SOURCE)``.

Everything is written in the dialect itself — the "archive of expertise"
idea applied to the smallest scale.
"""

from __future__ import annotations

from repro.strand.parser import parse_program
from repro.strand.program import Program

__all__ = ["STDLIB_SOURCE", "stdlib"]

STDLIB_SOURCE = """
% append_list(Xs, Ys, Zs): Zs is Xs ++ Ys (incremental: Zs streams out
% while Xs is still being produced).
append_list([X | Xs], Ys, Zs) :-
    Zs := [X | Zs1],
    append_list(Xs, Ys, Zs1).
append_list([], Ys, Zs) :- Zs := Ys.

% reverse_list(Xs, Ys): naive-free accumulator reversal.
reverse_list(Xs, Ys) :- rev_acc(Xs, [], Ys).
rev_acc([X | Xs], Acc, Ys) :- rev_acc(Xs, [X | Acc], Ys).
rev_acc([], Acc, Ys) :- Ys := Acc.

% list_length(Xs, N): distinct from the length/2 builtin in that it is
% pure Strand (and therefore transformable like any user code).
list_length(Xs, N) :- len_acc(Xs, 0, N).
len_acc([_ | Xs], Acc, N) :- Acc1 := Acc + 1, len_acc(Xs, Acc1, N).
len_acc([], Acc, N) :- N := Acc.

% nth_item(I, Xs, X): 1-based list indexing.
nth_item(1, [X | _], Out) :- Out := X.
nth_item(I, [_ | Xs], Out) :- I > 1 |
    I1 := I - 1,
    nth_item(I1, Xs, Out).

% member_check(X, Xs, Flag): Flag := yes/no for ground X and list items.
member_check(X, [Y | _], Flag) :- X == Y | Flag := yes.
member_check(X, [Y | Ys], Flag) :- X \\== Y | member_check(X, Ys, Flag).
member_check(_, [], Flag) :- Flag := no.

% sum_list / max_list over numbers.
sum_list(Xs, Sum) :- sum_acc(Xs, 0, Sum).
sum_acc([X | Xs], Acc, Sum) :- Acc1 := Acc + X, sum_acc(Xs, Acc1, Sum).
sum_acc([], Acc, Sum) :- Sum := Acc.

max_list([X | Xs], Max) :- max_acc(Xs, X, Max).
max_acc([X | Xs], Best, Max) :- X > Best | max_acc(Xs, X, Max).
max_acc([X | Xs], Best, Max) :- X =< Best | max_acc(Xs, Best, Max).
max_acc([], Best, Max) :- Max := Best.

% take_n / drop_n.
take_n(N, [X | Xs], Out) :- N > 0 |
    Out := [X | Out1],
    N1 := N - 1,
    take_n(N1, Xs, Out1).
take_n(0, _, Out) :- Out := [].
take_n(N, [], Out) :- N > 0 | Out := [].

drop_n(N, [_ | Xs], Out) :- N > 0 |
    N1 := N - 1,
    drop_n(N1, Xs, Out).
drop_n(0, Xs, Out) :- Out := Xs.
drop_n(N, [], Out) :- N > 0 | Out := [].

% zip_lists(Xs, Ys, Pairs): pair(X, Y) entries, ending with the shorter.
zip_lists([X | Xs], [Y | Ys], Out) :-
    Out := [pair(X, Y) | Out1],
    zip_lists(Xs, Ys, Out1).
zip_lists([], _, Out) :- Out := [].
zip_lists(_, [], Out) :- Out := [].

% range_list(Lo, Hi, Out): [Lo, Lo+1, ..., Hi].
range_list(Lo, Hi, Out) :- Lo =< Hi |
    Out := [Lo | Out1],
    Lo1 := Lo + 1,
    range_list(Lo1, Hi, Out1).
range_list(Lo, Hi, Out) :- Lo > Hi | Out := [].
"""

_cached: Program | None = None


def stdlib() -> Program:
    """The parsed standard library (cached; callers get copies via union)."""
    global _cached
    if _cached is None:
        _cached = parse_program(STDLIB_SOURCE, name="stdlib")
    return _cached
