"""The compile layer between :class:`Program` and the runtime.

The paper's pitch is that a motif's output "is itself a program" cheap
enough to run everywhere (§2.1).  The seed interpreter took that literally:
every reduction re-scanned the procedure's rule list, re-dispatched on the
shape of every head pattern, and rebuilt every body goal by interpreting the
rule term.  This module inserts the compile/link stage that skeleton systems
in the related literature all have: a :class:`CompiledProgram` is built once
per :class:`Program` (cached against the program's version stamp) and the
scheduler/reducer core consumes only the compiled form.

Three things are precompiled per rule:

* **head-match plans** — each head argument pattern becomes a closure tree
  built once, so matching does no per-reduction dispatch on pattern shape;
* **guard plans** — each guard becomes a closure over the match environment
  (comparisons, type tests, ``==``/``\\==``, ``known``, ``otherwise``);
* **body templates** — each body goal becomes a builder closure replacing
  the interpretive ``instantiate`` walk (ground subterms are shared).

Per procedure, rules are bucketed by **first-argument principal functor**
(order-preserving first-argument indexing).  Committed choice must commit on
the first *textually* matching rule, so buckets preserve textual order and
rules whose first head argument is a variable appear in every bucket; a goal
whose first argument is unbound considers the full rule list.  Skipping a
rule is sound only when its head could neither match *nor suspend* — which
is exactly the rules whose first pattern has a different principal functor
from the goal's (already bound) first argument.

:class:`SymbolTable` is the shared interned name/arity view of a program
(indicators, functors, per-procedure callees); the linter, call-graph, and
complexity accounting consume it instead of re-deriving their own maps.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.strand.arith import ArithFail, Suspend, eval_arith
from repro.strand.match import (
    GUARD_TESTS,
    _COMPARISONS,
    _ground_equal,
    _match_values,
)
from repro.strand.program import Procedure, Program, Rule
from repro.strand.terms import Atom, Cons, Struct, Term, Tup, Var, deref

__all__ = [
    "SymbolTable",
    "symbol_table",
    "CompiledRule",
    "CompiledProcedure",
    "CompiledProgram",
    "compile_program",
    "COMPILE_STATS",
    "reset_compile_stats",
]

#: Process-wide compilation counters (observable by tests and benchmarks):
#: ``programs`` counts full compilations, ``hits`` cache reuses, ``rules``
#: total rules compiled.
COMPILE_STATS = {"programs": 0, "hits": 0, "rules": 0, "symbol_tables": 0}


def reset_compile_stats() -> None:
    for key in COMPILE_STATS:
        COMPILE_STATS[key] = 0


# ---------------------------------------------------------------------------
# Interned symbol tables
# ---------------------------------------------------------------------------

class SymbolTable:
    """Interned name/arity view of one program.

    * ``indicators``  — ``(name, arity) -> dense id`` in definition order;
      the *keys* are the canonical interned indicator tuples, so every
      consumer shares one tuple per procedure instead of re-deriving its own;
    * ``functors``    — ``name -> dense id`` over head functors;
    * ``calls``       — per-procedure callee indicators, in rule/body order,
      with placement annotations (``Goal @ Where``) looked through;
    * ``rule_counts`` / ``goal_counts`` — per-procedure sizes (goals counts
      guards + body goals, matching ``Program.goal_count``).
    """

    __slots__ = ("indicators", "functors", "calls", "rule_counts",
                 "goal_counts", "_canon")

    def __init__(self, program: Program):
        COMPILE_STATS["symbol_tables"] += 1
        self._canon: dict[tuple[str, int], tuple[str, int]] = {}
        self.indicators: dict[tuple[str, int], int] = {}
        self.functors: dict[str, int] = {}
        self.calls: dict[tuple[str, int], tuple[tuple[str, int], ...]] = {}
        self.rule_counts: dict[tuple[str, int], int] = {}
        self.goal_counts: dict[tuple[str, int], int] = {}
        for proc in program:
            self._add_procedure(proc)

    def _add_procedure(self, proc: Procedure) -> None:
        indicator = self.intern(proc.name, proc.arity)
        callees: list[tuple[str, int]] = []
        goals = 0
        for rule in proc.rules:
            goals += len(rule.guards) + len(rule.body)
            for goal in rule.body:
                callee = _call_indicator(goal)
                if callee is not None:
                    callees.append(self.intern(*callee))
        self.calls[indicator] = tuple(callees)
        self.rule_counts[indicator] = len(proc.rules)
        self.goal_counts[indicator] = goals

    def intern(self, name: str, arity: int) -> tuple[str, int]:
        """The canonical tuple for ``name/arity`` (registering it if new).
        Every intern of the same pair returns the same tuple object."""
        indicator = (name, arity)
        canon = self._canon.get(indicator)
        if canon is None:
            self._canon[indicator] = indicator
            self.indicators[indicator] = len(self.indicators)
            if name not in self.functors:
                self.functors[name] = len(self.functors)
            canon = indicator
        return canon

    @property
    def defined(self) -> set[tuple[str, int]]:
        """Indicators of procedures defined by the program."""
        return set(self.calls)

    def callees(self, indicator: tuple[str, int]) -> tuple[tuple[str, int], ...]:
        return self.calls.get(indicator, ())

    def total_rules(self) -> int:
        return sum(self.rule_counts.values())

    def total_goals(self) -> int:
        return sum(self.goal_counts.values())

    def __contains__(self, indicator: tuple[str, int]) -> bool:
        return indicator in self.calls

    def __len__(self) -> int:
        return len(self.calls)


def _call_indicator(goal: Term) -> tuple[str, int] | None:
    """``name/arity`` a body goal calls, looking through ``@`` placement."""
    goal = deref(goal)
    while type(goal) is Struct and goal.functor == "@" and len(goal.args) == 2:
        goal = deref(goal.args[0])
    if type(goal) is Struct:
        return (goal.functor, len(goal.args))
    if type(goal) is Atom:
        return (goal.name, 0)
    return None


def symbol_table(program: Program) -> SymbolTable:
    """The program's :class:`SymbolTable`, cached against its version."""
    cached = getattr(program, "_symbol_cache", None)
    if cached is not None and cached[0] == program.version:
        return cached[1]
    table = SymbolTable(program)
    program._symbol_cache = (program.version, table)
    return table


# ---------------------------------------------------------------------------
# Template compilation (body/guard instantiation plans)
# ---------------------------------------------------------------------------

def _term_is_shareable(term: Term) -> bool:
    """Ground and free of mutable cells (``Tup`` is mutated by put_arg)."""
    stack = [term]
    while stack:
        t = deref(stack.pop())
        tt = type(t)
        if tt is Var or tt is Tup:
            return False
        if tt is Struct:
            stack.extend(t.args)
        elif tt is Cons:
            stack.append(t.tail)
            stack.append(t.head)
    return True


def compile_template(term: Term) -> Callable[[dict, dict], Term]:
    """Compile a rule term into a builder ``build(env, fresh) -> Term``.

    Semantics mirror :func:`repro.strand.match.instantiate`: rule variables
    become their matched values; unmatched rule variables become fresh
    variables shared (via ``fresh``/``env``) across the rule's goals.
    """
    term = deref(term)
    t = type(term)
    if t is Var:
        key = id(term)
        name = term.name

        def build_var(env: dict, fresh: dict) -> Term:
            bound = env.get(key)
            if bound is not None:
                return bound
            var = fresh.get(key)
            if var is None:
                var = Var(name)
                fresh[key] = var
                env[key] = var
            return var

        return build_var
    if t is Struct:
        if _term_is_shareable(term):
            return lambda env, fresh: term
        functor = term.functor
        subs = tuple(compile_template(a) for a in term.args)
        return lambda env, fresh: Struct(functor, [s(env, fresh) for s in subs])
    if t is Tup:
        subs = tuple(compile_template(a) for a in term.args)
        return lambda env, fresh: Tup([s(env, fresh) for s in subs])
    if t is Cons:
        if _term_is_shareable(term):
            return lambda env, fresh: term
        head = compile_template(term.head)
        tail = compile_template(term.tail)
        return lambda env, fresh: Cons(head(env, fresh), tail(env, fresh))
    # Atoms, numbers, strings are immutable — share.
    return lambda env, fresh: term


# ---------------------------------------------------------------------------
# Head-match plans
# ---------------------------------------------------------------------------

def compile_pattern(pattern: Term) -> Callable[[Term, dict, list], bool]:
    """Compile one head-argument pattern into ``m(arg, env, blocked)``.

    Returns ``False`` on definite mismatch; appends to ``blocked`` (and
    returns ``True``) when an unbound caller variable defers the decision —
    the same three-valued protocol as :func:`repro.strand.match.match_head`.
    """
    pattern = deref(pattern)
    pt = type(pattern)
    if pt is Var:
        key = id(pattern)

        def match_var(arg: Term, env: dict, blocked: list) -> bool:
            bound = env.get(key)
            if bound is None:
                env[key] = arg
                return True
            # Non-linear head: both occurrences must agree.
            return _match_values(bound, arg, blocked)

        return match_var
    if pt is Atom:

        def match_atom(arg: Term, env: dict, blocked: list) -> bool:
            arg = deref(arg)
            if arg is pattern:
                return True
            if type(arg) is Var:
                blocked.append(arg)
                return True
            return False

        return match_atom
    if pt is int or pt is float:

        def match_number(arg: Term, env: dict, blocked: list) -> bool:
            arg = deref(arg)
            at = type(arg)
            if at is Var:
                blocked.append(arg)
                return True
            return (at is int or at is float) and pattern == arg

        return match_number
    if pt is str:

        def match_string(arg: Term, env: dict, blocked: list) -> bool:
            arg = deref(arg)
            at = type(arg)
            if at is Var:
                blocked.append(arg)
                return True
            return at is str and pattern == arg

        return match_string
    if pt is Cons:
        match_h = compile_pattern(pattern.head)
        match_t = compile_pattern(pattern.tail)

        def match_cons(arg: Term, env: dict, blocked: list) -> bool:
            arg = deref(arg)
            at = type(arg)
            if at is Var:
                blocked.append(arg)
                return True
            if at is not Cons:
                return False
            return match_h(arg.head, env, blocked) and match_t(arg.tail, env, blocked)

        return match_cons
    if pt is Tup:
        subs = tuple(compile_pattern(a) for a in pattern.args)
        want = len(pattern.args)

        def match_tuple(arg: Term, env: dict, blocked: list) -> bool:
            arg = deref(arg)
            at = type(arg)
            if at is Var:
                blocked.append(arg)
                return True
            if at is not Tup or len(arg.args) != want:
                return False
            return all(m(a, env, blocked) for m, a in zip(subs, arg.args))

        return match_tuple
    if pt is Struct:
        subs = tuple(compile_pattern(a) for a in pattern.args)
        functor = pattern.functor
        want = len(pattern.args)

        def match_struct(arg: Term, env: dict, blocked: list) -> bool:
            arg = deref(arg)
            at = type(arg)
            if at is Var:
                blocked.append(arg)
                return True
            if at is not Struct or arg.functor != functor or len(arg.args) != want:
                return False
            return all(m(a, env, blocked) for m, a in zip(subs, arg.args))

        return match_struct
    raise TypeError(f"bad pattern term {pattern!r}")


# ---------------------------------------------------------------------------
# Guard plans
# ---------------------------------------------------------------------------

def compile_guard(guard: Term) -> Callable[[dict, dict, list], bool] | None:
    """Compile one guard goal into ``g(env, fresh, blocked)``.

    ``None`` means the guard is trivially true (``true`` / ``otherwise``)
    and can be dropped from the plan.  ``False`` return = definite failure;
    appending to ``blocked`` (returning ``True``) = undecided.
    """
    guard = deref(guard)
    if type(guard) is Atom:
        if guard.name in ("true", "otherwise"):
            return None
        return lambda env, fresh, blocked: False
    if type(guard) is not Struct:
        return lambda env, fresh, blocked: False
    name, arity = guard.functor, len(guard.args)
    if arity == 2 and name in _COMPARISONS:
        op = _COMPARISONS[name]
        lhs = compile_template(guard.args[0])
        rhs = compile_template(guard.args[1])

        def guard_compare(env: dict, fresh: dict, blocked: list) -> bool:
            try:
                a = eval_arith(lhs(env, fresh))
                b = eval_arith(rhs(env, fresh))
            except Suspend as s:
                blocked.extend(s.variables)
                return True
            except ArithFail:
                return False
            return op(a, b)

        return guard_compare
    if arity == 2 and name in ("==", "\\=="):
        want_equal = name == "=="
        lhs = compile_template(guard.args[0])
        rhs = compile_template(guard.args[1])

        def guard_equality(env: dict, fresh: dict, blocked: list) -> bool:
            decided, equal = _ground_equal(
                deref(lhs(env, fresh)), deref(rhs(env, fresh)), blocked
            )
            if not decided:
                return True
            return equal if want_equal else not equal

        return guard_equality
    if arity == 1 and name in GUARD_TESTS:
        test = GUARD_TESTS[name]
        operand = compile_template(guard.args[0])

        def guard_test(env: dict, fresh: dict, blocked: list) -> bool:
            arg = deref(operand(env, fresh))
            if type(arg) is Var:
                blocked.append(arg)
                return True
            return test(arg)

        return guard_test
    if arity == 1 and name == "known":
        operand = compile_template(guard.args[0])

        def guard_known(env: dict, fresh: dict, blocked: list) -> bool:
            arg = deref(operand(env, fresh))
            if type(arg) is Var:
                blocked.append(arg)
                return True
            return True

        return guard_known
    return lambda env, fresh, blocked: False


# ---------------------------------------------------------------------------
# Rules, procedures, programs
# ---------------------------------------------------------------------------

#: Bucket keys for first-argument indexing; ``None`` = variable (wildcard).
IndexKey = Any


def pattern_index_key(pattern: Term) -> IndexKey:
    """The index-bucket key of a head's first-argument pattern."""
    pattern = deref(pattern)
    pt = type(pattern)
    if pt is Var:
        return None
    if pt is Atom:
        return ("a", pattern.name)
    if pt is int or pt is float:
        # 1 and 1.0 hash/compare equal, which is exactly right: numeric
        # head patterns match goals across int/float.
        return ("n", pattern)
    if pt is str:
        return ("s", pattern)
    if pt is Cons:
        return ("c",)
    if pt is Tup:
        return ("t", len(pattern.args))
    if pt is Struct:
        return ("f", pattern.functor, len(pattern.args))
    raise TypeError(f"bad pattern term {pattern!r}")


def goal_index_key(arg: Term) -> IndexKey:
    """The bucket key of a goal's (already dereffed, non-Var) first arg."""
    at = type(arg)
    if at is Atom:
        return ("a", arg.name)
    if at is int or at is float:
        return ("n", arg)
    if at is str:
        return ("s", arg)
    if at is Cons:
        return ("c",)
    if at is Tup:
        return ("t", len(arg.args))
    if at is Struct:
        return ("f", arg.functor, len(arg.args))
    raise TypeError(f"bad goal argument {arg!r}")


class CompiledRule:
    """One rule's precompiled plans plus a back-pointer to its source."""

    __slots__ = ("rule", "order", "matchers", "guards", "body", "index_key")

    def __init__(self, rule: Rule, order: int):
        COMPILE_STATS["rules"] += 1
        self.rule = rule
        self.order = order  # textual position within the procedure
        self.matchers = tuple(compile_pattern(a) for a in rule.head.args)
        self.guards = tuple(
            g for g in (compile_guard(guard) for guard in rule.guards)
            if g is not None
        )
        self.body = tuple(compile_template(goal) for goal in rule.body)
        args = rule.head.args
        self.index_key = pattern_index_key(args[0]) if args else None

    def try_commit(self, goal_args: tuple, blocked: list) -> dict | None:
        """Head-match + guard-check against one goal.

        Returns the match environment on commit, ``None`` otherwise;
        blocking variables of an undecided match/guard are appended to
        ``blocked``.  Definite failures contribute nothing.
        """
        env: dict = {}
        rule_blocked: list = []
        for matcher, arg in zip(self.matchers, goal_args):
            if not matcher(arg, env, rule_blocked):
                return None  # definite head mismatch: discard blockers
        if rule_blocked:
            blocked.extend(rule_blocked)
            return None
        if self.guards:
            fresh: dict = {}
            guard_blocked: list = []
            for guard in self.guards:
                if not guard(env, fresh, guard_blocked):
                    return None  # definite guard failure: discard blockers
            if guard_blocked:
                blocked.extend(guard_blocked)
                return None
        return env

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledRule #{self.order} {self.rule.indicator}>"


class CompiledProcedure:
    """All compiled rules of one procedure, with first-argument buckets."""

    __slots__ = ("name", "arity", "rules", "buckets", "wildcards", "indexed")

    def __init__(self, proc: Procedure, index: bool = True):
        self.name = proc.name
        self.arity = proc.arity
        self.rules = tuple(
            CompiledRule(rule, order) for order, rule in enumerate(proc.rules)
        )
        keys = {r.index_key for r in self.rules}
        self.indexed = (
            index
            and self.arity > 0
            and len(self.rules) > 1
            and keys != {None}
        )
        if self.indexed:
            # Wildcard rules (var-headed first argument) appear in every
            # bucket; textual order within each bucket is preserved, so the
            # committed rule is always the first textual match.
            self.wildcards = tuple(r for r in self.rules if r.index_key is None)
            buckets: dict[IndexKey, list[CompiledRule]] = {}
            for key in keys:
                if key is None:
                    continue
                buckets[key] = [
                    r for r in self.rules
                    if r.index_key is None or r.index_key == key
                ]
            self.buckets = {key: tuple(rules) for key, rules in buckets.items()}
        else:
            self.wildcards = self.rules
            self.buckets = {}

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)

    def candidates(self, goal_args: tuple) -> tuple[CompiledRule, ...]:
        """The (ordered) rules that could match or suspend on this goal."""
        if not self.indexed:
            return self.rules
        first = deref(goal_args[0])
        if type(first) is Var:
            return self.rules
        return self.buckets.get(goal_index_key(first), self.wildcards)

    def select(self, goal_args: tuple) -> tuple[CompiledRule, dict] | None:
        """Committed choice: the first textually-matching rule and its
        environment.  Raises :class:`Suspend` when no rule matches yet but
        some could; returns ``None`` on definite failure."""
        blocked: list = []
        for crule in self.candidates(goal_args):
            env = crule.try_commit(goal_args, blocked)
            if env is not None:
                return crule, env
        if blocked:
            raise Suspend(blocked)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "indexed" if self.indexed else "linear"
        return f"<CompiledProcedure {self.name}/{self.arity} {mode} {len(self.rules)} rules>"


class CompiledProgram:
    """A program lowered for execution: interned symbol table plus one
    :class:`CompiledProcedure` per procedure."""

    __slots__ = ("program", "symbols", "procedures", "indexed", "motif_of")

    def __init__(self, program: Program, *, index: bool = True):
        COMPILE_STATS["programs"] += 1
        self.program = program
        self.indexed = index
        self.symbols = symbol_table(program)
        self.procedures: dict[tuple[str, int], CompiledProcedure] = {}
        # Provenance view: indicator -> motif tag of its first rule
        # (``None`` for user-written procedures).  Per-rule tags stay on
        # ``CompiledRule.rule.motif``; this map answers the common "which
        # layer owns this procedure?" query without touching rules.
        self.motif_of: dict[tuple[str, int], str | None] = {}
        for indicator in self.symbols.indicators:
            proc = program.procedure(*indicator)
            if proc is not None:
                self.procedures[indicator] = CompiledProcedure(proc, index=index)
                self.motif_of[indicator] = (
                    proc.rules[0].motif if proc.rules else None
                )

    def procedure(self, indicator: tuple[str, int]) -> CompiledProcedure | None:
        return self.procedures.get(indicator)

    def __contains__(self, indicator: tuple[str, int]) -> bool:
        return indicator in self.procedures

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "indexed" if self.indexed else "linear"
        return f"<CompiledProgram {self.program.name!r} {mode} {len(self.procedures)} procedures>"


def compile_program(program: Program, *, index: bool = True) -> CompiledProgram:
    """Compile ``program`` (cached per program instance and version).

    Two cache slots per program — indexed and linear — so the benchmark
    ablation can hold both without recompiling either.
    """
    cache = getattr(program, "_compiled_cache", None)
    if cache is None:
        cache = {}
        program._compiled_cache = cache
    entry = cache.get(index)
    if entry is not None and entry[0] == program.version:
        COMPILE_STATS["hits"] += 1
        return entry[1]
    compiled = CompiledProgram(program, index=index)
    cache[index] = (program.version, compiled)
    return compiled
