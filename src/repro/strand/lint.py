"""Static checks for Strand programs.

Committed-choice languages fail at run time where Prolog would just
backtrack, so static lint pays for itself quickly.  Checks:

* ``undefined-call`` — a body goal's procedure is neither defined in the
  program, a builtin, a declared foreign, nor a declared service hook
  (usually a typo or a missing motif);
* ``singleton-variable`` — a named variable used exactly once in a rule
  (either a typo or noise; write ``_`` for deliberate don't-cares);
* ``unused-procedure`` — defined but unreachable from any entry point;
* ``unbound-output`` — a rule whose head repeats no variable into the body
  and assigns nothing (often a stub);
* ``pragma-without-motif`` — an ``@ random`` / ``@ task`` pragma in a
  program that is about to be executed directly.

The linter is advisory: it returns warnings, it never rejects.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.strand.builtins import BUILTINS
from repro.strand.compile import symbol_table
from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Cons, Struct, Term, Tup, Var, deref
from repro.transform.callgraph import CallGraph
from repro.transform.rewrite import strip_placement

__all__ = ["LintWarning", "lint_program", "GUARD_BUILTINS"]

#: Guard goals are not calls; they are checked against this set instead.
GUARD_BUILTINS = frozenset(
    {"<", ">", "=<", ">=", "==", "\\==", "=\\=", "=:=", "true", "otherwise", "known"}
    | {"integer", "number", "float", "atom", "string", "list", "tuple"}
)


@dataclass(frozen=True)
class LintWarning:
    """One finding: category, the procedure it is in, and a message."""

    category: str
    procedure: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.category}] {self.procedure}: {self.message}"


def lint_program(
    program: Program,
    *,
    foreign: Iterable[tuple[str, int]] = (),
    entries: Iterable[tuple[str, int]] = (),
    allow_pragmas: bool = False,
) -> list[LintWarning]:
    """Lint a program.  ``foreign`` declares Python procedures; ``entries``
    declares the roots for reachability (defaults to every procedure, which
    disables the unused check unless entries are given)."""
    warnings: list[LintWarning] = []
    # The shared interned indicator table (also consumed by the call graph
    # and the compile layer) is the source of truth for what is defined.
    known = symbol_table(program).defined | set(BUILTINS) | set(foreign)

    for proc in program:
        label = f"{proc.name}/{proc.arity}"
        for index, rule in enumerate(proc.rules, start=1):
            where = f"{label} rule {index}"
            warnings.extend(_check_rule(rule, known, where, allow_pragmas))

    warnings.extend(_check_unused(program, entries))
    return warnings


def _check_rule(rule: Rule, known: set, where: str,
                allow_pragmas: bool) -> list[LintWarning]:
    warnings: list[LintWarning] = []
    # Undefined calls & pragmas.
    for goal in rule.body:
        inner, placement = strip_placement(goal)
        if placement is not None and type(deref(placement)) is Atom:
            if not allow_pragmas:
                warnings.append(LintWarning(
                    "pragma-without-motif", where,
                    f"'@ {deref(placement).name}' has no meaning without the "
                    f"matching motif transformation",
                ))
        indicator = inner.indicator
        if indicator not in known:
            warnings.append(LintWarning(
                "undefined-call", where,
                f"call to undefined procedure {indicator[0]}/{indicator[1]}",
            ))
    for guard in rule.guards:
        guard = deref(guard)
        name = guard.name if type(guard) is Atom else (
            guard.functor if type(guard) is Struct else None
        )
        if name is not None and name not in GUARD_BUILTINS:
            warnings.append(LintWarning(
                "undefined-call", where,
                f"unknown guard {name}",
            ))
    # Singleton variables.
    counts: Counter[int] = Counter()
    names: dict[int, str] = {}
    for term in (rule.head, *rule.guards, *rule.body):
        _count_vars(term, counts, names)
    for key, count in counts.items():
        name = names[key]
        if count == 1 and not name.startswith("_"):
            warnings.append(LintWarning(
                "singleton-variable", where,
                f"variable {name} occurs only once (use _{name} if deliberate)",
            ))
    return warnings


def _count_vars(term: Term, counts: Counter, names: dict[int, str]) -> None:
    term = deref(term)
    t = type(term)
    if t is Var:
        counts[id(term)] += 1
        names[id(term)] = term.name
    elif t is Struct or t is Tup:
        for arg in term.args:
            _count_vars(arg, counts, names)
    elif t is Cons:
        _count_vars(term.head, counts, names)
        _count_vars(term.tail, counts, names)


def _check_unused(program: Program,
                  entries: Iterable[tuple[str, int]]) -> list[LintWarning]:
    entries = set(entries)
    if not entries:
        return []
    graph = CallGraph(program)
    reachable = graph.reachable_from(entries)
    warnings = []
    for proc in program:
        if proc.indicator not in reachable:
            warnings.append(LintWarning(
                "unused-procedure", f"{proc.name}/{proc.arity}",
                "not reachable from any declared entry point",
            ))
    return warnings
