"""Foreign (Python) procedures — the dialect's multilingual interface.

The paper (§2.1) assumes "a multilingual approach to parallel programming, in
which low level, computationally-intensive components of applications are
implemented in low level languages" (there: C; here: Python/NumPy), with the
high-level language coordinating them.  A foreign procedure is registered
under a ``name/arity`` and called like any Strand goal; the engine

1. waits (dataflow-suspends) until the declared *input* argument positions
   are fully ground,
2. converts them to Python values,
3. calls the function,
4. binds the returned values to the *output* argument positions, and
5. charges the declared virtual cost to the executing processor.

The cost hook is what lets experiments model non-uniform node evaluation
times ("the time required at each node is non-uniform and cannot easily be
predicted", §3.1) without wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ForeignProcedureError
from repro.strand.terms import (
    Atom,
    Cons,
    NIL,
    Struct,
    Term,
    Tup,
    Var,
    deref,
    make_list,
)

__all__ = [
    "ForeignProcedure",
    "ForeignRegistry",
    "to_python",
    "from_python",
    "NotGround",
]


class NotGround(Exception):
    """Raised during term→Python conversion when an unbound variable is
    found; carries the variable so the engine can suspend on it."""

    def __init__(self, variable: Var):
        self.variable = variable
        super().__init__(f"unbound variable {variable.name}")


def to_python(term: Term) -> Any:
    """Deep-convert a ground term to Python data.

    lists → ``list``; tuples → ``tuple``; numbers/strings unchanged;
    atoms stay :class:`Atom` (they are interned and hashable); other
    structures stay as raw :class:`Struct` terms.
    """
    term = deref(term)
    t = type(term)
    if t is Var:
        raise NotGround(term)
    if t is Cons:
        out = []
        while type(term) is Cons:
            out.append(to_python(term.head))
            term = deref(term.tail)
            if type(term) is Var:
                raise NotGround(term)
        if term is not NIL:
            raise ForeignProcedureError(f"improper list passed to foreign code: {term!r}")
        return out
    if term is NIL:
        return []
    if t is Tup:
        return tuple(to_python(a) for a in term.args)
    if t is Struct:
        return Struct(term.functor, tuple(_to_python_keep_ground(a) for a in term.args))
    return term  # int, float, str, Atom


def _to_python_keep_ground(term: Term) -> Term:
    """Ground-check a struct argument without losing term structure."""
    term = deref(term)
    t = type(term)
    if t is Var:
        raise NotGround(term)
    if t is Struct:
        return Struct(term.functor, tuple(_to_python_keep_ground(a) for a in term.args))
    if t is Cons:
        return Cons(_to_python_keep_ground(term.head), _to_python_keep_ground(term.tail))
    if t is Tup:
        return Tup([_to_python_keep_ground(a) for a in term.args])
    return term


def from_python(value: Any) -> Term:
    """Convert a Python value returned by foreign code into a term."""
    if isinstance(value, (Atom, Struct, Tup, Cons, Var)):
        return value
    if isinstance(value, bool):
        return Atom("true") if value else Atom("false")
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, list):
        return make_list([from_python(v) for v in value])
    if isinstance(value, tuple):
        return Tup([from_python(v) for v in value])
    if value is None:
        return Atom("nil")
    raise ForeignProcedureError(
        f"cannot convert Python value of type {type(value).__name__} to a term"
    )


@dataclass
class ForeignProcedure:
    """A registered Python procedure.

    ``inputs``/``outputs`` are argument positions (0-based).  ``cost`` is a
    number, or a callable over the converted input values returning the
    virtual time charged for the call (default 1.0).  With ``raw=True`` the
    function receives ``(engine_context, raw_term_args)`` and manages
    binding itself (used by advanced motifs).
    """

    name: str
    arity: int
    fn: Callable
    inputs: tuple[int, ...]
    outputs: tuple[int, ...]
    cost: float | Callable[..., float] = 1.0
    raw: bool = False

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)

    def cost_for(self, converted_inputs: Sequence[Any]) -> float:
        if callable(self.cost):
            return float(self.cost(*converted_inputs))
        return float(self.cost)


class ForeignRegistry:
    """Foreign procedures keyed by ``name/arity``."""

    def __init__(self) -> None:
        self._procs: dict[tuple[str, int], ForeignProcedure] = {}

    def register(
        self,
        name: str,
        arity: int,
        fn: Callable,
        *,
        inputs: Sequence[int] | None = None,
        outputs: Sequence[int] | None = None,
        cost: float | Callable[..., float] = 1.0,
        raw: bool = False,
    ) -> ForeignProcedure:
        """Register ``fn`` as ``name/arity``.

        By default the last argument is the single output and all others are
        inputs — the common shape of the paper's ``eval(V, LV, RV, Value)``.
        """
        if (name, arity) in self._procs:
            raise ForeignProcedureError(f"foreign procedure {name}/{arity} already registered")
        if not raw:
            if outputs is None:
                outputs = (arity - 1,) if arity > 0 else ()
            if inputs is None:
                inputs = tuple(i for i in range(arity) if i not in set(outputs))
            bad = [i for i in (*inputs, *outputs) if not 0 <= i < arity]
            if bad:
                raise ForeignProcedureError(
                    f"argument positions {bad} out of range for {name}/{arity}"
                )
            overlap = set(inputs) & set(outputs)
            if overlap:
                raise ForeignProcedureError(
                    f"argument positions {sorted(overlap)} are both input and output"
                )
        else:
            inputs = tuple(inputs or ())
            outputs = tuple(outputs or ())
        proc = ForeignProcedure(
            name, arity, fn, tuple(inputs), tuple(outputs), cost, raw
        )
        self._procs[(name, arity)] = proc
        return proc

    def lookup(self, name: str, arity: int) -> ForeignProcedure | None:
        return self._procs.get((name, arity))

    def __contains__(self, indicator: tuple[str, int]) -> bool:
        return indicator in self._procs

    def copy(self) -> "ForeignRegistry":
        out = ForeignRegistry()
        out._procs = dict(self._procs)
        return out

    def indicators(self) -> list[tuple[str, int]]:
        return list(self._procs.keys())
