"""Tokenizer for the Strand dialect.

The concrete syntax follows the paper closely::

    reduce(tree(V,L,R), Value) :-
        reduce(R, RV) @ random,
        reduce(L, LV),
        eval(V, LV, RV, Value).
    reduce(leaf(L), Value) :- Value := L.

Lexical classes:

* variables — identifiers starting with an uppercase letter or ``_``;
* atoms — identifiers starting with a lowercase letter, or any text in
  single quotes (``'+'``);
* numbers — integers and floats, with optional leading ``-`` handled by the
  parser as unary minus;
* strings — double-quoted, with ``\\`` escapes;
* punctuation and operators — see ``SYMBOLS`` below;
* comments — ``%`` to end of line, and ``/* ... */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

__all__ = ["Token", "tokenize"]


@dataclass(frozen=True)
class Token:
    """A lexical token with its 1-based source position."""

    kind: str  # 'var' | 'atom' | 'int' | 'float' | 'string' | 'punct' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.column})"


# Multi-character symbols must be listed before their prefixes.
SYMBOLS = [
    ":-",
    ":=",
    "=<",
    ">=",
    "=\\=",
    "=:=",
    "==",
    "\\==",
    "=",
    "<",
    ">",
    "|",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "+",
    "-",
    "*",
    "//",
    "/",
    "@",
    "&",
]

_SYMBOLS_SORTED = sorted(SYMBOLS, key=len, reverse=True)


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> list[Token]:
    """Tokenize Strand source text into a token list ending with ``eof``.

    Raises :class:`ParseError` on unterminated strings/comments or
    unrecognized characters.
    """
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    n = len(source)
    line = 1
    line_start = 0

    def col(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        # Line comment.
        if ch == "%":
            while i < n and source[i] != "\n":
                i += 1
            continue
        # Block comment.
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col(i)
            i += 2
            while i < n and not (source[i] == "*" and i + 1 < n and source[i + 1] == "/"):
                if source[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            if i >= n:
                raise ParseError("unterminated block comment", start_line, start_col)
            i += 2
            continue
        # Numbers.
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            is_float = False
            if i < n and source[i] == "." and i + 1 < n and source[i + 1].isdigit():
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE" and (
                (i + 1 < n and source[i + 1].isdigit())
                or (i + 2 < n and source[i + 1] in "+-" and source[i + 2].isdigit())
            ):
                is_float = True
                i += 1
                if source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            yield Token("float" if is_float else "int", text, line, col(start))
            continue
        # Identifiers: variables and atoms.
        if _is_ident_start(ch):
            start = i
            while i < n and _is_ident(source[i]):
                i += 1
            text = source[start:i]
            kind = "var" if (text[0].isupper() or text[0] == "_") else "atom"
            yield Token(kind, text, line, col(start))
            continue
        # Quoted atoms.
        if ch == "'":
            start = i
            start_line, start_col = line, col(i)
            i += 1
            chars: list[str] = []
            while i < n and source[i] != "'":
                if source[i] == "\\" and i + 1 < n:
                    chars.append(_unescape(source[i + 1]))
                    i += 2
                    continue
                if source[i] == "\n":
                    line += 1
                    line_start = i + 1
                chars.append(source[i])
                i += 1
            if i >= n:
                raise ParseError("unterminated quoted atom", start_line, start_col)
            i += 1
            yield Token("atom", "".join(chars), start_line, start_col)
            continue
        # Strings.
        if ch == '"':
            start_line, start_col = line, col(i)
            i += 1
            chars = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    chars.append(_unescape(source[i + 1]))
                    i += 2
                    continue
                if source[i] == "\n":
                    line += 1
                    line_start = i + 1
                chars.append(source[i])
                i += 1
            if i >= n:
                raise ParseError("unterminated string", start_line, start_col)
            i += 1
            yield Token("string", "".join(chars), start_line, start_col)
            continue
        # Symbols.
        for sym in _SYMBOLS_SORTED:
            if source.startswith(sym, i):
                yield Token("punct", sym, line, col(i))
                i += len(sym)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col(i))
    yield Token("eof", "", line, col(i))


def _unescape(ch: str) -> str:
    return {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"'}.get(ch, ch)
