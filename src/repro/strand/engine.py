"""The Strand reduction engine on the virtual multicomputer.

Semantics (paper §2.1): "The state of a computation is represented by a pool
of lightweight processes.  Execution proceeds by repeatedly selecting and
attempting to reduce processes in this pool.  ...  The availability of data
serves as the synchronization mechanism."

Scheduling model
----------------
Each process lives on one virtual processor.  A processor executes one
reduction at a time; a reduction costs virtual time (1.0 by default, or a
foreign procedure's declared cost).  The engine is a discrete-event
simulator: a global event heap orders processors by the earliest time they
can next execute, and per-processor heaps order processes by readiness.
Remote interactions (spawning with ``@ J``, port sends, and bindings read by
a process on another processor) are delivered with the network's latency.

Everything is deterministic given the machine seed: ties break on a
monotone sequence number.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterable

from repro.errors import (
    DeadlockError,
    DoubleAssignmentError,
    ProcessFailureError,
    StrandError,
    UnknownProcedureError,
)
from repro.machine.metrics import MachineMetrics
from repro.machine.simulator import Machine
from repro.strand.arith import Suspend
from repro.strand.builtins import BUILTINS
from repro.strand.foreign import ForeignRegistry, NotGround, from_python, to_python
from repro.strand.match import MatchResult, eval_guards, instantiate, match_head
from repro.strand.parser import parse_query
from repro.strand.program import Program
from repro.strand.streams import PortRef
from repro.strand.terms import Atom, Cons, NIL, Struct, Term, Var, deref, term_eq

__all__ = ["Process", "StrandEngine", "QueryResult", "run_query"]


def _msg_tag(msg: Term) -> str:
    """Short classification of a message for traces (its functor)."""
    msg = deref(msg)
    if type(msg) is Struct:
        return msg.functor
    if type(msg) is Atom:
        return msg.name
    return type(msg).__name__.lower()

_RUNNABLE = 0
_SUSPENDED = 1
_DONE = 2


class Process:
    """One lightweight process: a goal plus scheduling state."""

    __slots__ = ("goal", "proc", "ready", "state", "seq", "lib", "watched")

    def __init__(self, goal: Struct, proc: int, ready: float, seq: int,
                 lib: bool, watched: bool):
        self.goal = goal
        self.proc = proc
        self.ready = ready
        self.state = _RUNNABLE
        self.seq = seq
        self.lib = lib
        self.watched = watched

    def describe(self) -> str:
        from repro.strand.pretty import format_term

        return f"p{self.proc}: {format_term(self.goal)}"


class QueryResult:
    """Answer bindings + machine metrics + any ``write/1`` output."""

    def __init__(self, bindings: dict[str, Term], metrics: MachineMetrics,
                 output: list[str], engine: "StrandEngine"):
        self.bindings = bindings
        self.metrics = metrics
        self.output = output
        self.engine = engine

    def __getitem__(self, name: str) -> Term:
        return deref(self.bindings[name])

    def value(self, name: str) -> Any:
        """The binding for ``name`` converted to Python data."""
        return to_python(self.bindings[name])


class StrandEngine:
    """Runs a :class:`Program` on a :class:`Machine`.

    Parameters
    ----------
    program:
        The (already motif-transformed) program to run.
    machine:
        Virtual multicomputer; defaults to a single processor.
    foreign:
        Registry of Python procedures callable from Strand.
    watched:
        ``name/arity`` pairs whose live-process high-water is tracked per
        processor (experiment E4's memory proxy).
    library:
        ``name/arity`` pairs charged as *motif library* cost rather than
        user cost (experiment E8's overhead split).
    services:
        ``name/arity`` pairs of perpetual service processes (servers,
        merges).  When only services remain suspended and every open port
        has gone quiet, the engine closes all ports so services can
        terminate — the engine-level complement of the short-circuit
        termination motif.
    """

    def __init__(
        self,
        program: Program,
        machine: Machine | None = None,
        foreign: ForeignRegistry | None = None,
        *,
        watched: Iterable[tuple[str, int]] = (),
        library: Iterable[tuple[str, int]] = (),
        services: Iterable[tuple[str, int]] = (),
        max_reductions: int = 5_000_000,
        auto_close_ports: bool = True,
        reduction_cost: float = 1.0,
    ):
        self.program = program
        self.machine = machine or Machine(1)
        self.foreign = foreign or ForeignRegistry()
        self.watched = set(watched)
        self.library = set(library)
        self.services = set(services) | {("merge", 3)}
        self.max_reductions = max_reductions
        self.auto_close_ports = auto_close_ports
        self.reduction_cost = reduction_cost

        self.output: list[str] = []
        self.ports: list[PortRef] = []
        self._procs_cache = {p.indicator: p for p in program}
        size = self.machine.size
        self._queues: list[list] = [[] for _ in range(size)]
        self._events: list = []
        # One live event marker per processor (None = none outstanding).
        self._event_time: list[float | None] = [None] * size
        self._seq = 0
        self._suspended: dict[int, Process] = {}
        self._reduction_budget = max_reductions
        self._ports_closed = False
        self._live = 0

    # ------------------------------------------------------------------
    # Spawning, suspension, wakeup
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def spawn(self, goal: Term, proc: int = 1, ready: float = 0.0,
              lib: bool | None = None) -> Process:
        """Add a process to the pool on processor ``proc`` (1-based)."""
        goal = deref(goal)
        if type(goal) is Atom:
            goal = Struct(goal.name, ())
        if type(goal) is not Struct:
            raise StrandError(f"cannot spawn non-goal term {goal!r}")
        indicator = goal.indicator
        if lib is None:
            lib = indicator in self.library
        watched = indicator in self.watched
        process = Process(goal, proc, ready, self._next_seq(), lib, watched)
        vp = self.machine.procs[proc - 1]
        vp.spawns += 1
        if watched:
            vp.task_spawned()
        self._live += 1
        self._push(process)
        self.machine.trace.record(ready, proc, "spawn", goal.functor)
        return process

    def spawn_remote(self, goal: Term, src: int, dst: int, now: float,
                     lib: bool = False) -> Process:
        """Spawn on another processor; the task travels as a message."""
        latency = 0.0
        if src != dst:
            latency = self.machine.latency(src, dst)
            vp = self.machine.procs[src - 1]
            vp.sends += 1
            vp.hops += self.machine.hops(src, dst)
            if self.machine.trace.enabled:
                self.machine.trace.record(
                    now, src, "send", f"spawn:{_msg_tag(goal)}->{dst}"
                )
        indicator_lib = None
        goal_d = deref(goal)
        if type(goal_d) is Struct and goal_d.indicator in BUILTINS:
            indicator_lib = lib
        return self.spawn(goal, dst, ready=now + latency, lib=indicator_lib)

    def _push(self, process: Process) -> None:
        heappush(self._queues[process.proc - 1], (process.ready, process.seq, process))
        clock = self.machine.procs[process.proc - 1].clock
        self._schedule(process.proc, max(process.ready, clock))

    def _schedule(self, pnum: int, time: float) -> None:
        """Ensure the event heap holds a marker for processor ``pnum`` at or
        before ``time``.  One live marker per processor keeps the heap
        O(P + transitions) instead of O(runnable × clock-advances)."""
        current = self._event_time[pnum - 1]
        if current is None or time < current:
            self._event_time[pnum - 1] = time
            heappush(self._events, (time, self._next_seq(), pnum))

    def _schedule_from_queue(self, pnum: int) -> None:
        queue = self._queues[pnum - 1]
        if queue:
            clock = self.machine.procs[pnum - 1].clock
            self._schedule(pnum, max(queue[0][0], clock))

    def _suspend(self, process: Process, variables: list[Var], now: float = 0.0) -> None:
        if not variables:
            raise StrandError(f"process suspended on no variables: {process.describe()}")
        real = []
        seen: set[int] = set()
        for var in variables:
            var = deref(var)
            if type(var) is not Var or id(var) in seen:
                continue
            seen.add(id(var))
            real.append(var)
        if not real:
            # Every blocker got bound while we were deciding — retry soon.
            process.ready = now
            self._push(process)
            return
        process.state = _SUSPENDED
        self._suspended[id(process)] = process
        for var in real:
            if var.waiters is None:
                var.waiters = []
            var.waiters.append(process)
        vp = self.machine.procs[process.proc - 1]
        vp.suspensions += 1
        self.machine.trace.record(now, process.proc, "suspend", process.goal.functor)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, target: Term, value: Term, proc: int, now: float) -> None:
        """Bind ``target`` (which must deref to an unbound variable, or to a
        term structurally equal to ``value``) and wake its waiters."""
        target = deref(target)
        if type(target) is not Var:
            if term_eq(target, value):
                return
            self.double_assignment(target, value, None)
        value_d = deref(value)
        if value_d is target:
            return  # X := X — trivially satisfied
        target.ref = value_d
        waiters = target.waiters
        target.waiters = None
        self.machine.trace.record(now, proc, "bind", target.name)
        if type(value_d) is Var:
            # Aliasing two unbound variables: move waiters across.
            if waiters:
                if value_d.waiters is None:
                    value_d.waiters = waiters
                else:
                    value_d.waiters.extend(waiters)
            return
        if waiters:
            self._wake(waiters, proc, now)

    def double_assignment(self, target: Term, value: Term, process: Process | None):
        from repro.strand.pretty import format_term

        where = f" in {process.describe()}" if process else ""
        raise DoubleAssignmentError(
            f"assignment to bound value {format_term(target)} "
            f"(new value {format_term(value)}){where}"
        )

    def _wake(self, waiters: list[Process], binder_proc: int, now: float) -> None:
        machine = self.machine
        procs = machine.procs
        for process in waiters:
            if process.state != _SUSPENDED:
                continue
            process.state = _RUNNABLE
            self._suspended.pop(id(process), None)
            if binder_proc != process.proc:
                latency = machine.latency(binder_proc, process.proc)
                vp = procs[binder_proc - 1]
                vp.remote_bindings += 1
                vp.hops += machine.hops(binder_proc, process.proc)
            else:
                latency = 0.0
            process.ready = now + latency
            procs[process.proc - 1].wakeups += 1
            self._push(process)
            machine.trace.record(now, process.proc, "wake", process.goal.functor)

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def register_port(self, port: PortRef) -> None:
        self.ports.append(port)

    def port_send(self, port: PortRef, msg: Term, src: int, now: float) -> None:
        if port.closed:
            raise StrandError(f"send on closed port {port!r}")
        old_tail = port.tail
        new_tail = Var("PortTail")
        port.tail = new_tail
        if src != port.owner:
            vp = self.machine.procs[src - 1]
            vp.sends += 1
            vp.hops += self.machine.hops(src, port.owner)
            if self.machine.trace.enabled:
                self.machine.trace.record(
                    now, src, "send", f"port:{_msg_tag(msg)}->{port.owner}"
                )
        self.bind(old_tail, Cons(msg, new_tail), src, now)

    def port_close(self, port: PortRef, src: int, now: float) -> None:
        if port.closed:
            return
        port.closed = True
        self.bind(port.tail, NIL, src, now)

    def close_all_ports(self, now: float) -> int:
        """Terminate every open port's stream (quiescence handling)."""
        closed = 0
        for port in self.ports:
            if not port.closed:
                self.port_close(port, port.owner, now)
                closed += 1
        self._ports_closed = True
        return closed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MachineMetrics:
        """Run until the pool drains.  Raises :class:`DeadlockError` if
        suspended processes remain that cannot be resolved by closing
        ports, and :class:`ProcessFailureError` on unmatched processes."""
        machine = self.machine
        procs = machine.procs
        events = self._events
        queues = self._queues
        event_time = self._event_time
        while True:
            while events:
                time, _, pnum = heappop(events)
                if event_time[pnum - 1] != time:
                    continue  # stale duplicate marker
                event_time[pnum - 1] = None
                queue = queues[pnum - 1]
                if not queue:
                    continue
                vp = procs[pnum - 1]
                actual = queue[0][0]
                if vp.clock > actual:
                    actual = vp.clock
                if actual > time:
                    self._schedule(pnum, actual)
                    continue
                _, _, process = heappop(queue)
                if process.state != _RUNNABLE:
                    self._schedule_from_queue(pnum)
                    continue
                self._reduction_budget -= 1
                if self._reduction_budget < 0:
                    raise StrandError(
                        f"reduction budget of {self.max_reductions} exhausted "
                        f"(possible runaway recursion)"
                    )
                cost = self._execute(process, actual)
                if cost is None:
                    self._schedule_from_queue(pnum)
                    continue  # suspended; costs nothing
                vp.clock = actual + cost
                vp.busy += cost
                vp.reductions += 1
                self._schedule_from_queue(pnum)
            if not self._suspended:
                break
            if not self._try_quiesce():
                self._deadlock()
        return machine.metrics()

    def _try_quiesce(self) -> bool:
        """All runnable work is gone but suspensions remain.  If every
        suspended process is a declared service, close the ports so the
        services can see end-of-stream and finish."""
        if self._ports_closed or not self.auto_close_ports:
            return False
        for process in self._suspended.values():
            if process.goal.indicator not in self.services:
                return False
        now = max(p.clock for p in self.machine.procs)
        return self.close_all_ports(now) > 0

    def _deadlock(self) -> None:
        goals = [p.describe() for p in list(self._suspended.values())[:12]]
        more = len(self._suspended) - len(goals)
        listing = "\n  ".join(goals) + (f"\n  ... and {more} more" if more > 0 else "")
        raise DeadlockError(
            f"computation deadlocked with {len(self._suspended)} suspended "
            f"process(es):\n  {listing}"
        )

    def _execute(self, process: Process, now: float) -> float | None:
        """One reduction attempt.  Returns the cost, or ``None`` if the
        process suspended."""
        goal = deref(process.goal)
        if type(goal) is Atom:
            goal = Struct(goal.name, ())
            process.goal = goal
        indicator = goal.indicator
        builtin = BUILTINS.get(indicator)
        try:
            if builtin is not None:
                cost = builtin(self, process, goal.args, now)
            else:
                foreign = self.foreign.lookup(*indicator)
                if foreign is not None:
                    cost = self._call_foreign(foreign, process, goal, now)
                else:
                    cost = self._reduce_user(process, goal, now)
        except Suspend as s:
            self._suspend(process, s.variables, now)
            return None
        process.state = _DONE
        self._live -= 1
        vp = self.machine.procs[process.proc - 1]
        if process.watched:
            vp.task_finished()
        if process.lib:
            self.machine.library_cost += cost
        else:
            self.machine.user_cost += cost
        self.machine.trace.record(now, process.proc, "reduce", goal.functor)
        return cost

    def _reduce_user(self, process: Process, goal: Struct, now: float) -> float:
        procedure = self._procs_cache.get(goal.indicator)
        if procedure is None:
            raise UnknownProcedureError(
                f"no procedure, builtin, or foreign function "
                f"{goal.functor}/{len(goal.args)} (goal: {process.describe()})"
            )
        blocked: list[Var] = []
        for rule in procedure.rules:
            m = match_head(rule.head, goal)
            if m.status == MatchResult.FAILED:
                continue
            if m.status == MatchResult.SUSPENDED:
                blocked.extend(m.blocked)
                continue
            g = eval_guards(rule.guards, m.env)
            if g.status == MatchResult.FAILED:
                continue
            if g.status == MatchResult.SUSPENDED:
                blocked.extend(g.blocked)
                continue
            # Commit: spawn the body.
            cost = self.reduction_cost
            fresh: dict[int, Var] = {}
            done = now + cost
            for body_goal in rule.body:
                inst = instantiate(body_goal, m.env, fresh)
                self._spawn_body(inst, process, done)
            return cost
        if blocked:
            raise Suspend(blocked)
        from repro.strand.pretty import format_term

        raise ProcessFailureError(
            f"process {format_term(goal)} matches no rule of "
            f"{goal.functor}/{len(goal.args)} and can never match"
        )

    def _spawn_body(self, inst: Term, parent: Process, ready: float) -> None:
        inst_d = deref(inst)
        if type(inst_d) is Atom:
            inst_d = Struct(inst_d.name, ())
        if type(inst_d) is not Struct:
            raise StrandError(
                f"body goal {inst_d!r} of {parent.describe()} is not callable"
            )
        indicator = inst_d.indicator
        if indicator in BUILTINS:
            lib: bool | None = parent.lib
        elif indicator in self.library:
            lib = True
        else:
            lib = False
        self.spawn(inst_d, parent.proc, ready=ready, lib=lib)

    def _call_foreign(self, fp, process: Process, goal: Struct, now: float) -> float:
        if fp.raw:
            cost = fp.fn(self, process, goal.args, now)
            return self.reduction_cost if cost is None else float(cost)
        blocked: list[Var] = []
        values: list[Any] = []
        for idx in fp.inputs:
            try:
                values.append(to_python(goal.args[idx]))
            except NotGround as ng:
                blocked.append(ng.variable)
        if blocked:
            raise Suspend(blocked)
        cost = fp.cost_for(values)
        result = fp.fn(*values)
        outputs = fp.outputs
        if outputs:
            if len(outputs) == 1:
                results = (result,)
            else:
                if not isinstance(result, tuple) or len(result) != len(outputs):
                    raise StrandError(
                        f"foreign {fp.name}/{fp.arity} must return a tuple of "
                        f"{len(outputs)} values"
                    )
                results = result
            for idx, value in zip(outputs, results):
                self.bind(goal.args[idx], from_python(value), process.proc, now)
        return cost


def run_query(
    program: Program,
    query: str,
    machine: Machine | None = None,
    foreign: ForeignRegistry | None = None,
    **engine_options: Any,
) -> QueryResult:
    """Parse a goal conjunction, run it to completion, return bindings.

    >>> result = run_query(program, "go(4)")
    >>> result = run_query(program, "reduce(T, Value)")
    >>> result["Value"]
    """
    goals, varmap = parse_query(query)
    engine = StrandEngine(program, machine=machine, foreign=foreign, **engine_options)
    for goal in goals:
        engine.spawn(goal, proc=1, ready=0.0)
    metrics = engine.run()
    return QueryResult(dict(varmap), metrics, engine.output, engine)
