"""The Strand runtime facade on the virtual multicomputer.

Semantics (paper §2.1): "The state of a computation is represented by a pool
of lightweight processes.  Execution proceeds by repeatedly selecting and
attempting to reduce processes in this pool.  ...  The availability of data
serves as the synchronization mechanism."

Architecture
------------
The runtime is a pipeline: *parse → transform → compile → schedule/reduce*
(see ``docs/INTERNALS.md``).  :class:`StrandEngine` is the facade that wires
the pieces together:

* the **compile layer** (:mod:`repro.strand.compile`) lowers the program to
  a :class:`CompiledProgram` — interned indicator tables, per-rule match and
  guard plans, and order-preserving first-argument rule indexing;
* the **scheduler** (:mod:`repro.strand.scheduler`) is a discrete-event
  simulator: a global event heap orders processors by the earliest time they
  can next execute, and per-processor heaps order processes by readiness;
* the **reducer** (:mod:`repro.strand.reducer`) performs one reduction
  attempt: builtin, foreign, or compiled user-rule dispatch.

The engine itself keeps the parts builtins interact with: binding (with
wakeups), ports, spawning (local and remote with the network's latency),
and the quiescence policy for declared services.

Everything is deterministic given the machine seed: ties break on a
monotone sequence number.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import (
    DoubleAssignmentError,
    StrandError,
)
from repro.machine.metrics import MachineMetrics
from repro.machine.simulator import Machine
from repro.strand.builtins import BUILTINS
from repro.strand.compile import CompiledProgram, compile_program
from repro.strand.foreign import ForeignRegistry, to_python
from repro.strand.parser import parse_query
from repro.strand.program import Program
from repro.strand.reducer import Reducer
from repro.strand.scheduler import DONE, RUNNABLE, SUSPENDED, Process, Scheduler
from repro.strand.streams import PortRef
from repro.strand.terms import Atom, Cons, NIL, Struct, Term, Var, deref, term_eq

__all__ = ["Process", "ReliableState", "StrandEngine", "QueryResult", "run_query"]

# Backwards-compatible aliases for the process states now defined in the
# scheduler module.
_RUNNABLE = RUNNABLE
_SUSPENDED = SUSPENDED
_DONE = DONE


def _msg_tag(msg: Term) -> str:
    """Short classification of a message for traces (its functor)."""
    msg = deref(msg)
    if type(msg) is Struct:
        return msg.functor
    if type(msg) is Atom:
        return msg.name
    return type(msg).__name__.lower()


class ReliableState:
    """Per-engine bookkeeping for the Reliable motif's builtins.

    ``next_seq`` assigns per-(sender processor, destination) sequence
    numbers; ``seen`` is the receive-side dedup set of delivered
    ``(sender, destination, seq)`` tokens; ``unreachable`` is the status
    stream — one entry per destination the protocol gave up on, in
    delivery order."""

    def __init__(self):
        self.next_seq: dict[tuple[int, int], int] = {}
        self.seen: set[tuple[int, int, int]] = set()
        self.unreachable: list[tuple[int, int, int]] = []


class QueryResult:
    """Answer bindings + machine metrics + any ``write/1`` output."""

    def __init__(self, bindings: dict[str, Term], metrics: MachineMetrics,
                 output: list[str], engine: "StrandEngine"):
        self.bindings = bindings
        self.metrics = metrics
        self.output = output
        self.engine = engine

    def __getitem__(self, name: str) -> Term:
        return deref(self.bindings[name])

    def value(self, name: str) -> Any:
        """The binding for ``name`` converted to Python data."""
        return to_python(self.bindings[name])


class StrandEngine:
    """Runs a :class:`Program` on a :class:`Machine`.

    Parameters
    ----------
    program:
        The (already motif-transformed) program to run; compiled on entry
        (cached per program instance, so re-running the same program pays
        compilation once).
    machine:
        Virtual multicomputer; defaults to a single processor.
    foreign:
        Registry of Python procedures callable from Strand.
    watched:
        ``name/arity`` pairs whose live-process high-water is tracked per
        processor (experiment E4's memory proxy).
    library:
        ``name/arity`` pairs charged as *motif library* cost rather than
        user cost (experiment E8's overhead split).
    services:
        ``name/arity`` pairs of perpetual service processes (servers,
        merges).  When only services remain suspended and every open port
        has gone quiet, the engine closes all ports so services can
        terminate — the engine-level complement of the short-circuit
        termination motif.
    indexing:
        When False, rule selection falls back to a linear scan over the
        compiled rules (the benchmark ablation switch); semantics are
        identical either way.
    profile:
        Optional :class:`~repro.machine.profile.MotifProfile` — when set,
        every reduction, suspension, and explicit message is attributed to
        the ``(motif, predicate)`` pair that caused it.  ``None`` (the
        default) keeps the hot path at a single ``is not None`` check.
    abandon_stragglers:
        When True, processes still suspended once the computation is
        otherwise quiescent (no runnable work, no pending timers, ports
        already closed) are abandoned instead of raising
        :class:`DeadlockError`.  Message-loss faults can permanently strand
        the guts of a superseded supervision attempt — its retry already
        resolved the output the stragglers were computing — so the
        Reliable ∘ Supervise composition opts in.  Abandoned stragglers are
        counted as ``processes_abandoned`` and traced.  Leave False (the
        default) anywhere deadlock detection matters.
    """

    def __init__(
        self,
        program: Program,
        machine: Machine | None = None,
        foreign: ForeignRegistry | None = None,
        *,
        watched: Iterable[tuple[str, int]] = (),
        library: Iterable[tuple[str, int]] = (),
        services: Iterable[tuple[str, int]] = (),
        max_reductions: int = 5_000_000,
        auto_close_ports: bool = True,
        reduction_cost: float = 1.0,
        indexing: bool = True,
        abandon_stragglers: bool = False,
        profile=None,
    ):
        self.program = program
        self.machine = machine or Machine(1)
        self.foreign = foreign or ForeignRegistry()
        self.watched = set(watched)
        self.library = set(library)
        self.services = set(services) | {("merge", 3)}
        self.max_reductions = max_reductions
        self.auto_close_ports = auto_close_ports
        self.reduction_cost = reduction_cost
        self.abandon_stragglers = abandon_stragglers
        self.profile = profile
        # Shard context when this engine runs inside a parallel-backend
        # worker (None in sequential operation and in the coordinating
        # parent).  Engine options are kept so the parallel backend can
        # reconstruct equivalent engines in worker processes.
        self.shard = None
        self._options = dict(
            watched=tuple(sorted(self.watched)),
            library=tuple(sorted(self.library)),
            services=tuple(sorted(self.services)),
            max_reductions=max_reductions,
            auto_close_ports=auto_close_ports,
            reduction_cost=reduction_cost,
            indexing=indexing,
            abandon_stragglers=abandon_stragglers,
        )

        self.compiled: CompiledProgram = compile_program(program, index=indexing)
        self.scheduler = Scheduler(self.machine, max_reductions)
        self.reducer = Reducer(
            self, self.compiled, self.foreign, reduction_cost=reduction_cost
        )

        self.output: list[str] = []
        self.rel_state = ReliableState()
        self.ports: list[PortRef] = []
        self._ports_closed = False
        self._quiesce_closes = 0
        self._crash_timers_installed = False

    # -- compatibility views over the scheduler's state -----------------
    @property
    def _suspended(self) -> dict[int, Process]:
        return self.scheduler.suspended

    @property
    def _live(self) -> int:
        return self.scheduler.live

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def spawn(self, goal: Term, proc: int = 1, ready: float = 0.0,
              lib: bool | None = None, cause: int | None = None,
              motif: str | None = None) -> Process:
        """Add a process to the pool on processor ``proc`` (1-based).

        ``cause`` is the trace event id the spawn links back to (``None`` =
        current causal context); ``motif`` overrides provenance lookup (the
        reducer passes the spawning rule's tag for builtin continuations).
        """
        goal = deref(goal)
        if type(goal) is Atom:
            goal = Struct(goal.name, ())
        if type(goal) is not Struct:
            raise StrandError(f"cannot spawn non-goal term {goal!r}")
        indicator = goal.indicator
        if lib is None:
            lib = indicator in self.library
        watched = indicator in self.watched
        scheduler = self.scheduler
        process = Process(goal, proc, ready, scheduler.next_seq(), lib, watched)
        vp = self.machine.procs[proc - 1]
        vp.spawns += 1
        if watched:
            vp.task_spawned()
        scheduler.live += 1
        scheduler.push(process)
        trace = self.machine.trace
        if trace.enabled or self.profile is not None:
            if motif is None:
                motif = self.compiled.motif_of.get(indicator)
            process.motif = motif
            eid = trace.record(ready, proc, "spawn", goal.functor,
                               cause=cause, motif=motif or "")
            # The spawn becomes the child's causal context; if it was
            # dropped (trace full), fall back so chains skip the hole.
            process.cause_evt = eid if eid else (
                trace.cause if cause is None else cause
            )
        return process

    def spawn_remote(self, goal: Term, src: int, dst: int, now: float,
                     lib: bool = False) -> Process | None:
        """Spawn on another processor; the task travels as a message.

        Under a fault plan the message may be dropped (returns ``None`` —
        the task is simply lost, as on a real network) or delayed (the
        fate's inflated latency is used).  The send is accounted either
        way: the message left the source."""
        shard = self.shard
        if shard is not None and not shard.owns(dst):
            return shard.remote_spawn(goal, src, dst, now, lib)
        latency = 0.0
        cause: int | None = None
        if src != dst:
            fate, latency = self.machine.message_fate(
                src, dst, now, duplicable=False
            )
            vp = self.machine.procs[src - 1]
            vp.sends += 1
            vp.hops += self.machine.hops(src, dst)
            if self.profile is not None:
                self.profile.message()
            if self.machine.trace.enabled:
                seid = self.machine.trace.record(
                    now, src, "send", f"spawn:{_msg_tag(goal)}->{dst}"
                )
                cause = seid or None
            if fate == "drop":
                return None
        indicator_lib = None
        goal_d = deref(goal)
        if type(goal_d) is Struct and goal_d.indicator in BUILTINS:
            indicator_lib = lib
        return self.spawn(goal, dst, ready=now + latency, lib=indicator_lib,
                          cause=cause)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, target: Term, value: Term, proc: int, now: float,
             cause: int | None = None) -> None:
        """Bind ``target`` (which must deref to an unbound variable, or to a
        term structurally equal to ``value``) and wake its waiters.

        ``cause`` is the trace event id that produced the binding (``None``
        = current causal context; port delivery passes the send event);
        woken waiters link to the bind event, completing the
        send → bind → wake chain."""
        target = deref(target)
        if type(target) is not Var:
            if term_eq(target, value):
                return
            self.double_assignment(target, value, None)
        value_d = deref(value)
        if value_d is target:
            return  # X := X — trivially satisfied
        target.ref = value_d
        shard = self.shard
        if shard is not None and not shard.suppress:
            vid = shard.var_vids.get(id(target))
            if vid is not None:
                # The variable is replicated on other shards (it crossed a
                # shard boundary inside some message): broadcast the binding
                # so every replica resolves at the next epoch barrier.
                shard.queue_bind(vid, value_d, proc, now)
        waiters = target.waiters
        target.waiters = None
        trace = self.machine.trace
        beid = (trace.record(now, proc, "bind", target.name, cause=cause)
                if trace.enabled else 0)
        if type(value_d) is Var:
            # Aliasing two unbound variables: move waiters across.
            if waiters:
                if value_d.waiters is None:
                    value_d.waiters = waiters
                else:
                    value_d.waiters.extend(waiters)
            return
        if waiters:
            self.scheduler.wake(waiters, proc, now, beid or None)

    def bind_if_unbound(self, target: Term, value: Term, proc: int,
                        now: float, cause: int | None = None) -> bool:
        """Bind only when ``target`` is still an unbound variable; return
        whether a binding happened.  This is the race-free primitive the
        supervision motif needs: a timeout and a late-completing attempt
        may both try to resolve the same probe, and whichever runs first in
        the deterministic event order wins — the loser is a no-op instead
        of a double-assignment error."""
        target = deref(target)
        if type(target) is not Var:
            return False
        self.bind(target, value, proc, now, cause=cause)
        return True

    def double_assignment(self, target: Term, value: Term, process: Process | None):
        from repro.strand.pretty import format_term

        where = f" in {process.describe()}" if process else ""
        raise DoubleAssignmentError(
            f"assignment to bound value {format_term(target)} "
            f"(new value {format_term(value)}){where}"
        )

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def register_port(self, port: PortRef) -> None:
        self.ports.append(port)

    def port_send(self, port: PortRef, msg: Term, src: int, now: float) -> None:
        if port.closed:
            raise StrandError(f"send on closed port {port!r}")
        shard = self.shard
        if shard is not None:
            gid = shard.port_gid(port)
            if gid[0] != shard.id:
                # Stub of a port owned by another shard: account the send
                # here (the message left this shard) and let the owner
                # splice it into the real stream at the epoch barrier.
                shard.remote_port_send(gid, msg, src, port.owner, now)
                return
        deliver_at = now
        cause: int | None = None
        if src != port.owner:
            fate, latency = self.machine.message_fate(src, port.owner, now)
            vp = self.machine.procs[src - 1]
            vp.sends += 1
            vp.hops += self.machine.hops(src, port.owner)
            if self.profile is not None:
                self.profile.message()
            if self.machine.trace.enabled:
                seid = self.machine.trace.record(
                    now, src, "send", f"port:{_msg_tag(msg)}->{port.owner}"
                )
                cause = seid or None
            if fate == "drop":
                # Lost message: the stream tail does not advance, so the
                # dropped element simply never appears — later sends splice
                # in after the last delivered one.
                return
            if fate == "delay":
                deliver_at = now + (latency - self.machine.latency(src, port.owner))
            if fate == "duplicate":
                # At-least-once artefact: the element is spliced into the
                # stream twice, back to back.  Receivers without dedup see
                # the message twice.
                self._port_append(port, msg, src, deliver_at, cause)
        self._port_append(port, msg, src, deliver_at, cause)

    def _port_append(self, port: PortRef, msg: Term, src: int, at: float,
                     cause: int | None = None) -> None:
        old_tail = port.tail
        new_tail = Var("PortTail")
        port.tail = new_tail
        self.bind(old_tail, Cons(msg, new_tail), src, at, cause=cause)

    def port_close(self, port: PortRef, src: int, now: float) -> None:
        if port.closed:
            return
        shard = self.shard
        if shard is not None:
            gid = shard.port_gid(port)
            if gid[0] != shard.id:
                port.closed = True
                shard.remote_port_close(gid, src, now)
                return
        port.closed = True
        self.bind(port.tail, NIL, src, now)

    def close_all_ports(self, now: float) -> int:
        """Terminate every open port's stream (quiescence handling)."""
        closed = 0
        for port in self.ports:
            if not port.closed:
                self.port_close(port, port.owner, now)
                closed += 1
        self._ports_closed = True
        return closed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MachineMetrics:
        """Run until the pool drains.  Raises :class:`DeadlockError` if
        suspended processes remain that cannot be resolved by closing
        ports, and :class:`ProcessFailureError` on unmatched processes."""
        if self.shard is None and self.machine.backend == "parallel":
            from repro.machine.parallel import run_parallel

            return run_parallel(self)
        # Display names for anonymous variables restart at _G1 each run, so
        # same-seed runs in one process emit byte-identical traces (the
        # counter is otherwise process-global and would keep climbing).
        Var.reset_names()
        self.machine.trace.cause = 0
        self._install_crash_timers()
        self.scheduler.run(self.reducer.execute, self._try_quiesce)
        return self.machine.metrics()

    def _install_crash_timers(self) -> None:
        """Arm one scheduler timer per entry in the machine's seed-fixed
        crash schedule (idempotent across repeated ``run`` calls)."""
        if self._crash_timers_installed:
            return
        self._crash_timers_installed = True
        for pnum in sorted(self.machine.crash_schedule):
            when = self.machine.crash_schedule[pnum]
            self.scheduler.add_timer(
                when, lambda now, p=pnum: self._crash(p, now)
            )

    def _crash(self, pnum: int, now: float) -> None:
        migrate_to = None
        faults = self.machine.faults
        if faults is not None and faults.migrate:
            migrate_to = self._next_live(pnum)
        self.scheduler.kill_processor(pnum, now, migrate_to=migrate_to)

    def _next_live(self, pnum: int) -> int | None:
        """The next live processor after ``pnum`` in ring order (migration
        target for a crashed processor's runnable queue)."""
        size = self.machine.size
        for offset in range(1, size):
            candidate = (pnum - 1 + offset) % size + 1
            if self.machine.procs[candidate - 1].alive:
                return candidate
        return None

    def _try_quiesce(self) -> bool:
        """All runnable work is gone but suspensions remain.  If every
        suspended process is a declared service, close the ports so the
        services can see end-of-stream and finish.  With
        ``abandon_stragglers``, non-service suspensions do not block the
        close (they may be stragglers of superseded supervision attempts),
        and whatever is still suspended after the close is abandoned
        rather than reported as a deadlock."""
        if not self._ports_closed and self.auto_close_ports:
            releasable = self.abandon_stragglers or all(
                process.goal.indicator in self.services
                for process in self.scheduler.suspended.values()
            )
            if releasable:
                now = max(p.clock for p in self.machine.procs)
                if self.close_all_ports(now) > 0:
                    self._quiesce_closes += 1
                    return True
        if self.abandon_stragglers and self.scheduler.suspended:
            now = max(p.clock for p in self.machine.procs)
            stats = self.machine.fault_stats
            for key, process in sorted(
                self.scheduler.suspended.items(),
                key=lambda item: (item[1].proc, item[1].seq),
            ):
                del self.scheduler.suspended[key]
                process.state = _DONE
                self.scheduler.live -= 1
                stats.processes_abandoned += 1
                self.machine.trace.record(
                    now, process.proc, "fault",
                    f"straggler:{process.goal.functor}",
                )
            return True
        return False


def run_query(
    program: Program,
    query: str,
    machine: Machine | None = None,
    foreign: ForeignRegistry | None = None,
    **engine_options: Any,
) -> QueryResult:
    """Parse a goal conjunction, run it to completion, return bindings.

    >>> result = run_query(program, "go(4)")
    >>> result = run_query(program, "reduce(T, Value)")
    >>> result["Value"]
    """
    goals, varmap = parse_query(query)
    engine = StrandEngine(program, machine=machine, foreign=foreign, **engine_options)
    for goal in goals:
        engine.spawn(goal, proc=1, ready=0.0)
    metrics = engine.run()
    return QueryResult(dict(varmap), metrics, engine.output, engine)
