"""Body builtins of the Strand dialect.

Each builtin is a function ``fn(engine, process, args, now) -> float`` that
either completes (returning the virtual cost to charge) or raises
:class:`~repro.strand.arith.Suspend` with the variables it is waiting on.
Builtins may bind variables (via ``engine.bind``) and spawn continuation
processes (via ``engine.spawn``) — ``merge/3`` is the canonical example of
a builtin that re-spawns itself.

The set matches the primitives the paper's programs use: ``:=``, ``length``,
``make_tuple``, ``put_arg``, ``rand_num``, ``distribute``, ``merge``, plus
the port primitives Strand systems provided underneath (``open_port``,
``send_port``, ``close_port``) and no-cost instrumentation hooks used by
the memory experiment (E4).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PragmaError, StrandError
from repro.strand.arith import ArithFail, Suspend, eval_arith, is_arith_expr
from repro.strand.streams import PortRef
from repro.strand.terms import (
    Atom,
    Cons,
    NIL,
    Struct,
    Term,
    Tup,
    Var,
    deref,
    rename_term,
    term_eq,
)

__all__ = ["BUILTINS", "is_builtin"]

# Populated at module bottom: (name, arity) -> callable.
BUILTINS: dict[tuple[str, int], Callable] = {}


def is_builtin(indicator: tuple[str, int]) -> bool:
    return indicator in BUILTINS


def _builtin(name: str, arity: int):
    def register(fn: Callable) -> Callable:
        BUILTINS[(name, arity)] = fn
        return fn

    return register


def _need_bound(term: Term) -> Term:
    """Deref; raise Suspend if unbound."""
    term = deref(term)
    if type(term) is Var:
        raise Suspend([term])
    return term


def _need_int(term: Term, what: str) -> int:
    """Evaluate an arithmetic argument to an integer (suspending on vars)."""
    try:
        value = eval_arith(term)
    except ArithFail as e:
        raise StrandError(f"{what}: {e}") from None
    if not isinstance(value, int):
        raise StrandError(f"{what}: expected integer, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Assignment
# ---------------------------------------------------------------------------

@_builtin(":=", 2)
def _assign(engine, process, args, now):
    lhs, rhs = deref(args[0]), deref(args[1])
    if is_arith_expr(rhs):
        try:
            value = eval_arith(rhs)
        except ArithFail as e:
            raise StrandError(f"arithmetic in := failed: {e}") from None
    else:
        value = rhs
    if type(lhs) is not Var:
        # The paper: "Attempts to assign to a variable that has a value are
        # signaled as run-time errors."  Identical re-assignment is
        # tolerated (it is a no-op and arises naturally from short-circuit
        # chains); differing values are a hard error, raised by bind().
        if term_eq(lhs, value):
            return 1.0
        engine.double_assignment(lhs, value, process)
    engine.bind(lhs, value, process.proc, now)
    return 1.0


# ---------------------------------------------------------------------------
# Tuples
# ---------------------------------------------------------------------------

@_builtin("length", 2)
def _length(engine, process, args, now):
    t = _need_bound(args[0])
    if type(t) is Tup:
        n = len(t.args)
    elif type(t) is Cons or t is NIL:
        n = 0
        while type(t) is Cons:
            n += 1
            t = _need_bound(t.tail)
        if t is not NIL:
            raise StrandError(f"length/2 on improper list ending in {t!r}")
    elif type(t) is Struct:
        n = len(t.args)
    else:
        raise StrandError(f"length/2 needs a tuple or list, got {t!r}")
    engine.bind(args[1], n, process.proc, now)
    return 1.0


@_builtin("make_tuple", 2)
def _make_tuple(engine, process, args, now):
    n = _need_int(args[0], "make_tuple/2 size")
    if n < 0:
        raise StrandError(f"make_tuple/2: negative size {n}")
    engine.bind(args[1], Tup([Var() for _ in range(n)]), process.proc, now)
    return 1.0


@_builtin("put_arg", 3)
def _put_arg(engine, process, args, now):
    i = _need_int(args[0], "put_arg/3 index")
    t = _need_bound(args[1])
    if type(t) is not Tup:
        raise StrandError(f"put_arg/3 needs a tuple, got {t!r}")
    if not 1 <= i <= len(t.args):
        raise StrandError(f"put_arg/3 index {i} out of range 1..{len(t.args)}")
    slot = deref(t.args[i - 1])
    if type(slot) is not Var:
        raise StrandError(f"put_arg/3: slot {i} already holds {slot!r}")
    engine.bind(slot, args[2], process.proc, now)
    return 1.0


@_builtin("arg", 3)
def _arg(engine, process, args, now):
    i = _need_int(args[0], "arg/3 index")
    t = _need_bound(args[1])
    if type(t) not in (Tup, Struct):
        raise StrandError(f"arg/3 needs a tuple or structure, got {t!r}")
    if not 1 <= i <= len(t.args):
        raise StrandError(f"arg/3 index {i} out of range 1..{len(t.args)}")
    engine.bind(args[2], t.args[i - 1], process.proc, now)
    return 1.0


# ---------------------------------------------------------------------------
# Random numbers & placement
# ---------------------------------------------------------------------------

@_builtin("rand_num", 2)
def _rand_num(engine, process, args, now):
    n = _need_int(args[0], "rand_num/2 bound")
    if n < 1:
        raise StrandError(f"rand_num/2: bound must be >= 1, got {n}")
    engine.bind(args[1], engine.machine.rng.randint(1, n), process.proc, now)
    return 1.0


@_builtin("@", 2)
def _place(engine, process, args, now):
    goal, where = args[0], deref(args[1])
    if type(where) is Atom:
        raise PragmaError(
            f"pragma '@ {where.name}' reached the engine; a motif "
            f"transformation (e.g. Random) must erase it first"
        )
    target = engine.machine.normalize(_need_int(where, "@/2 processor"))
    engine.spawn_remote(goal, src=process.proc, dst=target, now=now, lib=process.lib)
    return 1.0


# ---------------------------------------------------------------------------
# Ports and streams
# ---------------------------------------------------------------------------

@_builtin("open_port", 2)
def _open_port(engine, process, args, now):
    tail = Var("PortTail")
    port = PortRef(tail, owner=process.proc)
    engine.register_port(port)
    engine.bind(args[0], port, process.proc, now)
    engine.bind(args[1], tail, process.proc, now)
    return 1.0


@_builtin("send_port", 2)
def _send_port(engine, process, args, now):
    port = _need_bound(args[0])
    if not isinstance(port, PortRef):
        raise StrandError(f"send_port/2 needs a port, got {port!r}")
    engine.port_send(port, args[1], src=process.proc, now=now)
    return 1.0


@_builtin("close_port", 1)
def _close_port(engine, process, args, now):
    port = _need_bound(args[0])
    if not isinstance(port, PortRef):
        raise StrandError(f"close_port/1 needs a port, got {port!r}")
    engine.port_close(port, src=process.proc, now=now)
    return 1.0


@_builtin("distribute", 3)
def _distribute(engine, process, args, now):
    """``distribute(Node, Msg, DT)`` — send Msg on the Node-th port of the
    server tuple DT (§3.2, transformation step 2)."""
    node = _need_int(args[0], "distribute/3 node")
    dt = _need_bound(args[2])
    if type(dt) is not Tup:
        raise StrandError(f"distribute/3 needs a tuple of ports, got {dt!r}")
    if not 1 <= node <= len(dt.args):
        raise StrandError(
            f"distribute/3 node {node} out of range 1..{len(dt.args)}"
        )
    port = _need_bound(dt.args[node - 1])
    if not isinstance(port, PortRef):
        raise StrandError(f"distribute/3: slot {node} holds {port!r}, not a port")
    engine.port_send(port, args[1], src=process.proc, now=now)
    return 1.0


@_builtin("merge", 3)
def _merge(engine, process, args, now):
    """Binary stream merge: items from either input appear on the output.

    Deterministic fairness: after forwarding from one input the merge
    re-spawns with the inputs swapped, so neither stream can starve the
    other.
    """
    xs, ys, out = deref(args[0]), deref(args[1]), deref(args[2])
    if type(xs) is Cons:
        rest = Var("MergeOut")
        engine.bind(out, Cons(xs.head, rest), process.proc, now)
        engine.spawn(
            Struct("merge", (ys, xs.tail, rest)), process.proc,
            ready=now + 1.0, lib=process.lib, motif=process.motif,
        )
        return 1.0
    if type(ys) is Cons:
        rest = Var("MergeOut")
        engine.bind(out, Cons(ys.head, rest), process.proc, now)
        engine.spawn(
            Struct("merge", (ys.tail, xs, rest)), process.proc,
            ready=now + 1.0, lib=process.lib, motif=process.motif,
        )
        return 1.0
    if xs is NIL:
        engine.bind(out, ys, process.proc, now)
        return 1.0
    if ys is NIL:
        engine.bind(out, xs, process.proc, now)
        return 1.0
    blocked = [v for v in (xs, ys) if type(v) is Var]
    raise Suspend(blocked)


# ---------------------------------------------------------------------------
# Supervision primitives (see motifs/supervisor.py)
# ---------------------------------------------------------------------------

@_builtin("call", 1)
def _call(engine, process, args, now):
    """Metacall: spawn the (bound) argument as a new process here."""
    goal = _need_bound(args[0])
    if type(goal) not in (Struct, Atom):
        raise StrandError(f"call/1 needs a goal, got {goal!r}")
    engine.spawn(goal, process.proc, ready=now + 1.0, lib=process.lib)
    return 1.0  # provenance of the called goal is looked up, not inherited


@_builtin("after", 2)
def _after(engine, process, args, now):
    """``after(Delay, Probe)`` — arm a virtual timer; when it fires, bind
    ``Probe`` to ``timeout`` *unless something already bound it*.  An
    expired no-op timer costs nothing and advances no clock, so timeouts
    that never trip do not inflate the makespan."""
    try:
        delay = eval_arith(args[0])
    except ArithFail as e:
        raise StrandError(f"after/2 delay: {e}") from None
    if not isinstance(delay, (int, float)) or delay < 0:
        raise StrandError(f"after/2: delay must be a non-negative number, got {delay!r}")
    probe = args[1]
    proc = process.proc
    # Causal context at arm time: the timeout (if it fires) links back to
    # the reduction that armed it, not to whatever happens to be executing
    # when the timer pops.
    trace = engine.machine.trace
    armed = trace.cause if trace.enabled else 0

    def fire(fire_now: float, probe=probe, proc=proc, armed=armed):
        # A timer armed by a processor that has since crashed must not
        # fire: fail-stop means the processor executes nothing further,
        # including its pending timeouts.
        if not engine.machine.procs[proc - 1].alive:
            return
        if type(deref(probe)) is not Var:
            return  # something already resolved the probe — no-op timer
        teid = engine.machine.trace.record(
            fire_now, proc, "timeout", "after/2", cause=armed
        )
        engine.bind(probe, Atom("timeout"), proc, fire_now,
                    cause=teid or None)
        engine.machine.fault_stats.sup_timeouts += 1

    engine.scheduler.add_timer(now + delay, fire)
    return 1.0


@_builtin("soft_bind", 2)
def _soft_bind(engine, process, args, now):
    """Bind-if-unbound: the race-free resolution primitive.  First writer
    (in deterministic event order) wins; later writers are no-ops."""
    engine.bind_if_unbound(args[0], args[1], process.proc, now)
    return 1.0


@_builtin("sup_fresh", 4)
def _sup_fresh(engine, process, args, now):
    """``sup_fresh(Goal, K, Copy, CopyOut)`` — make a fresh-variable copy
    of ``Goal`` (the retry-attempt primitive: each attempt gets private
    variables so a late straggler from a previous attempt cannot collide
    with the current one) and expose the copy and its K-th argument."""
    goal = _need_bound(args[0])
    k = _need_int(args[1], "sup_fresh/4 index")
    if type(goal) is not Struct:
        raise StrandError(f"sup_fresh/4 needs a structure goal, got {goal!r}")
    if not 1 <= k <= len(goal.args):
        raise StrandError(
            f"sup_fresh/4 index {k} out of range 1..{len(goal.args)}"
        )
    copy = rename_term(goal)
    engine.bind(args[2], copy, process.proc, now)
    engine.bind(args[3], copy.args[k - 1], process.proc, now)
    return 1.0


@_builtin("sup_note", 1)
def _sup_note(engine, process, args, now):
    """Zero-cost supervision accounting hook: ``sup_note(retry)`` /
    ``sup_note(degrade)`` bump the machine's fault counters."""
    what = _need_bound(args[0])
    name = what.name if type(what) is Atom else str(what)
    stats = engine.machine.fault_stats
    if name == "retry":
        stats.sup_retries += 1
    elif name == "degrade":
        stats.sup_degraded += 1
    else:
        raise StrandError(f"sup_note/1: unknown event {name!r}")
    engine.machine.trace.record(now, process.proc, "fault", f"sup:{name}")
    return 0.0


# ---------------------------------------------------------------------------
# Reliable-delivery primitives (see motifs/reliable.py)
# ---------------------------------------------------------------------------

@_builtin("rel_seq", 2)
def _rel_seq(engine, process, args, now):
    """``rel_seq(Node, Tok)`` — assign the next per-(sender, destination)
    sequence number and bind ``Tok`` to the send token
    ``sid(Sender, Node, Seq)`` that identifies this logical message across
    retransmissions."""
    node = _need_int(args[0], "rel_seq/2 node")
    key = (process.proc, node)
    state = engine.rel_state
    seq = state.next_seq.get(key, 0) + 1
    state.next_seq[key] = seq
    engine.bind(args[1], Struct("sid", (process.proc, node, seq)), process.proc, now)
    return 1.0


def _rel_token(term: Term, what: str) -> tuple[int, int, int]:
    tok = _need_bound(term)
    if type(tok) is not Struct or tok.indicator != ("sid", 3):
        raise StrandError(f"{what} needs a sid/3 token, got {tok!r}")
    parts = tuple(deref(a) for a in tok.args)
    if not all(isinstance(p, int) for p in parts):
        raise StrandError(f"{what}: malformed token {tok!r}")
    return parts  # type: ignore[return-value]


@_builtin("rel_accept", 2)
def _rel_accept(engine, process, args, now):
    """``rel_accept(Tok, Verdict)`` — receive-side dedup: bind ``Verdict``
    to ``new`` the first time a token is seen and ``dup`` on every
    redelivery (retransmission or network duplicate)."""
    key = _rel_token(args[0], "rel_accept/2")
    state = engine.rel_state
    if key in state.seen:
        engine.machine.fault_stats.rel_duplicates_suppressed += 1
        engine.machine.trace.record(
            now, process.proc, "fault", f"rel:dup-suppressed p{key[0]}#{key[2]}"
        )
        verdict = Atom("dup")
    else:
        state.seen.add(key)
        verdict = Atom("new")
    engine.bind(args[1], verdict, process.proc, now)
    return 1.0


@_builtin("rel_ack", 1)
def _rel_ack(engine, process, args, now):
    """``rel_ack(Ack)`` — acknowledge receipt by binding the sender's ack
    variable (variable-binding wakeups are reliable in the failure model,
    so the ack itself cannot be lost).  Idempotent: redeliveries re-ack the
    already-bound variable at no cost."""
    if engine.bind_if_unbound(args[0], Atom("ack"), process.proc, now):
        engine.machine.fault_stats.rel_acks += 1
    return 1.0


@_builtin("rel_note", 1)
def _rel_note(engine, process, args, now):
    """Zero-cost reliability accounting hook: ``rel_note(retransmit)``."""
    what = _need_bound(args[0])
    name = what.name if type(what) is Atom else str(what)
    if name == "retransmit":
        engine.machine.fault_stats.rel_retransmits += 1
    else:
        raise StrandError(f"rel_note/1: unknown event {name!r}")
    engine.machine.trace.record(now, process.proc, "fault", f"rel:{name}")
    return 0.0


@_builtin("rel_dead", 2)
def _rel_dead(engine, process, args, now):
    """``rel_dead(Node, Tok)`` — the retry cap is exhausted: report ``Node``
    permanently unreachable on the engine's status stream
    (``engine.rel_state.unreachable``) instead of hanging the sender."""
    node = _need_int(args[0], "rel_dead/2 node")
    key = _rel_token(args[1], "rel_dead/2")
    engine.machine.fault_stats.rel_unreachable += 1
    engine.rel_state.unreachable.append(key)
    engine.machine.trace.record(
        now, process.proc, "fault", f"rel:unreachable p{node}#{key[2]}"
    )
    return 1.0


# ---------------------------------------------------------------------------
# Output & instrumentation
# ---------------------------------------------------------------------------

@_builtin("write", 1)
def _write(engine, process, args, now):
    from repro.strand.pretty import format_term

    engine.output.append(format_term(deref(args[0])))
    return 1.0


@_builtin("true", 0)
def _true(engine, process, args, now):
    return 0.0


@_builtin("note_value_produced", 0)
def _note_value_produced(engine, process, args, now):
    engine.machine.proc(process.proc).value_produced()
    return 0.0


@_builtin("note_value_consumed", 0)
def _note_value_consumed(engine, process, args, now):
    engine.machine.proc(process.proc).value_consumed()
    return 0.0
