"""The Strand-dialect substrate: terms, parser, pretty-printer, and the
committed-choice reduction engine on a virtual multicomputer.

Quick taste (Figure 1 of the paper)::

    from repro.strand import parse_program, run_query

    program = parse_program('''
        go(N) :- producer(N, Xs, sync), consumer(Xs).
        producer(N, Xs, _Sync) :- N > 0 |
            Xs := [X | Xs1], N1 := N - 1, producer(N1, Xs1, X).
        producer(0, Xs, _) :- Xs := [].
        consumer([X | Xs]) :- X := sync, consumer(Xs).
        consumer([]).
    ''')
    run_query(program, "go(4)")
"""

from repro.strand.compile import (
    CompiledProcedure,
    CompiledProgram,
    CompiledRule,
    SymbolTable,
    compile_program,
    symbol_table,
)
from repro.strand.engine import Process, QueryResult, StrandEngine, run_query
from repro.strand.lint import LintWarning, lint_program
from repro.strand.stdlib import STDLIB_SOURCE, stdlib
from repro.strand.foreign import ForeignProcedure, ForeignRegistry, from_python, to_python
from repro.strand.parser import parse_program, parse_query, parse_rule, parse_term
from repro.strand.pretty import format_goal, format_program, format_rule, format_term
from repro.strand.program import Procedure, Program, Rule
from repro.strand.streams import PortRef, collect_stream, stream_items
from repro.strand.terms import (
    Atom,
    Cons,
    NIL,
    Struct,
    Term,
    Tup,
    Var,
    deref,
    iter_list,
    list_to_python,
    make_list,
    term_eq,
    term_size,
    term_vars,
)

__all__ = [
    "Atom",
    "Cons",
    "NIL",
    "Struct",
    "Term",
    "Tup",
    "Var",
    "deref",
    "iter_list",
    "list_to_python",
    "make_list",
    "term_eq",
    "term_size",
    "term_vars",
    "Program",
    "Procedure",
    "Rule",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_term",
    "format_term",
    "format_rule",
    "format_goal",
    "format_program",
    "StrandEngine",
    "Process",
    "QueryResult",
    "run_query",
    "CompiledProgram",
    "CompiledProcedure",
    "CompiledRule",
    "SymbolTable",
    "compile_program",
    "symbol_table",
    "lint_program",
    "LintWarning",
    "stdlib",
    "STDLIB_SOURCE",
    "ForeignRegistry",
    "ForeignProcedure",
    "to_python",
    "from_python",
    "PortRef",
    "collect_stream",
    "stream_items",
]
