"""The reducer half of the runtime core: what one reduction attempt does.

A reduction attempt dispatches a process goal to a builtin, a foreign
(Python) procedure, or a user procedure of the :class:`CompiledProgram`.
User-rule selection goes through the compiled procedure's first-argument
index (see :mod:`repro.strand.compile`): the committed rule is always the
first *textually* matching one, exactly as the seed's linear scan chose, but
rules whose head could neither match nor suspend on the goal's first
argument are never visited.

The reducer touches scheduling only through the engine facade (spawning
bodies, suspending on blocked variables); the :class:`Scheduler` decides
when the resulting processes actually run.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProcessFailureError, StrandError, UnknownProcedureError
from repro.strand.arith import Suspend
from repro.strand.builtins import BUILTINS
from repro.strand.compile import CompiledProgram
from repro.strand.foreign import ForeignRegistry, NotGround, from_python, to_python
from repro.strand.scheduler import DONE, Process
from repro.strand.terms import Atom, Struct, Term, Var, deref

__all__ = ["Reducer"]


class Reducer:
    """Executes single reductions against a compiled program.

    ``engine`` is the facade builtins and foreign procedures are handed
    (they call ``engine.bind`` / ``engine.spawn`` / port operations);
    the reducer itself only reads program structure and charges costs.
    """

    def __init__(
        self,
        engine,
        compiled: CompiledProgram,
        foreign: ForeignRegistry,
        *,
        reduction_cost: float = 1.0,
    ):
        self.engine = engine
        self.compiled = compiled
        self.foreign = foreign
        self.reduction_cost = reduction_cost

    def execute(self, process: Process, now: float) -> float | None:
        """One reduction attempt.  Returns the cost, or ``None`` if the
        process suspended."""
        engine = self.engine
        trace = engine.machine.trace
        if trace.enabled:
            # Causal context: events recorded during this reduction (spawns,
            # binds, sends, the reduce itself) link to the event that made
            # this process runnable.
            trace.cause = process.cause_evt
        goal = deref(process.goal)
        if type(goal) is Atom:
            goal = Struct(goal.name, ())
            process.goal = goal
        indicator = goal.indicator
        profile = engine.profile
        if profile is not None:
            profile.begin(process.motif, indicator)
        builtin = BUILTINS.get(indicator)
        try:
            if builtin is not None:
                cost = builtin(engine, process, goal.args, now)
            else:
                foreign = self.foreign.lookup(*indicator)
                if foreign is not None:
                    cost = self._call_foreign(foreign, process, goal, now)
                else:
                    cost = self._reduce_user(process, goal, now)
        except Suspend as s:
            if profile is not None:
                profile.suspension()
            engine.scheduler.suspend(process, s.variables, now)
            return None
        if profile is not None:
            profile.reduction(cost)
        process.state = DONE
        engine.scheduler.live -= 1
        machine = engine.machine
        vp = machine.procs[process.proc - 1]
        if process.watched:
            vp.task_finished()
        if process.lib:
            machine.library_cost += cost
        else:
            machine.user_cost += cost
        if trace.enabled:
            trace.record(now, process.proc, "reduce", goal.functor,
                         motif=process.motif or "", dur=cost)
        return cost

    def _reduce_user(self, process: Process, goal: Struct, now: float) -> float:
        procedure = self.compiled.procedure(goal.indicator)
        if procedure is None:
            raise UnknownProcedureError(
                f"no procedure, builtin, or foreign function "
                f"{goal.functor}/{len(goal.args)} (goal: {process.describe()})"
            )
        selected = procedure.select(goal.args)  # raises Suspend when blocked
        if selected is None:
            from repro.strand.pretty import format_term

            raise ProcessFailureError(
                f"process {format_term(goal)} matches no rule of "
                f"{goal.functor}/{len(goal.args)} and can never match"
            )
        crule, env = selected
        rule_motif = crule.rule.motif
        if rule_motif is not None and rule_motif != process.motif:
            # Refine attribution to the committed rule's provenance tag (a
            # process reduces exactly once, so overwriting is safe).
            process.motif = rule_motif
            profile = self.engine.profile
            if profile is not None:
                profile.begin(rule_motif, goal.indicator)
        # Commit: spawn the body.
        cost = self.reduction_cost
        fresh: dict[int, Var] = {}
        done = now + cost
        for builder in crule.body:
            self._spawn_body(builder(env, fresh), process, done)
        return cost

    def _spawn_body(self, inst: Term, parent: Process, ready: float) -> None:
        inst_d = deref(inst)
        if type(inst_d) is Atom:
            inst_d = Struct(inst_d.name, ())
        if type(inst_d) is not Struct:
            raise StrandError(
                f"body goal {inst_d!r} of {parent.describe()} is not callable"
            )
        indicator = inst_d.indicator
        if indicator in BUILTINS:
            # Builtins inherit the spawning rule's accounting and provenance.
            lib: bool | None = parent.lib
            motif: str | None = parent.motif
        elif indicator in self.engine.library:
            lib = True
            motif = None
        else:
            lib = False
            motif = None
        self.engine.spawn(inst_d, parent.proc, ready=ready, lib=lib,
                          motif=motif)

    def _call_foreign(self, fp, process: Process, goal: Struct, now: float) -> float:
        engine = self.engine
        if fp.raw:
            cost = fp.fn(engine, process, goal.args, now)
            return self.reduction_cost if cost is None else float(cost)
        blocked: list[Var] = []
        values: list[Any] = []
        for idx in fp.inputs:
            try:
                values.append(to_python(goal.args[idx]))
            except NotGround as ng:
                blocked.append(ng.variable)
        if blocked:
            raise Suspend(blocked)
        cost = fp.cost_for(values)
        result = fp.fn(*values)
        outputs = fp.outputs
        if outputs:
            if len(outputs) == 1:
                results = (result,)
            else:
                if not isinstance(result, tuple) or len(result) != len(outputs):
                    raise StrandError(
                        f"foreign {fp.name}/{fp.arity} must return a tuple of "
                        f"{len(outputs)} values"
                    )
                results = result
            for idx, value in zip(outputs, results):
                engine.bind(goal.args[idx], from_python(value), process.proc, now)
        return cost
