"""One-way head matching and guard evaluation (committed choice).

The paper (§2.1): "Conditions expressed by non-variable terms in a rule head
define dataflow constraints: A rule cannot be used to reduce a process until
a process's arguments match its own."

For one rule and one process goal there are three outcomes:

* **match** — every head position matches; rule variables are bound in an
  environment (never the caller's variables: matching is strictly one-way);
* **fail** — some position definitely clashes; the rule can never apply;
* **suspend** — some position needs a caller variable to be bound first;
  the blocking variables are reported so the engine can wait on them.

Guard goals are evaluated under the environment with the same three-valued
logic.
"""

from __future__ import annotations

from typing import Any

from repro.strand.arith import ArithFail, Suspend, eval_arith
from repro.strand.terms import (
    Atom,
    Cons,
    Struct,
    Term,
    Tup,
    Var,
    copy_term,
    deref,
    term_eq,
)

__all__ = ["MatchResult", "match_head", "eval_guards", "instantiate", "GUARD_TESTS"]


class MatchResult:
    """Outcome of matching one rule against one goal."""

    __slots__ = ("status", "env", "blocked")

    MATCHED = "matched"
    FAILED = "failed"
    SUSPENDED = "suspended"

    def __init__(self, status: str, env: dict[int, Term] | None = None,
                 blocked: list[Var] | None = None):
        self.status = status
        self.env = env
        self.blocked = blocked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchResult({self.status})"


def match_head(head: Struct, goal: Struct) -> MatchResult:
    """Match a rule head against a process goal (same name/arity assumed)."""
    env: dict[int, Term] = {}
    blocked: list[Var] = []
    for pattern, arg in zip(head.args, goal.args):
        if not _match(pattern, arg, env, blocked):
            return MatchResult(MatchResult.FAILED)
    if blocked:
        return MatchResult(MatchResult.SUSPENDED, blocked=blocked)
    return MatchResult(MatchResult.MATCHED, env=env)


def _match(pattern: Term, arg: Term, env: dict[int, Term], blocked: list[Var]) -> bool:
    """Returns False on definite mismatch; accumulates blocking vars.

    Iterative (explicit pair stack) so goals carrying deep lists cannot blow
    the interpreter stack; children are pushed reversed to keep the original
    left-to-right order of env bindings and blocked-variable accumulation.
    """
    stack = [(pattern, arg)]
    while stack:
        pattern, arg = stack.pop()
        pattern = deref(pattern)
        pt = type(pattern)
        if pt is Var:
            bound = env.get(id(pattern))
            if bound is None:
                env[id(pattern)] = arg
                continue
            # Non-linear head (same variable twice): both occurrences must
            # match the same value.  Unbound caller variables block the
            # decision unless they are identical.
            if not _match_values(bound, arg, blocked):
                return False
            continue
        arg = deref(arg)
        at = type(arg)
        if at is Var:
            blocked.append(arg)
            continue  # cannot decide yet; not a definite mismatch
        if pt is Atom:
            if pattern is not arg:
                return False
        elif pt is int or pt is float:
            if not ((at is int or at is float) and pattern == arg):
                return False
        elif pt is str:
            if not (at is str and pattern == arg):
                return False
        elif pt is Cons:
            if at is not Cons:
                return False
            stack.append((pattern.tail, arg.tail))
            stack.append((pattern.head, arg.head))
        elif pt is Tup:
            if at is not Tup or len(pattern.args) != len(arg.args):
                return False
            stack.extend(zip(reversed(pattern.args), reversed(arg.args)))
        elif pt is Struct:
            if at is not Struct or pattern.functor != arg.functor or len(
                pattern.args
            ) != len(arg.args):
                return False
            stack.extend(zip(reversed(pattern.args), reversed(arg.args)))
        else:
            raise TypeError(f"bad pattern term {pattern!r}")
    return True


def _match_values(a: Term, b: Term, blocked: list[Var]) -> bool:
    """Compare two caller-side terms for the non-linear-head case; unbound
    variables block unless identical.  Iterative for deep-list safety."""
    stack = [(a, b)]
    while stack:
        a, b = stack.pop()
        a, b = deref(a), deref(b)
        if a is b:
            continue
        ta, tb = type(a), type(b)
        if ta is Var:
            blocked.append(a)
            continue
        if tb is Var:
            blocked.append(b)
            continue
        if ta is Cons and tb is Cons:
            stack.append((a.tail, b.tail))
            stack.append((a.head, b.head))
        elif ta is Struct and tb is Struct:
            if a.functor != b.functor or len(a.args) != len(b.args):
                return False
            stack.extend(zip(reversed(a.args), reversed(b.args)))
        elif ta is Tup and tb is Tup:
            if len(a.args) != len(b.args):
                return False
            stack.extend(zip(reversed(a.args), reversed(b.args)))
        elif isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if a != b:
                return False
        elif not (a == b if ta is tb else False):
            return False
    return True


def instantiate(term: Term, env: dict[int, Term], fresh: dict[int, Var]) -> Term:
    """Build a body/guard goal instance: rule variables become their matched
    values, unmatched rule variables become fresh shared variables.

    Copying is delegated to the iterative :func:`repro.strand.terms.copy_term`
    so reductions over 100k-element lists cannot raise ``RecursionError``.
    """

    def image(var: Var) -> Term:
        bound = env.get(id(var))
        if bound is not None:
            return bound
        new = fresh.get(id(var))
        if new is None:
            new = Var(var.name)
            fresh[id(var)] = new
            env[id(var)] = new
        return new

    return copy_term(term, image)


# --------------------------------------------------------------------------
# Guards
# --------------------------------------------------------------------------

def _test_integer(t: Term) -> bool:
    return type(t) is int


def _test_number(t: Term) -> bool:
    return type(t) is int or type(t) is float


def _test_float(t: Term) -> bool:
    return type(t) is float


def _test_atom(t: Term) -> bool:
    return type(t) is Atom


def _test_string(t: Term) -> bool:
    return type(t) is str


def _test_list(t: Term) -> bool:
    from repro.strand.terms import NIL

    return type(t) is Cons or t is NIL


def _test_tuple(t: Term) -> bool:
    return type(t) is Tup


#: Type-test guards: ``name -> predicate over the dereffed, bound argument``.
GUARD_TESTS: dict[str, Any] = {
    "integer": _test_integer,
    "number": _test_number,
    "float": _test_float,
    "atom": _test_atom,
    "string": _test_string,
    "list": _test_list,
    "tuple": _test_tuple,
}

_COMPARISONS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=\\=": lambda a, b: a != b,
    "=:=": lambda a, b: a == b,
}


def eval_guards(guards: list[Term], env: dict[int, Term]) -> MatchResult:
    """Evaluate a rule's guard conjunction under a head-match environment.

    Guard goals never bind caller variables; they only observe.  A fresh-var
    table is threaded so guards mentioning head-only variables still share
    them (rare but legal).
    """
    blocked: list[Var] = []
    fresh: dict[int, Var] = {}
    for guard in guards:
        goal = instantiate(guard, env, fresh)
        outcome = _eval_guard(goal, blocked)
        if outcome is False:
            return MatchResult(MatchResult.FAILED)
    if blocked:
        return MatchResult(MatchResult.SUSPENDED, blocked=blocked)
    return MatchResult(MatchResult.MATCHED, env=env)


def _eval_guard(goal: Term, blocked: list[Var]) -> bool:
    goal = deref(goal)
    if type(goal) is Atom:
        if goal.name == "true":
            return True
        if goal.name == "otherwise":
            # `otherwise` succeeds; rule ordering gives it its meaning.
            return True
        return False
    if type(goal) is not Struct:
        return False
    name, arity = goal.functor, len(goal.args)
    if arity == 2 and name in _COMPARISONS:
        try:
            a = eval_arith(goal.args[0])
            b = eval_arith(goal.args[1])
        except Suspend as s:
            blocked.extend(s.variables)
            return True  # undecided
        except ArithFail:
            return False
        return _COMPARISONS[name](a, b)
    if arity == 2 and name in ("==", "\\=="):
        a, b = deref(goal.args[0]), deref(goal.args[1])
        decided, equal = _ground_equal(a, b, blocked)
        if not decided:
            return True  # undecided; blocked vars recorded
        return equal if name == "==" else not equal
    if arity == 1 and name in GUARD_TESTS:
        arg = deref(goal.args[0])
        if type(arg) is Var:
            blocked.append(arg)
            return True
        return GUARD_TESTS[name](arg)
    if arity == 1 and name == "known":
        arg = deref(goal.args[0])
        if type(arg) is Var:
            blocked.append(arg)
            return True
        return True
    return False


def _ground_equal(a: Term, b: Term, blocked: list[Var]) -> tuple[bool, bool]:
    """(decided?, equal?) for structural equality; suspends on unbound
    variables unless identity already decides.

    Nested unbound vars inside structures make the comparison undecided only
    if the decided parts are equal so far; term_eq treats distinct unbound
    vars as unequal, so do a cautious walk instead — iterative (left-to-right
    DFS over a pair stack) so deep lists cannot blow the interpreter stack.
    The first pair that is not definitely-equal settles the verdict, matching
    the short-circuit order of the old recursion.
    """
    stack = [(a, b)]
    while stack:
        a, b = stack.pop()
        a, b = deref(a), deref(b)
        if a is b:
            continue
        if type(a) is Var:
            blocked.append(a)
            return False, False
        if type(b) is Var:
            blocked.append(b)
            return False, False
        ta, tb = type(a), type(b)
        if ta is Struct and tb is Struct:
            if a.functor != b.functor or len(a.args) != len(b.args):
                return True, False
            stack.extend(zip(reversed(a.args), reversed(b.args)))
        elif ta is Cons and tb is Cons:
            stack.append((a.tail, b.tail))
            stack.append((a.head, b.head))
        elif ta is Tup and tb is Tup:
            if len(a.args) != len(b.args):
                return True, False
            stack.extend(zip(reversed(a.args), reversed(b.args)))
        elif isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if a != b:
                return True, False
        elif ta is not tb:
            return True, False
        elif a != b:
            return True, False
    return True, True


# Re-export for engine convenience.
__all__.append("term_eq")
