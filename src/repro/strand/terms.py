"""Term representation for the Strand dialect.

The paper's programs manipulate five kinds of data:

* **variables** — single-assignment logic variables ("the value of a variable
  is initially undefined and, once provided, cannot be modified");
* **constants** — atoms (lowercase identifiers), numbers, and strings;
* **lists** — cons cells written ``[Head | Tail]``;
* **tuples** — ``{T1, ..., Tn}``, with meta primitives ``make_tuple``,
  ``put_arg`` and ``length`` (used by the server library in Figure 3);
* **structures** — ``f(T1, ..., Tn)``; process goals are structures.

Python ``int``/``float`` are used directly for numbers and Python ``str``
for Strand strings; atoms are a distinct interned class so ``"foo"`` (a
string) and ``foo`` (an atom) never compare equal.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import DoubleAssignmentError

__all__ = [
    "Var",
    "Atom",
    "Struct",
    "Tup",
    "Cons",
    "NIL",
    "Term",
    "deref",
    "is_constant",
    "is_list_term",
    "make_list",
    "list_to_python",
    "iter_list",
    "term_eq",
    "copy_term",
    "rename_term",
    "term_vars",
    "term_size",
    "walk_terms",
]

# A "term" is one of: Var, Atom, Struct, Tup, Cons, int, float, str.
Term = Any

_UNBOUND = object()


class Var:
    """A single-assignment (dataflow) variable.

    ``ref`` holds the bound value, or the ``_UNBOUND`` sentinel.  ``waiters``
    collects suspended processes to be woken when the variable is bound; the
    engine owns the waiter protocol, the term layer only stores the list.
    """

    __slots__ = ("ref", "name", "waiters", "home")

    _counter = 0

    @classmethod
    def reset_names(cls) -> None:
        """Restart the anonymous-name counter (``_G1``, ``_G2``, …).

        Names exist only for display — identity is the object — so the
        engine resets the counter at the start of every run, making trace
        and deadlock output byte-identical across same-seed runs in one
        process."""
        cls._counter = 0

    def __init__(self, name: str | None = None):
        self.ref: Any = _UNBOUND
        if name is None:
            Var._counter += 1
            name = f"_G{Var._counter}"
        self.name = name
        self.waiters: list | None = None
        # Processor on which the variable was created (for latency modelling);
        # None outside a machine context.
        self.home: int | None = None

    @property
    def is_bound(self) -> bool:
        return self.ref is not _UNBOUND

    def bind(self, value: Term) -> None:
        """Bind the variable.  Raises :class:`DoubleAssignmentError` if bound.

        The engine performs wakeups; this low-level method only sets the
        reference.  Binding a variable to itself is rejected.
        """
        if self.ref is not _UNBOUND:
            raise DoubleAssignmentError(
                f"variable {self.name} is already bound to {self.ref!r}"
            )
        if value is self:
            raise DoubleAssignmentError(f"cannot bind variable {self.name} to itself")
        self.ref = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_bound:
            return f"Var({self.name}={self.ref!r})"
        return f"Var({self.name})"

    # Pickling (used by the parallel backend to ship terms between worker
    # processes).  The ``_UNBOUND`` sentinel is a module-level ``object()``
    # whose identity does not survive pickling, so the bound value is boxed:
    # ``None`` means unbound, ``(value,)`` means bound (possibly to None).
    # Waiters are process-local scheduler state and never cross the wire.
    def __getstate__(self):
        boxed = None if self.ref is _UNBOUND else (self.ref,)
        return (self.name, boxed, self.home)

    def __setstate__(self, state) -> None:
        name, boxed, home = state
        self.name = name
        self.ref = _UNBOUND if boxed is None else boxed[0]
        self.waiters = None
        self.home = home


class Atom:
    """An interned symbolic constant (``foo``, ``halt``, ``[]``...)."""

    __slots__ = ("name",)
    _interned: dict[str, "Atom"] = {}

    def __new__(cls, name: str) -> "Atom":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        atom = super().__new__(cls)
        object.__setattr__(atom, "name", name)
        cls._interned[name] = atom
        return atom

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Atom is immutable")

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.name)

    # Identity equality is correct because atoms are interned; defining
    # __eq__ explicitly documents that and keeps hash/eq consistent.
    def __eq__(self, other: object) -> bool:
        return self is other

    # Unpickling must route through __new__ so atoms stay interned (identity
    # equality would silently break across process boundaries otherwise).
    def __reduce__(self):
        return (Atom, (self.name,))


NIL = Atom("[]")


class Struct:
    """A compound term ``functor(arg1, ..., argn)``.  Process goals are
    structures; so is structured data like ``tree(V, L, R)``."""

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: Iterable[Term] = ()):
        self.functor = functor
        self.args = tuple(args)

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> tuple[str, int]:
        """The ``name/arity`` pair identifying the procedure for a goal."""
        return (self.functor, len(self.args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"


class Tup:
    """A Strand tuple ``{T1, ..., Tn}``.

    Storage is a mutable list because the paper's server library (Figure 3)
    builds tuples imperatively with ``make_tuple``/``put_arg`` before
    publishing them.  ``put_arg`` on a slot that already holds a non-variable
    is rejected by the builtin layer, which keeps the single-assignment
    discipline at the program level.
    """

    __slots__ = ("args",)

    def __init__(self, args: Iterable[Term] = ()):
        self.args = list(args)

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ",".join(repr(a) for a in self.args)
        return "{" + inner + "}"


class Cons:
    """A list cell ``[Head | Tail]``."""

    __slots__ = ("head", "tail")

    def __init__(self, head: Term, tail: Term):
        self.head = head
        self.tail = tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.head!r}|{self.tail!r}]"


def deref(term: Term) -> Term:
    """Follow bound-variable references until reaching a non-variable or an
    unbound variable.  Every consumer of terms calls this first."""
    while type(term) is Var and term.ref is not _UNBOUND:
        term = term.ref
    return term


def is_constant(term: Term) -> bool:
    """True for atoms, numbers, and strings (after deref by the caller)."""
    return isinstance(term, (Atom, int, float, str))


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Strand list term from a Python iterable."""
    result = tail
    for item in reversed(list(items)):
        result = Cons(item, result)
    return result


def iter_list(term: Term) -> Iterator[Term]:
    """Iterate over a fully-formed Strand list.

    Raises ``ValueError`` if the list is improper or has an unbound tail;
    use the engine's stream helpers for incremental lists.
    """
    term = deref(term)
    while type(term) is Cons:
        yield term.head
        term = deref(term.tail)
    if term is not NIL:
        raise ValueError(f"improper or incomplete list (tail {term!r})")


def list_to_python(term: Term, convert: Callable[[Term], Any] = lambda t: t) -> list:
    """Convert a fully-formed Strand list into a Python list."""
    return [convert(deref(item)) for item in iter_list(term)]


def is_list_term(term: Term) -> bool:
    """True if the (already dereffed) term is a cons cell or nil."""
    return type(term) is Cons or term is NIL


def term_eq(a: Term, b: Term) -> bool:
    """Structural equality of two terms; unbound variables are equal only to
    themselves (identity)."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        x, y = deref(x), deref(y)
        if x is y:
            continue
        tx, ty = type(x), type(y)
        if tx is Var or ty is Var:
            return False  # distinct unbound variables
        if tx is not ty:
            # int/float cross-compare numerically, like Python ==
            if isinstance(x, (int, float)) and isinstance(y, (int, float)):
                if x != y:
                    return False
                continue
            return False
        if tx is Struct:
            if x.functor != y.functor or len(x.args) != len(y.args):
                return False
            stack.extend(zip(x.args, y.args))
        elif tx is Tup:
            if len(x.args) != len(y.args):
                return False
            stack.extend(zip(x.args, y.args))
        elif tx is Cons:
            stack.append((x.head, y.head))
            stack.append((x.tail, y.tail))
        else:
            if x != y:
                return False
    return True


def term_vars(term: Term) -> list[Var]:
    """All distinct unbound variables in a term, in first-occurrence order."""
    seen: set[int] = set()
    out: list[Var] = []
    stack = [term]
    while stack:
        t = deref(stack.pop())
        if type(t) is Var:
            if id(t) not in seen:
                seen.add(id(t))
                out.append(t)
        elif type(t) is Struct:
            stack.extend(reversed(t.args))
        elif type(t) is Tup:
            stack.extend(reversed(t.args))
        elif type(t) is Cons:
            stack.append(t.tail)
            stack.append(t.head)
    return out


def term_size(term: Term) -> int:
    """Number of nodes in the term (a simple memory-footprint proxy)."""
    size = 0
    stack = [term]
    while stack:
        t = deref(stack.pop())
        size += 1
        if type(t) is Struct or type(t) is Tup:
            stack.extend(t.args)
        elif type(t) is Cons:
            stack.append(t.tail)
            stack.append(t.head)
    return size


# Rebuild markers for the iterative copier.  Real work-stack entries are
# terms (never Python tuples), so a tuple on the stack is always a marker.
_MARK_STRUCT = 0
_MARK_TUP = 1
_MARK_CONS = 2


def copy_term(term: Term, var_image: Callable[[Var], Term]) -> Term:
    """Structural copy with ``var_image`` supplying the image of every
    unbound variable reached (bound variables are dereferenced through).

    Iterative like :func:`term_size`/:func:`walk_terms` — a recursive copy
    blows the interpreter stack around 20k cons cells, and list spines of
    that depth are ordinary data here (repro: ``rename_term(make_list(
    range(20000)))``).  Shared by :func:`rename_term` and the reducer's
    ``instantiate`` so both copying paths stay stack-safe.

    The work stack holds terms to visit plus marker tuples; a marker pops
    its node's finished children off the output stack and pushes the
    rebuilt node, preserving left-to-right visit order.
    """
    work: list = [term]
    out: list = []
    while work:
        item = work.pop()
        if type(item) is tuple:
            kind, payload = item
            if kind == _MARK_CONS:
                tail = out.pop()
                head = out.pop()
                out.append(Cons(head, tail))
            elif kind == _MARK_STRUCT:
                functor, n = payload
                base = len(out) - n
                node = Struct(functor, out[base:])
                del out[base:]
                out.append(node)
            else:  # _MARK_TUP
                base = len(out) - payload
                node = Tup(out[base:])
                del out[base:]
                out.append(node)
            continue
        t = deref(item)
        tt = type(t)
        if tt is Var:
            out.append(var_image(t))
        elif tt is Cons:
            work.append((_MARK_CONS, None))
            work.append(t.tail)
            work.append(t.head)
        elif tt is Struct:
            work.append((_MARK_STRUCT, (t.functor, len(t.args))))
            work.extend(reversed(t.args))
        elif tt is Tup:
            work.append((_MARK_TUP, len(t.args)))
            work.extend(reversed(t.args))
        else:
            out.append(t)
    return out[0]


def rename_term(term: Term, mapping: dict[int, Var] | None = None) -> Term:
    """Copy a term, giving fresh variables for the unbound variables.

    ``mapping`` maps ``id(old_var) -> new_var`` and is shared across calls to
    rename several terms (e.g. head and body of one rule) consistently.
    """
    if mapping is None:
        mapping = {}

    def image(var: Var) -> Var:
        fresh = mapping.get(id(var))
        if fresh is None:
            fresh = Var(var.name)
            mapping[id(var)] = fresh
        return fresh

    return copy_term(term, image)


def walk_terms(term: Term) -> Iterator[Term]:
    """Yield every sub-term (dereffed), pre-order, including ``term`` itself."""
    stack = [term]
    while stack:
        t = deref(stack.pop())
        yield t
        if type(t) is Struct or type(t) is Tup:
            stack.extend(reversed(t.args))
        elif type(t) is Cons:
            stack.append(t.tail)
            stack.append(t.head)
