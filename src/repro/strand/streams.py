"""Ports and stream helpers.

A *stream* is an incrementally-instantiated list: a producer holds the
unbound tail variable and extends it one cons cell at a time (Figure 1's
producer/consumer).  A *port* is the many-writers generalization Strand
systems used under the hood of primitives like ``distribute``: an opaque
handle holding the stream's current tail, so any number of senders can
append without threading tail variables through their code.

``PortRef`` values appear inside terms (e.g. the server motif's ``DT``
tuple of output ports) but are opaque to matching: programs pass them
around and hand them to ``distribute``/``send_port``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.strand.terms import Cons, Term, Var, deref

__all__ = ["PortRef", "collect_stream", "stream_items"]


class PortRef:
    """A many-writer append handle onto a stream.

    ``tail`` is the stream's current unbound tail variable; ``owner`` is the
    processor that opened the port (messages to it from elsewhere are
    inter-processor traffic); ``closed`` flips when the stream is
    terminated with ``[]``.
    """

    __slots__ = ("tail", "owner", "closed", "label")

    def __init__(self, tail: Var, owner: int, label: str = ""):
        self.tail = tail
        self.owner = owner
        self.closed = False
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        label = self.label or f"{id(self):x}"
        return f"<port {label} on p{self.owner} ({state})>"


def stream_items(stream: Term) -> tuple[list[Term], Term]:
    """Split a (possibly partial) stream into ``(items_so_far, tail)``.

    The tail is ``NIL`` for a finished stream or the unbound tail variable
    of a still-open one.
    """
    items: list[Term] = []
    t = deref(stream)
    while type(t) is Cons:
        items.append(deref(t.head))
        t = deref(t.tail)
    return items, t


def collect_stream(stream: Term, convert: Callable[[Term], Any] = lambda t: t) -> list:
    """All items currently on a stream (open or closed), converted."""
    items, _tail = stream_items(stream)
    return [convert(i) for i in items]
