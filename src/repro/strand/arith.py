"""Dataflow arithmetic evaluation.

Arithmetic in this dialect is demand-driven: an expression evaluates to a
number once every variable in it is bound, and *suspends* (reporting the
blocking variables) until then.  This is what gives ``N1 := N - 1`` in
Figure 1 its synchronizing behaviour.
"""

from __future__ import annotations

from typing import Callable

from repro.strand.terms import Atom, Struct, Term, Var, deref

__all__ = ["Suspend", "ArithFail", "eval_arith", "is_arith_expr", "ARITH_FUNCTORS"]


class Suspend(Exception):
    """Evaluation blocked on unbound variables; carries the variables."""

    def __init__(self, variables: list[Var]):
        self.variables = variables
        super().__init__(f"suspended on {[v.name for v in variables]}")


class ArithFail(Exception):
    """The term is not an arithmetic expression (e.g. an atom operand)."""


def _div(a, b):
    if b == 0:
        raise ArithFail("division by zero")
    return a / b


def _intdiv(a, b):
    if b == 0:
        raise ArithFail("division by zero")
    return a // b


def _mod(a, b):
    if b == 0:
        raise ArithFail("modulo by zero")
    return a % b


_BINARY: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "//": _intdiv,
    "mod": _mod,
    "min": min,
    "max": max,
}

_UNARY: dict[str, Callable] = {
    "-": lambda a: -a,
    "abs": abs,
    "float": float,
    "truncate": int,
}

#: Functors recognized as arithmetic when they appear as the right-hand side
#: of ``:=`` (other structures are built, not evaluated).
ARITH_FUNCTORS = frozenset(
    {(f, 2) for f in _BINARY} | {(f, 1) for f in _UNARY}
)


def is_arith_expr(term: Term) -> bool:
    """True if a (dereffed) term is an arithmetic expression *shape* —
    a Struct whose functor/arity is an arithmetic operator."""
    return type(term) is Struct and (term.functor, len(term.args)) in ARITH_FUNCTORS


def eval_arith(term: Term) -> int | float:
    """Evaluate an arithmetic expression to a Python number.

    Raises :class:`Suspend` if the expression contains unbound variables
    (collecting *all* blocking variables, so the caller can wait on any of
    them), or :class:`ArithFail` if a bound sub-term is not numeric.
    """
    blocked: list[Var] = []
    value = _eval(term, blocked)
    if blocked:
        raise Suspend(blocked)
    assert value is not None
    return value


def _eval(term: Term, blocked: list[Var]) -> int | float | None:
    term = deref(term)
    t = type(term)
    if t is int or t is float:
        return term
    if t is Var:
        blocked.append(term)
        return None
    if t is Struct:
        key = (term.functor, len(term.args))
        if len(term.args) == 2 and key in ARITH_FUNCTORS:
            a = _eval(term.args[0], blocked)
            b = _eval(term.args[1], blocked)
            if a is None or b is None:
                return None
            return _BINARY[term.functor](a, b)
        if len(term.args) == 1 and key in ARITH_FUNCTORS:
            a = _eval(term.args[0], blocked)
            if a is None:
                return None
            return _UNARY[term.functor](a)
        raise ArithFail(f"not an arithmetic operator: {term.functor}/{len(term.args)}")
    if t is Atom:
        raise ArithFail(f"atom {term.name!r} in arithmetic expression")
    raise ArithFail(f"non-numeric term {term!r} in arithmetic expression")
