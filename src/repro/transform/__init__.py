"""Source-to-source transformation engine: rewriting combinators, call-graph
analysis, argument threading, and the Transformation base classes."""

from repro.transform.argthread import OpRewriter, ThreadArgument
from repro.transform.callgraph import CallGraph
from repro.transform.optimize import PruneUnreachable, prune_unreachable
from repro.transform.rewrite import (
    body_calls,
    collect_goals,
    goal_indicator,
    goal_struct,
    map_body_goals,
    map_rules,
    strip_placement,
    with_placement,
)
from repro.transform.transformation import (
    Chain,
    FunctionTransformation,
    Identity,
    Transformation,
)

__all__ = [
    "Transformation",
    "Identity",
    "Chain",
    "FunctionTransformation",
    "ThreadArgument",
    "OpRewriter",
    "CallGraph",
    "prune_unreachable",
    "PruneUnreachable",
    "goal_struct",
    "goal_indicator",
    "strip_placement",
    "with_placement",
    "map_body_goals",
    "map_rules",
    "body_calls",
    "collect_goals",
]
