"""Call-graph analysis for argument-threading transformations.

The Server transformation's step 1 (paper §3.2) adds an argument to "both
process definitions that include a call to the send, nodes, or halt
primitives, and the process definitions of these processes' ancestors in
the call graph" — i.e. the set of procedures from which such a call is
reachable.  This module computes that set.
"""

from __future__ import annotations

from collections import defaultdict

from repro.strand.compile import symbol_table
from repro.strand.program import Program

__all__ = ["CallGraph"]


class CallGraph:
    """Static call graph of a program: ``caller -> {callees}`` over
    ``name/arity`` indicators (placement annotations looked through).

    Built from the program's shared :class:`~repro.strand.compile.SymbolTable`
    (cached per program version) rather than re-walking rule bodies, so the
    linter, the argument-threading transformations, and the engine all agree
    on one interned name/arity view.
    """

    def __init__(self, program: Program):
        table = symbol_table(program)
        self.defined: set[tuple[str, int]] = table.defined
        self.edges: dict[tuple[str, int], set[tuple[str, int]]] = defaultdict(set)
        for indicator in table.calls:
            callees = table.callees(indicator)
            if callees:
                self.edges[indicator].update(callees)

    def callees(self, indicator: tuple[str, int]) -> set[tuple[str, int]]:
        return set(self.edges.get(indicator, ()))

    def callers_of(self, targets: set[tuple[str, int]]) -> set[tuple[str, int]]:
        """All *defined* procedures from which any target is reachable
        (the targets' transitive ancestors; targets themselves are not
        included unless they also call a target)."""
        reverse: dict[tuple[str, int], set[tuple[str, int]]] = defaultdict(set)
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse[callee].add(caller)
        affected: set[tuple[str, int]] = set()
        frontier = list(targets)
        while frontier:
            target = frontier.pop()
            for caller in reverse.get(target, ()):
                if caller not in affected:
                    affected.add(caller)
                    frontier.append(caller)
        return affected & self.defined

    def reachable_from(self, roots: set[tuple[str, int]]) -> set[tuple[str, int]]:
        """All indicators reachable from the roots (roots included)."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for callee in self.edges.get(node, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen
