"""Transformation base classes.

A transformation is a pure function ``Program -> Program``.  Composition is
first-class because motif composition (paper §2.2) is transformation
composition interleaved with library linking:

    M₂ ∘ M₁ (A) = T₂( T₁(A) ∪ L₁ ) ∪ L₂
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.strand.program import Program

__all__ = ["Transformation", "Identity", "Chain", "FunctionTransformation"]


class Transformation(ABC):
    """A source-to-source program transformation."""

    name: str = "transformation"

    @abstractmethod
    def apply(self, program: Program) -> Program:
        """Return the transformed program (the input is never mutated)."""

    def __call__(self, program: Program) -> Program:
        return self.apply(program)

    def then(self, other: "Transformation") -> "Transformation":
        """``other ∘ self`` — self first, then other."""
        return Chain([self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Identity(Transformation):
    """The identity transformation (used by library-only motifs such as
    ``Tree1``, §3.4)."""

    name = "identity"

    def apply(self, program: Program) -> Program:
        return program.copy()


class Chain(Transformation):
    """Sequential composition: transformations applied left to right."""

    def __init__(self, steps: Sequence[Transformation]):
        self.steps = list(steps)
        self.name = "∘".join(reversed([s.name for s in self.steps])) or "identity"

    def apply(self, program: Program) -> Program:
        for step in self.steps:
            program = step.apply(program)
        return program


class FunctionTransformation(Transformation):
    """Wrap a plain function as a transformation."""

    def __init__(self, fn: Callable[[Program], Program], name: str = "fn"):
        self.fn = fn
        self.name = name

    def apply(self, program: Program) -> Program:
        return self.fn(program.copy())
