"""Rewriting combinators over programs, rules, and goals.

These are the building blocks motif transformations are written with.  All
combinators are *pure*: they operate on a copy of the input program, so a
transformation can never corrupt the application it was applied to (motifs
must be re-applicable to the same application with different parameters —
the paper's "experiment with alternative motifs in a single application").
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Struct, Term, deref

__all__ = [
    "goal_struct",
    "goal_indicator",
    "strip_placement",
    "with_placement",
    "map_body_goals",
    "map_rules",
    "body_calls",
    "collect_goals",
]


def goal_struct(goal: Term) -> Struct:
    """Normalize a body goal to a Struct (zero-arity atoms become
    ``name()``)."""
    goal = deref(goal)
    if type(goal) is Atom:
        return Struct(goal.name, ())
    if type(goal) is Struct:
        return goal
    raise TypeError(f"not a goal: {goal!r}")


def strip_placement(goal: Term) -> tuple[Struct, Term | None]:
    """Split ``Goal @ Where`` into ``(Goal, Where)``; plain goals give
    ``(Goal, None)``.  Nested annotations collapse left-to-right."""
    goal = goal_struct(goal)
    where: Term | None = None
    while goal.functor == "@" and len(goal.args) == 2:
        where = goal.args[1]
        goal = goal_struct(goal.args[0])
    return goal, where


def with_placement(goal: Struct, where: Term | None) -> Term:
    """Re-attach a placement annotation (no-op when ``where`` is None)."""
    if where is None:
        return goal
    return Struct("@", (goal, where))


def goal_indicator(goal: Term) -> tuple[str, int]:
    """The called procedure's ``name/arity``, looking through ``@``."""
    inner, _ = strip_placement(goal)
    return inner.indicator


def map_body_goals(
    program: Program,
    fn: Callable[[Term, Rule], Term | list[Term]],
    name: str | None = None,
) -> Program:
    """Rewrite every body goal.  ``fn`` returns a replacement goal or a list
    of goals (empty list deletes the goal).  Guards are left alone — motif
    transformations in the paper only restructure bodies."""
    out = Program(name=name or program.name)
    for rule in program.rules():
        renamed = rule.rename()
        new_body: list[Term] = []
        for goal in renamed.body:
            result = fn(goal, renamed)
            if isinstance(result, list):
                new_body.extend(result)
            else:
                new_body.append(result)
        out.add_rule(Rule(renamed.head, renamed.guards, new_body))
    return out


def map_rules(
    program: Program,
    fn: Callable[[Rule], Rule | list[Rule]],
    name: str | None = None,
) -> Program:
    """Rewrite whole rules; ``fn`` gets a fresh-variable copy."""
    out = Program(name=name or program.name)
    for rule in program.rules():
        result = fn(rule.rename())
        if isinstance(result, list):
            for new_rule in result:
                out.add_rule(new_rule)
        else:
            out.add_rule(result)
    return out


def body_calls(rule: Rule) -> Iterable[tuple[str, int]]:
    """Indicators of every body goal (looking through placements)."""
    for goal in rule.body:
        yield goal_indicator(goal)


def collect_goals(
    program: Program, predicate: Callable[[Struct], bool]
) -> list[tuple[Rule, Struct]]:
    """All ``(rule, goal)`` pairs whose (placement-stripped) goal satisfies
    the predicate."""
    hits: list[tuple[Rule, Struct]] = []
    for rule in program.rules():
        for goal in rule.body:
            inner, _ = strip_placement(goal)
            if predicate(inner):
                hits.append((rule, inner))
    return hits
