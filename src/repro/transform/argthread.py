"""The argument-threading transformation (Server motif step 1–4 engine).

``ThreadArgument`` generalizes the paper's Server transformation: given a
set of *operation* indicators (``send/2``, ``nodes/1``, ``halt/0``) and a
rewrite for each, it

1. finds every procedure from which an operation call is reachable
   (the call graph ancestors — paper step 1),
2. appends one fresh variable (conventionally ``DT``) to those procedures'
   heads,
3. appends that variable to every call to an affected procedure, and
4. replaces each operation call by its rewrite, which may mention the
   threaded variable (paper steps 2–4).

Only *top-level body goals* are calls; operation names appearing inside
data terms (e.g. a ``reduce(T, V)`` message under ``send``) are data and
are left untouched — this distinction is what makes the transformation
compose correctly.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import TransformError
from repro.strand.program import Program, Rule
from repro.strand.terms import Struct, Term, Var
from repro.transform.callgraph import CallGraph
from repro.transform.rewrite import strip_placement, with_placement
from repro.transform.transformation import Transformation

__all__ = ["ThreadArgument", "OpRewriter"]

#: Rewrites one operation call: ``(op_goal, threaded_var) -> goals``.
OpRewriter = Callable[[Struct, Var], list[Term]]


class ThreadArgument(Transformation):
    """Thread a fresh argument through every procedure that (transitively)
    calls one of ``ops``, rewriting the op calls themselves.

    Parameters
    ----------
    ops:
        ``indicator -> rewriter``.  The rewriter receives the (placement-
        stripped) op goal and the rule's threaded variable, and returns the
        replacement goal list.
    var_hint:
        Display name for the threaded variable.
    also_thread:
        Extra procedure indicators to thread even if the analysis does not
        find an op call in them (used when a composed motif knows a
        procedure will receive op calls later).
    """

    def __init__(
        self,
        ops: Mapping[tuple[str, int], OpRewriter],
        var_hint: str = "DT",
        also_thread: tuple[tuple[str, int], ...] = (),
        name: str = "thread-argument",
    ):
        self.ops = dict(ops)
        self.var_hint = var_hint
        self.also_thread = tuple(also_thread)
        self.name = name

    def affected(self, program: Program) -> set[tuple[str, int]]:
        """The procedures that will gain the threaded argument."""
        graph = CallGraph(program)
        for op in self.ops:
            if op in graph.defined:
                raise TransformError(
                    f"operation {op[0]}/{op[1]} is also defined as a "
                    f"procedure in {program.name!r}; refusing to thread"
                )
        affected = graph.callers_of(set(self.ops))
        for extra in self.also_thread:
            if extra in graph.defined:
                affected.add(extra)
        # Anything that calls an explicitly-threaded procedure must be
        # threaded too, transitively.
        affected |= graph.callers_of(set(affected)) if affected else set()
        return affected & graph.defined

    def apply(self, program: Program) -> Program:
        affected = self.affected(program)
        if not affected:
            return program.copy()
        # Arity-shift collision check: threading p/k to p/k+1 while a
        # *different*, unthreaded procedure p/k+1 exists would silently
        # merge the two.  (If p/k+1 is itself threaded, both shift and no
        # merge occurs.)
        defined = set(program.indicators)
        for name, arity in affected:
            shifted = (name, arity + 1)
            if shifted in defined and shifted not in affected:
                raise TransformError(
                    f"threading {name}/{arity} would collide with the "
                    f"existing procedure {name}/{arity + 1}; rename one"
                )
        out = Program(name=program.name)
        for rule in program.rules():
            out.add_rule(self._rewrite_rule(rule.rename(), affected))
        return out

    def _rewrite_rule(self, rule: Rule, affected: set[tuple[str, int]]) -> Rule:
        if rule.indicator not in affected:
            # An unaffected rule cannot call an affected procedure (it would
            # then be affected itself), so it passes through unchanged.
            return rule
        dt = Var(self.var_hint)
        head = Struct(rule.head.functor, (*rule.head.args, dt))
        body: list[Term] = []
        for goal in rule.body:
            inner, where = strip_placement(goal)
            indicator = inner.indicator
            rewriter = self.ops.get(indicator)
            if rewriter is not None:
                if where is not None:
                    raise TransformError(
                        f"placement annotation on operation "
                        f"{indicator[0]}/{indicator[1]} is not supported"
                    )
                body.extend(rewriter(inner, dt))
                continue
            if indicator in affected:
                inner = Struct(inner.functor, (*inner.args, dt))
                body.append(with_placement(inner, where))
                continue
            body.append(goal)
        return Rule(head, rule.guards, body)
