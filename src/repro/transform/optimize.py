"""Post-composition program optimization.

Motif composition unions whole libraries, so the final program usually
carries procedures the particular application never reaches (the unused
halves of dual-interface libraries, dispatch rules for message types never
sent, …).  ``prune_unreachable`` drops procedures not reachable from the
declared entry points — useful before printing a composed program for
study, and a worked example of a *post-processing* transformation (the
paper's framework makes no distinction: it is just another ``T``).
"""

from __future__ import annotations

from typing import Iterable

from repro.strand.program import Program
from repro.transform.callgraph import CallGraph
from repro.transform.transformation import Transformation

__all__ = ["prune_unreachable", "PruneUnreachable"]


def prune_unreachable(
    program: Program,
    entries: Iterable[tuple[str, int]],
    keep: Iterable[tuple[str, int]] = (),
) -> Program:
    """A copy of ``program`` containing only procedures reachable from
    ``entries`` (plus ``keep``, for procedures invoked reflectively — e.g.
    a ``server/2`` reached only through a library's spawn)."""
    roots = set(entries) | set(keep)
    graph = CallGraph(program)
    reachable = graph.reachable_from(roots)
    out = Program(name=program.name)
    for proc in program:
        if proc.indicator in reachable:
            for rule in proc.rules:
                out.add_rule(rule.rename())
    return out


class PruneUnreachable(Transformation):
    """:func:`prune_unreachable` as a composable transformation."""

    name = "prune-unreachable"

    def __init__(self, entries: Iterable[tuple[str, int]],
                 keep: Iterable[tuple[str, int]] = ()):
        self.entries = tuple(entries)
        self.keep = tuple(keep)

    def apply(self, program: Program) -> Program:
        return prune_unreachable(program, self.entries, self.keep)
