"""repro — a reproduction of Foster & Stevens, *Parallel Programming with
Algorithmic Motifs* (ICPP 1990).

Layers (see DESIGN.md):

* :mod:`repro.strand`  — a Strand-dialect concurrent logic language
  (single-assignment variables, guarded committed-choice rules);
* :mod:`repro.machine` — a deterministic virtual multicomputer;
* :mod:`repro.transform` — source-to-source transformation engine;
* :mod:`repro.core`    — the motif abstraction ``M = (T, L)`` and runners;
* :mod:`repro.motifs`  — the motif library (Server, Random, Tree-Reduce…);
* :mod:`repro.apps`    — applications (arithmetic, sequence alignment, …).
"""

from repro.core import (
    AppliedMotif,
    ComposedMotif,
    Motif,
    RunResult,
    default_registry,
    get_motif,
    reduce_tree,
    reliable_reduce_tree,
    supervised_reduce_tree,
)
from repro.machine import Machine
from repro.strand import Program, parse_program, run_query

__version__ = "0.1.0"

__all__ = [
    "Motif",
    "ComposedMotif",
    "AppliedMotif",
    "RunResult",
    "reduce_tree",
    "reliable_reduce_tree",
    "supervised_reduce_tree",
    "get_motif",
    "default_registry",
    "Machine",
    "Program",
    "parse_program",
    "run_query",
    "__version__",
]
