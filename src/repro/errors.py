"""Exception hierarchy for the motif reproduction library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The Strand runtime distinguishes *programming* errors (parse
errors, malformed rules) from *run-time* errors (double assignment, process
failure, deadlock), mirroring the error classes described for Strand in the
paper (assigning to a bound variable "is signaled as a run-time error").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StrandError(ReproError):
    """Base class for errors raised by the Strand language substrate."""


class ParseError(StrandError):
    """Raised when Strand source text cannot be tokenized or parsed.

    Carries ``line`` and ``column`` (1-based) of the offending position when
    known, so tooling can point at the source.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class DoubleAssignmentError(StrandError):
    """A single-assignment variable was assigned a second, different value."""


class ProcessFailureError(StrandError):
    """A process matched no rule and can never match one (all rules failed).

    In committed-choice languages this is a run-time error, not silent
    failure: there is no backtracking to undo the commitment.
    """


class DeadlockError(StrandError):
    """The computation stopped with suspended processes that can never run."""


class UnknownProcedureError(StrandError):
    """A body goal referred to a procedure that is neither defined nor foreign."""


class ForeignProcedureError(StrandError):
    """A foreign (Python) procedure raised or misbehaved."""


class PragmaError(StrandError):
    """A source-level pragma (e.g. ``@ random``) reached the engine.

    Pragmas have no operational meaning; a motif transformation must erase
    them before execution.  Seeing one at run time means a required motif was
    not applied.
    """


class TransformError(ReproError):
    """A source-to-source transformation could not be applied."""


class MotifError(ReproError):
    """A motif could not be applied or composed."""


class MachineError(ReproError):
    """The virtual multicomputer was misconfigured or misused."""


class TopologyError(MachineError):
    """An interconnect topology was asked for an impossible configuration."""
