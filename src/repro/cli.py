"""Command-line interface: run Strand programs on the virtual multicomputer.

::

    python -m repro run program.str "go(4, Value)" -P 4 --topology ring
    python -m repro motifs
    python -m repro demo

``run`` executes a goal conjunction against a Strand source file; variable
bindings, machine metrics, and (with ``--gantt``) an ASCII schedule are
printed.  ``motifs`` lists the registered motif library — "archives of
expertise that can be consulted" (§1).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import __version__
from repro.core.registry import default_registry
from repro.errors import ReproError, StrandError
from repro.machine import Machine
from repro.machine.gantt import render_gantt
from repro.strand import format_term, parse_program, run_query
from repro.strand.terms import Var, deref

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Algorithmic-motif reproduction: Strand programs on a "
                    "virtual multicomputer.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a goal against a Strand source file")
    run_p.add_argument("source", type=Path, help="Strand source file")
    run_p.add_argument("query", help='goal conjunction, e.g. "go(4, Value)"')
    run_p.add_argument("-P", "--processors", type=int, default=1)
    run_p.add_argument("--topology", default=None,
                       choices=[None, "full", "ring", "mesh", "torus", "hypercube", "tree"],
                       help="interconnect (default: fully connected)")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-reductions", type=int, default=5_000_000)
    run_p.add_argument("--service", action="append", default=[],
                       metavar="NAME/ARITY",
                       help="declare a perpetual service procedure "
                            "(repeatable), e.g. --service server/2")
    run_p.add_argument("--gantt", action="store_true",
                       help="print an ASCII schedule of the run")
    run_p.add_argument("--quiet", action="store_true",
                       help="print only variable bindings")

    lint_p = sub.add_parser("lint", help="static checks on a Strand source file")
    lint_p.add_argument("source", type=Path)
    lint_p.add_argument("--foreign", action="append", default=[],
                        metavar="NAME/ARITY",
                        help="declare a foreign procedure (repeatable)")
    lint_p.add_argument("--entry", action="append", default=[],
                        metavar="NAME/ARITY",
                        help="declare an entry point for reachability checks")
    lint_p.add_argument("--allow-pragmas", action="store_true",
                        help="suppress pragma-without-motif warnings")

    sub.add_parser("motifs", help="list the registered motif library")
    sub.add_parser("demo", help="run the paper's §3.1 example four ways")
    return parser


def _parse_service(text: str) -> tuple[str, int]:
    try:
        name, arity = text.rsplit("/", 1)
        return (name, int(arity))
    except ValueError:
        raise SystemExit(f"bad --service {text!r}; expected NAME/ARITY")


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        source = args.source.read_text()
    except OSError as e:
        print(f"error: cannot read {args.source}: {e}", file=sys.stderr)
        return 2
    try:
        program = parse_program(source, name=args.source.stem)
        machine = Machine(args.processors, topology=args.topology,
                          seed=args.seed, trace=args.gantt)
        result = run_query(
            program,
            args.query,
            machine=machine,
            services=[_parse_service(s) for s in args.service],
            max_reductions=args.max_reductions,
        )
    except (ReproError, StrandError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    for line in result.output:
        print(line)
    for name, var in sorted(result.bindings.items()):
        value = deref(var)
        rendered = format_term(value) if not isinstance(value, Var) else "_"
        print(f"{name} = {rendered}")
    if not args.quiet:
        print(result.metrics.summary())
    if args.gantt:
        print()
        print(render_gantt(machine.trace, machine.size, result.metrics.makespan))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.strand.lint import lint_program

    try:
        source = args.source.read_text()
    except OSError as e:
        print(f"error: cannot read {args.source}: {e}", file=sys.stderr)
        return 2
    try:
        program = parse_program(source, name=args.source.stem)
    except StrandError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    warnings = lint_program(
        program,
        foreign=[_parse_service(s) for s in args.foreign],
        entries=[_parse_service(s) for s in args.entry],
        allow_pragmas=args.allow_pragmas,
    )
    for warning in warnings:
        print(warning)
    print(f"{len(warnings)} warning(s)")
    return 0 if not warnings else 3


def _cmd_motifs(_args: argparse.Namespace) -> int:
    registry = default_registry()
    print("registered motifs:")
    for name in registry.names():
        print(f"  {name}")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.apps.arithmetic import eval_arith_node, paper_example_tree
    from repro.core.api import reduce_tree

    for strategy in ("sequential", "static", "tr1", "tr2"):
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=4, strategy=strategy, seed=42)
        print(f"{strategy:>10s}: value={result.value}  "
              f"{result.metrics.summary()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "motifs":
        return _cmd_motifs(args)
    if args.command == "demo":
        return _cmd_demo(args)
    raise SystemExit(2)  # pragma: no cover
