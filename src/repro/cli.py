"""Command-line interface: run Strand programs on the virtual multicomputer.

::

    python -m repro run program.str "go(4, Value)" -P 4 --topology ring
    python -m repro run program.str "go(4, V)" --profile --trace-out run.jsonl
    python -m repro trace run.jsonl --kind fault --chrome run.chrome.json
    python -m repro motifs
    python -m repro demo

``run`` executes a goal conjunction against a Strand source file; variable
bindings, machine metrics, and (with ``--gantt``) an ASCII schedule are
printed.  ``--profile`` prints the per-motif/per-predicate cost table;
``--trace-out`` archives the causal event trace as JSONL.  ``trace``
analyses an archived trace offline: summary, filters, causal chains, the
ASCII gantt, and Chrome/Perfetto ``trace_event`` conversion (see
``docs/OBSERVABILITY.md``).  ``motifs`` lists the registered motif
library — "archives of expertise that can be consulted" (§1).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro import __version__
from repro.core.registry import default_registry
from repro.errors import ReproError, StrandError
from repro.machine import Machine
from repro.machine.gantt import render_gantt
from repro.machine.profile import MotifProfile
from repro.machine.trace import Trace
from repro.machine.tracefile import read_jsonl, write_chrome, write_jsonl
from repro.strand import format_term, parse_program, run_query
from repro.strand.terms import Var, deref

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Algorithmic-motif reproduction: Strand programs on a "
                    "virtual multicomputer.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a goal against a Strand source file")
    run_p.add_argument("source", type=Path, help="Strand source file")
    run_p.add_argument("query", help='goal conjunction, e.g. "go(4, Value)"')
    run_p.add_argument("-P", "--processors", type=int, default=1)
    run_p.add_argument("--topology", default=None,
                       choices=[None, "full", "ring", "mesh", "torus", "hypercube", "tree"],
                       help="interconnect (default: fully connected)")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--backend", default="sequential",
                       choices=["sequential", "parallel"],
                       help="execution backend: in-process simulation "
                            "(default) or processor shards across OS "
                            "worker processes")
    run_p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker-process count for --backend parallel "
                            "(default: min(processors, CPU count))")
    run_p.add_argument("--epoch-window", type=float, default=None,
                       metavar="T",
                       help="conservative epoch width in virtual time for "
                            "--backend parallel (default: run each epoch "
                            "to local quiescence)")
    run_p.add_argument("--max-reductions", type=int, default=5_000_000)
    run_p.add_argument("--service", action="append", default=[],
                       metavar="NAME/ARITY",
                       help="declare a perpetual service procedure "
                            "(repeatable), e.g. --service server/2")
    run_p.add_argument("--gantt", action="store_true",
                       help="print an ASCII schedule of the run "
                            "(auto-enables tracing)")
    run_p.add_argument("--profile", action="store_true",
                       help="print a per-motif/per-predicate cost table")
    run_p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                       help="stream the causal event trace to FILE as JSONL "
                            "(auto-enables tracing; analyse with "
                            "'repro trace FILE')")
    run_p.add_argument("--trace-limit", type=int, default=None, metavar="N",
                       help="cap the in-memory trace at N events "
                            "(default 1,000,000)")
    run_p.add_argument("--trace-ring", action="store_true",
                       help="keep the *last* --trace-limit events instead "
                            "of the first")
    run_p.add_argument("--quiet", action="store_true",
                       help="print only variable bindings")

    trace_p = sub.add_parser(
        "trace", help="analyse a JSONL trace exported by run --trace-out")
    trace_p.add_argument("file", type=Path, help="JSONL trace file")
    trace_p.add_argument("--kind", default=None,
                         help="only events of this kind (reduce, spawn, "
                              "send, bind, wake, suspend, fault, crash, "
                              "timeout)")
    trace_p.add_argument("--motif", default=None,
                         help="only events attributed to this motif layer "
                              "('user' = untagged events)")
    trace_p.add_argument("--proc", type=int, default=None,
                         help="only events on this processor")
    trace_p.add_argument("--show", type=int, default=0, metavar="N",
                         help="print the first N matching events "
                              "(0 = summary only)")
    trace_p.add_argument("--chain", type=int, default=None, metavar="EID",
                         help="print the causal chain ending at event EID")
    trace_p.add_argument("--gantt", action="store_true",
                         help="render the ASCII schedule from the file")
    trace_p.add_argument("--chrome", type=Path, default=None, metavar="OUT",
                         help="convert to Chrome/Perfetto trace_event JSON "
                              "(load at https://ui.perfetto.dev)")

    lint_p = sub.add_parser("lint", help="static checks on a Strand source file")
    lint_p.add_argument("source", type=Path)
    lint_p.add_argument("--foreign", action="append", default=[],
                        metavar="NAME/ARITY",
                        help="declare a foreign procedure (repeatable)")
    lint_p.add_argument("--entry", action="append", default=[],
                        metavar="NAME/ARITY",
                        help="declare an entry point for reachability checks")
    lint_p.add_argument("--allow-pragmas", action="store_true",
                        help="suppress pragma-without-motif warnings")

    sub.add_parser("motifs", help="list the registered motif library")
    sub.add_parser("demo", help="run the paper's §3.1 example four ways")
    return parser


def _parse_service(text: str) -> tuple[str, int]:
    try:
        name, arity = text.rsplit("/", 1)
        return (name, int(arity))
    except ValueError:
        raise SystemExit(f"bad --service {text!r}; expected NAME/ARITY")


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        source = args.source.read_text()
    except OSError as e:
        print(f"error: cannot read {args.source}: {e}", file=sys.stderr)
        return 2
    # Any observability flag auto-enables tracing — --gantt on a disabled
    # trace used to print an empty schedule silently.
    tracing = bool(args.gantt or args.trace_out)
    profile = MotifProfile() if args.profile else None
    try:
        program = parse_program(source, name=args.source.stem)
        machine = Machine(args.processors, topology=args.topology,
                          seed=args.seed, trace=tracing,
                          backend=args.backend,
                          workers=args.workers,
                          epoch_window=args.epoch_window)
        if tracing and (args.trace_limit is not None or args.trace_ring):
            limit = (args.trace_limit if args.trace_limit is not None
                     else 1_000_000)
            machine.trace = Trace(enabled=True, limit=limit,
                                  ring=args.trace_ring)
        result = run_query(
            program,
            args.query,
            machine=machine,
            services=[_parse_service(s) for s in args.service],
            max_reductions=args.max_reductions,
            profile=profile,
        )
    except (ReproError, StrandError, NotImplementedError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    for line in result.output:
        print(line)
    for name, var in sorted(result.bindings.items()):
        value = deref(var)
        rendered = format_term(value) if not isinstance(value, Var) else "_"
        print(f"{name} = {rendered}")
    if not args.quiet:
        print(result.metrics.summary())
    if profile is not None:
        print()
        print(profile.render())
    if args.gantt:
        print()
        print(render_gantt(machine.trace, machine.size, result.metrics.makespan))
    if args.trace_out:
        count = write_jsonl(
            machine.trace, args.trace_out,
            processors=machine.size, seed=args.seed,
            source=str(args.source), query=args.query,
            makespan=result.metrics.makespan,
        )
        print(f"trace: wrote {count} events to {args.trace_out}")
    if machine.trace.dropped:
        print(
            f"warning: trace truncated — {machine.trace.dropped} event(s) "
            "dropped; raise --trace-limit or use --trace-ring",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        trace, meta = read_jsonl(args.file)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: cannot load trace {args.file}: {e}", file=sys.stderr)
        return 2
    events = list(trace)
    processors = int(meta.get("processors") or
                     max((e.proc for e in events), default=1))
    if args.chain is not None:
        chain = trace.chain(args.chain)
        if not chain:
            print(f"error: no event {args.chain} in trace", file=sys.stderr)
            return 1
        print(f"causal chain for event {args.chain} (root first):")
        for event in chain:
            motif = f" [{event.motif}]" if event.motif else ""
            print(f"  #{event.eid} <- {event.cause}  t={event.time:.2f} "
                  f"p{event.proc} {event.kind} {event.detail}{motif}")
        return 0
    selected = events
    if args.kind:
        selected = [e for e in selected if e.kind == args.kind]
    if args.motif:
        want = "" if args.motif == "user" else args.motif
        selected = [e for e in selected if e.motif == want]
    if args.proc is not None:
        selected = [e for e in selected if e.proc == args.proc]
    span = (f"t=[{events[0].time:.1f}, {max(e.time for e in events):.1f}]"
            if events else "empty")
    print(f"{args.file}: {len(events)} events, {processors} processor(s), "
          f"{span}, {trace.dropped} dropped")
    for source, label in ((meta.get("source"), "source"),
                          (meta.get("query"), "query")):
        if source:
            print(f"  {label}: {source}")
    kinds = Counter(e.kind for e in selected)
    motifs = Counter(e.motif or "user" for e in selected)
    filters = [f"{n}={v}" for n, v in
               (("kind", args.kind), ("motif", args.motif),
                ("proc", args.proc)) if v is not None]
    scope = f" matching {' '.join(filters)}" if filters else ""
    print(f"  {len(selected)} event(s){scope}")
    print("  by kind:  " + ", ".join(f"{k}={n}" for k, n in kinds.most_common()))
    print("  by motif: " + ", ".join(f"{m}={n}" for m, n in motifs.most_common()))
    if args.show:
        for event in selected[: args.show]:
            motif = f" [{event.motif}]" if event.motif else ""
            print(f"  #{event.eid} <- {event.cause}  t={event.time:.2f} "
                  f"p{event.proc} {event.kind} {event.detail}{motif}")
    if args.gantt:
        makespan = float(meta.get("makespan") or
                         max((e.time for e in events), default=0.0))
        print()
        print(render_gantt(trace, processors, makespan))
    if args.chrome:
        write_chrome(events, args.chrome, processors=processors)
        print(f"wrote Chrome trace_event JSON to {args.chrome} "
              "(load at https://ui.perfetto.dev)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.strand.lint import lint_program

    try:
        source = args.source.read_text()
    except OSError as e:
        print(f"error: cannot read {args.source}: {e}", file=sys.stderr)
        return 2
    try:
        program = parse_program(source, name=args.source.stem)
    except StrandError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    warnings = lint_program(
        program,
        foreign=[_parse_service(s) for s in args.foreign],
        entries=[_parse_service(s) for s in args.entry],
        allow_pragmas=args.allow_pragmas,
    )
    for warning in warnings:
        print(warning)
    print(f"{len(warnings)} warning(s)")
    return 0 if not warnings else 3


def _cmd_motifs(_args: argparse.Namespace) -> int:
    registry = default_registry()
    print("registered motifs:")
    for name in registry.names():
        print(f"  {name}")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.apps.arithmetic import eval_arith_node, paper_example_tree
    from repro.core.api import reduce_tree

    for strategy in ("sequential", "static", "tr1", "tr2"):
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=4, strategy=strategy, seed=42)
        print(f"{strategy:>10s}: value={result.value}  "
              f"{result.metrics.summary()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "motifs":
        return _cmd_motifs(args)
    if args.command == "demo":
        return _cmd_demo(args)
    raise SystemExit(2)  # pragma: no cover
