"""Arithmetic expression trees — the paper's §3.1 illustration workload.

"Consider the following tree in which each non-leaf node represents a
multiplication or addition operation.  Reduction of this tree corresponds
to evaluation of the expression (3*2)*((3+1)+(2+... )) and yields the value
24 at the root."

Provides the paper's exact example tree, random arithmetic workload
generators (uniform cost), and heavy-tailed variants modelling §3.1's
"the time required at each node is non-uniform and cannot easily be
predicted" (the biology case) for experiment E6.
"""

from __future__ import annotations

import random
from typing import Any

from repro.apps.trees import Leaf, Node, Tree, balanced_tree, random_tree, skewed_tree

__all__ = [
    "EVAL_SOURCE",
    "paper_example_tree",
    "paper_example_value",
    "arithmetic_tree",
    "eval_arith_node",
    "uniform_cost",
    "heavy_tailed_cost",
    "make_cost_model",
]

#: Strand node-evaluation function for arithmetic trees (Figure 2, Part A).
EVAL_SOURCE = """
eval(add, L, R, Value) :- Value := L + R.
eval(mul, L, R, Value) :- Value := L * R.
eval(sub, L, R, Value) :- Value := L - R.
eval(mx, L, R, Value)  :- L >= R | Value := L.
eval(mx, L, R, Value)  :- L < R  | Value := R.
"""


def paper_example_tree() -> Tree:
    """The §3.1 example: ``(3*2) * ((1+1)+(2*1)) = 24``.

    (The paper's scanned rendering of the expression is garbled; this tree
    is chosen to reduce to the stated value 24 with * and + nodes.)
    """
    return Node(
        "mul",
        Node("mul", Leaf(3), Leaf(2)),
        Node("add", Node("add", Leaf(1), Leaf(1)), Node("mul", Leaf(2), Leaf(1))),
    )


#: The value the paper reports at the root.
paper_example_value = 24


def eval_arith_node(op: Any, left: Any, right: Any) -> Any:
    """Python node evaluator matching :data:`EVAL_SOURCE`."""
    name = getattr(op, "name", op)
    if name == "add":
        return left + right
    if name == "mul":
        return left * right
    if name == "sub":
        return left - right
    if name == "mx":
        return max(left, right)
    raise ValueError(f"unknown operator {op!r}")


def arithmetic_tree(
    leaves: int,
    seed: int = 0,
    shape: str = "random",
    ops: tuple[str, ...] = ("add", "mul"),
    leaf_range: tuple[int, int] = (0, 9),
) -> Tree:
    """A random arithmetic tree.

    ``shape`` is ``"random"`` (random splits), ``"balanced"`` (complete;
    ``leaves`` rounded down to a power of two), or ``"skewed"``
    (left spine).  ``mul`` on small leaf values keeps results bounded.
    """
    rng = random.Random(seed)

    def op_fn(r: random.Random) -> str:
        return r.choice(ops)

    def leaf_fn(r: random.Random) -> int:
        return r.randint(*leaf_range)

    if shape == "random":
        return random_tree(leaves, op_fn, leaf_fn, rng)
    if shape == "balanced":
        depth = max(0, leaves.bit_length() - 1)
        return balanced_tree(depth, op_fn, leaf_fn, rng)
    if shape == "skewed":
        return skewed_tree(leaves, op_fn, leaf_fn, rng)
    raise ValueError(f"unknown tree shape {shape!r}")


# ---------------------------------------------------------------------------
# Cost models (virtual time charged per node evaluation)
# ---------------------------------------------------------------------------

def uniform_cost(cost: float = 10.0):
    """Every node evaluation takes the same virtual time — the §3.1
    "simple arithmetic example" regime where static partitioning wins."""

    def model(op: Any, left: Any, right: Any) -> float:
        return cost

    return model


def heavy_tailed_cost(base: float = 5.0, spike: float = 200.0,
                      spike_probability: float = 0.1, seed: int = 0):
    """Unpredictable node costs — the §3.1 biology regime: most nodes are
    cheap, a random minority are very expensive.

    The cost is a deterministic hash of the node's operator and operand
    values (plus the seed), so the *same node* costs the same under every
    schedule and strategy — required for apples-to-apples comparisons in
    experiment E6.
    """
    import zlib

    threshold = int(spike_probability * 1_000_000)

    def model(op: Any, left: Any, right: Any) -> float:
        key = f"{getattr(op, 'name', op)}|{left}|{right}|{seed}"
        h = zlib.crc32(key.encode()) % 1_000_000
        return spike if h < threshold else base

    return model


def make_cost_model(kind: str, seed: int = 0):
    """Factory used by benchmarks: ``'uniform'`` or ``'heavy'``."""
    if kind == "uniform":
        return uniform_cost()
    if kind == "heavy":
        return heavy_tailed_cost(seed=seed)
    raise ValueError(f"unknown cost model {kind!r}")
