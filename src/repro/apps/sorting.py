"""Sorting workloads for the sort motif (§4 future work)."""

from __future__ import annotations

import random

from repro.strand.foreign import ForeignRegistry

__all__ = [
    "random_list",
    "halve",
    "merge_sorted",
    "sort_seq",
    "register_sorting",
]


def random_list(n: int, seed: int = 0, bound: int = 10_000) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(0, bound) for _ in range(n)]


def halve(xs: list) -> tuple[list, list]:
    mid = len(xs) // 2
    return xs[:mid], xs[mid:]


def merge_sorted(a: list, b: list) -> list:
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def sort_seq(xs: list) -> list:
    return sorted(xs)


def register_sorting(registry: ForeignRegistry, unit: float = 0.05) -> None:
    """Register the sorting primitives with length-proportional costs
    (sequential sort pays the ``n log n`` factor)."""
    import math

    registry.register(
        "halve", 3, halve, outputs=(1, 2), cost=lambda xs: max(1.0, unit * len(xs))
    )
    registry.register(
        "merge_sorted", 3, merge_sorted,
        cost=lambda a, b: max(1.0, unit * (len(a) + len(b))),
    )
    registry.register(
        "sort_seq", 2, sort_seq,
        cost=lambda xs: max(1.0, unit * len(xs) * max(1.0, math.log2(max(2, len(xs))))),
    )
