"""Jacobi relaxation workloads for the grid motif (§4 "grid problems").

The domain is a 2-D grid of floats with a fixed boundary value; one Jacobi
sweep replaces each interior cell with the average of its four neighbours.
A NumPy reference implementation validates the distributed strips.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.strand.foreign import ForeignRegistry
from repro.strand.terms import Atom

__all__ = [
    "make_grid",
    "split_strips",
    "join_strips",
    "jacobi_reference",
    "top_row",
    "bottom_row",
    "sweep",
    "register_grid",
    "EDGE_VALUE",
]

#: The fixed boundary value represented by the atom ``edge``.
EDGE_VALUE = 0.0

_EDGE = Atom("edge")


def make_grid(rows: int, cols: int, hot: float = 100.0) -> list[list[float]]:
    """A grid that is zero everywhere except a hot patch in the middle."""
    grid = [[0.0] * cols for _ in range(rows)]
    for r in range(rows // 3, max(rows // 3 + 1, 2 * rows // 3)):
        for c in range(cols // 3, max(cols // 3 + 1, 2 * cols // 3)):
            grid[r][c] = hot
    return grid


def split_strips(grid: list[list[float]], workers: int) -> list[list[list[float]]]:
    """Split rows into ``workers`` contiguous strips (sizes differing by at
    most one)."""
    rows = len(grid)
    if workers < 1 or workers > rows:
        raise ReproError(f"cannot split {rows} rows into {workers} strips")
    base, extra = divmod(rows, workers)
    strips = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        strips.append([row[:] for row in grid[start:start + size]])
        start += size
    return strips


def join_strips(strips: list[list[list[float]]]) -> list[list[float]]:
    out: list[list[float]] = []
    for strip in strips:
        out.extend(strip)
    return out


def jacobi_reference(grid: list[list[float]], iterations: int,
                     edge: float = EDGE_VALUE) -> list[list[float]]:
    """NumPy reference: ``iterations`` Jacobi sweeps with a constant
    boundary ring."""
    a = np.array(grid, dtype=float)
    for _ in range(iterations):
        padded = np.pad(a, 1, constant_values=edge)
        a = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] +
            padded[1:-1, :-2] + padded[1:-1, 2:]
        ) / 4.0
    return a.tolist()


# ---------------------------------------------------------------------------
# Foreign procedures for the grid motif
# ---------------------------------------------------------------------------

def top_row(strip: list) -> list:
    return list(strip[0])


def bottom_row(strip: list) -> list:
    return list(strip[-1])


def _as_row(value, cols: int) -> list[float]:
    if value is _EDGE:
        return [EDGE_VALUE] * cols
    return list(value)


def sweep(strip: list, above, below) -> list:
    """One Jacobi sweep over a strip given its neighbour boundary rows
    (or the ``edge`` atom for the domain boundary)."""
    rows = len(strip)
    cols = len(strip[0])
    ab = _as_row(above, cols)
    be = _as_row(below, cols)
    a = np.array(strip, dtype=float)
    padded = np.empty((rows + 2, cols + 2), dtype=float)
    padded[1:-1, 1:-1] = a
    padded[0, 1:-1] = ab
    padded[-1, 1:-1] = be
    padded[:, 0] = EDGE_VALUE
    padded[:, -1] = EDGE_VALUE
    # Corner cells are never read by the 5-point stencil.
    new = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] +
        padded[1:-1, :-2] + padded[1:-1, 2:]
    ) / 4.0
    return new.tolist()


def register_grid(registry: ForeignRegistry, unit: float = 0.02) -> None:
    """Register the grid primitives; ``sweep`` costs ∝ strip cells."""
    registry.register("top_row", 2, top_row, cost=1.0)
    registry.register("bottom_row", 2, bottom_row, cost=1.0)
    registry.register(
        "sweep", 4, sweep,
        cost=lambda strip, above, below: max(1.0, unit * len(strip) * len(strip[0])),
    )
