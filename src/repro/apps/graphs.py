"""Graph workloads for the graph motif (§4 "graph theory problems").

NetworkX supplies the reference shortest-path answers and random-graph
generators; the distributed computation itself runs entirely in the
Strand substrate.
"""

from __future__ import annotations

import networkx as nx

from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.graph import graph_motif, sssp_goals
from repro.strand.terms import deref, iter_list

__all__ = [
    "random_graph",
    "grid_graph",
    "cycle_graph",
    "reference_distances",
    "run_sssp",
]


def random_graph(nodes: int, edge_probability: float = 0.15,
                 seed: int = 0) -> dict[int, list[int]]:
    """A connected Erdős–Rényi-ish graph as an adjacency dict (undirected:
    both directions listed)."""
    g = nx.gnp_random_graph(nodes, edge_probability, seed=seed)
    # Connect stragglers to node 0 so every node is reachable.
    for node in list(g.nodes):
        if node != 0 and not nx.has_path(g, 0, node):
            g.add_edge(node - 1 if node > 0 else 0, node)
    return {n: sorted(g.neighbors(n)) for n in g.nodes}


def grid_graph(rows: int, cols: int) -> dict[int, list[int]]:
    """A rows×cols lattice with integer node ids ``r*cols + c``."""
    g = nx.grid_2d_graph(rows, cols)
    relabel = {(r, c): r * cols + c for r, c in g.nodes}
    g = nx.relabel_nodes(g, relabel)
    return {n: sorted(g.neighbors(n)) for n in g.nodes}


def cycle_graph(nodes: int) -> dict[int, list[int]]:
    g = nx.cycle_graph(nodes)
    return {n: sorted(g.neighbors(n)) for n in g.nodes}


def reference_distances(adjacency: dict[int, list[int]], source: int) -> dict[int, int]:
    """NetworkX BFS distances from the source (unreachable nodes absent)."""
    g = nx.Graph()
    g.add_nodes_from(adjacency)
    for node, neighbours in adjacency.items():
        for nb in neighbours:
            g.add_edge(node, nb)
    return dict(nx.single_source_shortest_path_length(g, source))


def run_sssp(adjacency: dict[int, list[int]], source: int, workers: int,
             seed: int = 0, machine: Machine | None = None):
    """Run the distributed SSSP and return ``(distances, metrics)``."""
    from repro.strand.program import Program

    applied = graph_motif().apply(Program(name="sssp"))
    goals, results, _ports = sssp_goals(adjacency, source, workers)
    if machine is None:
        machine = Machine(workers, seed=seed)
    _, metrics = run_applied(applied, goals, machine)
    distances: dict[int, int] = {}
    for result in results:
        for entry in iter_list(deref(result)):
            entry = deref(entry)
            node = deref(entry.args[0])
            dist = deref(entry.args[1])
            distances[node] = dist
    return distances, metrics
