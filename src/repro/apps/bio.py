"""Multiple RNA sequence alignment — the paper's motivating application.

§3: "the generation of alignments of multiple sequences of RNA from
different but related organisms.  This application first generates a binary
'phylogenetic tree', in which subtrees represent clusters of more closely
related organisms.  Reduction of this tree using an 'align-node' function
produces the desired alignment."

The paper's data (Ross Overbeek's rRNA collection) and its 2000-line
Strand+C ``align-node`` are unavailable; per DESIGN.md we substitute:

* a **synthetic family generator**: evolve a random ancestral RNA sequence
  down a random binary phylogeny with substitutions and indels;
* **distance estimation**: pairwise Needleman–Wunsch identity →
  Jukes–Cantor-corrected distances;
* **UPGMA** guide-tree construction over the distance matrix;
* a **profile–profile align-node**: Needleman–Wunsch over alignment
  columns with sum-of-pairs column scoring.

``align_node`` is registered as the foreign ``eval/4`` with cost equal to
its dynamic-programming work — the non-uniform, input-dependent node cost
§3.1 says the dynamic tree-reduction motifs exist for.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.apps.trees import Leaf, Node, Tree
from repro.errors import ReproError

__all__ = [
    "ALPHABET",
    "SequenceFamily",
    "generate_family",
    "needleman_wunsch",
    "pairwise_identity",
    "jukes_cantor",
    "distance_matrix",
    "upgma",
    "guide_tree",
    "align_node",
    "align_cost",
    "profile_width",
    "sum_of_pairs",
    "alignment_workload",
    "neighbor_joining",
    "guide_tree_nj",
    "robinson_foulds",
    "relabel_with_names",
]

ALPHABET = "ACGU"
GAP = "-"

# Scoring for both pairwise and profile alignment.
MATCH = 2.0
MISMATCH = -1.0
GAP_PENALTY = -2.0


@dataclass
class SequenceFamily:
    """A synthetic family: the sequences, their names, and the true tree
    (names at the leaves) used to generate them."""

    sequences: list[str]
    names: list[str]
    true_tree: Tree


def _mutate(seq: str, rate: float, rng: random.Random) -> str:
    """One evolutionary edge: per-site substitution with probability
    ``rate``, plus occasional single-base indels at ``rate / 5``."""
    out: list[str] = []
    for ch in seq:
        r = rng.random()
        if r < rate:
            ch = rng.choice([c for c in ALPHABET if c != ch])
            out.append(ch)
        elif r < rate + rate / 10:
            pass  # deletion
        elif r < rate + rate / 5:
            out.append(ch)
            out.append(rng.choice(ALPHABET))  # insertion
        else:
            out.append(ch)
    if not out:  # never let a sequence vanish entirely
        out.append(rng.choice(ALPHABET))
    return "".join(out)


def generate_family(
    n_sequences: int = 8,
    root_length: int = 60,
    mutation_rate: float = 0.08,
    seed: int = 0,
) -> SequenceFamily:
    """Evolve a family of related RNA sequences down a random phylogeny."""
    if n_sequences < 2:
        raise ReproError("a family needs at least two sequences")
    rng = random.Random(seed)
    root = "".join(rng.choice(ALPHABET) for _ in range(root_length))

    counter = [0]

    def evolve(seq: str, leaves: int) -> tuple[Tree, list[tuple[str, str]]]:
        if leaves == 1:
            counter[0] += 1
            name = f"org{counter[0]:02d}"
            return Leaf(name), [(name, seq)]
        k = rng.randint(1, leaves - 1)
        left_seq = _mutate(seq, mutation_rate, rng)
        right_seq = _mutate(seq, mutation_rate, rng)
        lt, ls = evolve(left_seq, k)
        rt, rs = evolve(right_seq, leaves - k)
        return Node("split", lt, rt), ls + rs

    tree, named = evolve(root, n_sequences)
    names = [n for n, _ in named]
    seqs = [s for _, s in named]
    return SequenceFamily(sequences=seqs, names=names, true_tree=tree)


# ---------------------------------------------------------------------------
# Pairwise alignment and distances
# ---------------------------------------------------------------------------

def needleman_wunsch(a: str, b: str) -> tuple[str, str, float]:
    """Global alignment of two sequences.  Returns the two gapped strings
    and the alignment score."""
    n, m = len(a), len(b)
    # score[i][j] = best score of a[:i] vs b[:j]
    score = [[0.0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        score[i][0] = i * GAP_PENALTY
    for j in range(1, m + 1):
        score[0][j] = j * GAP_PENALTY
    for i in range(1, n + 1):
        ai = a[i - 1]
        row = score[i]
        prev = score[i - 1]
        for j in range(1, m + 1):
            sub = prev[j - 1] + (MATCH if ai == b[j - 1] else MISMATCH)
            dele = prev[j] + GAP_PENALTY
            ins = row[j - 1] + GAP_PENALTY
            row[j] = max(sub, dele, ins)
    # traceback
    out_a: list[str] = []
    out_b: list[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0 and math.isclose(
            score[i][j],
            score[i - 1][j - 1] + (MATCH if a[i - 1] == b[j - 1] else MISMATCH),
        ):
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif i > 0 and math.isclose(score[i][j], score[i - 1][j] + GAP_PENALTY):
            out_a.append(a[i - 1])
            out_b.append(GAP)
            i -= 1
        else:
            out_a.append(GAP)
            out_b.append(b[j - 1])
            j -= 1
    return "".join(reversed(out_a)), "".join(reversed(out_b)), score[n][m]


def pairwise_identity(a: str, b: str) -> float:
    """Fraction of identical aligned positions (gap positions excluded)."""
    ga, gb, _ = needleman_wunsch(a, b)
    same = 0
    compared = 0
    for x, y in zip(ga, gb):
        if x != GAP and y != GAP:
            compared += 1
            if x == y:
                same += 1
    if compared == 0:
        return 0.0
    return same / compared


def jukes_cantor(p_distance: float) -> float:
    """Jukes–Cantor correction ``-3/4 ln(1 - 4p/3)``, clamped at the model's
    saturation point."""
    p = min(max(p_distance, 0.0), 0.7499)
    return -0.75 * math.log(1.0 - 4.0 * p / 3.0)


def distance_matrix(sequences: list[str]) -> list[list[float]]:
    """Symmetric JC-corrected distance matrix from pairwise alignments."""
    n = len(sequences)
    d = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            p = 1.0 - pairwise_identity(sequences[i], sequences[j])
            d[i][j] = d[j][i] = jukes_cantor(p)
    return d


# ---------------------------------------------------------------------------
# UPGMA guide tree
# ---------------------------------------------------------------------------

def upgma(distances: list[list[float]], labels: list) -> Tree:
    """UPGMA clustering: repeatedly join the closest pair, averaging
    distances weighted by cluster sizes.  Leaves carry the given labels;
    internal nodes carry the operator tag ``"align"``."""
    n = len(labels)
    if n == 0:
        raise ReproError("upgma needs at least one label")
    if any(len(row) != n for row in distances) or len(distances) != n:
        raise ReproError("distance matrix shape does not match labels")
    clusters: dict[int, Tree] = {i: Leaf(labels[i]) for i in range(n)}
    sizes: dict[int, int] = {i: 1 for i in range(n)}
    dist: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            dist[(i, j)] = distances[i][j]
    next_id = n
    while len(clusters) > 1:
        (a, b), _ = min(
            ((pair, d) for pair, d in dist.items()
             if pair[0] in clusters and pair[1] in clusters),
            key=lambda item: (item[1], item[0]),
        )
        merged = Node("align", clusters[a], clusters[b])
        size_a, size_b = sizes[a], sizes[b]
        del clusters[a], clusters[b]
        for other in clusters:
            da = dist[_key(a, other)]
            db = dist[_key(b, other)]
            dist[_key(next_id, other)] = (da * size_a + db * size_b) / (size_a + size_b)
        clusters[next_id] = merged
        sizes[next_id] = size_a + size_b
        next_id += 1
    (tree,) = clusters.values()
    return tree


def _key(i: int, j: int) -> tuple[int, int]:
    return (i, j) if i < j else (j, i)


def guide_tree(family: SequenceFamily) -> Tree:
    """UPGMA guide tree whose leaves carry single-sequence *profiles*
    (lists of one string) — ready for tree reduction with
    :func:`align_node`."""
    d = distance_matrix(family.sequences)
    return upgma(d, [[seq] for seq in family.sequences])


# ---------------------------------------------------------------------------
# Profile–profile align-node (the tree-reduction operator)
# ---------------------------------------------------------------------------

def profile_width(profile: list[str]) -> int:
    if not profile:
        raise ReproError("empty profile")
    width = len(profile[0])
    if any(len(row) != width for row in profile):
        raise ReproError("ragged profile")
    return width


def _column_score(col_a: list[str], col_b: list[str]) -> float:
    """Average sum-of-pairs score of aligning two profile columns."""
    total = 0.0
    for x in col_a:
        for y in col_b:
            if x == GAP or y == GAP:
                total += GAP_PENALTY / 2.0
            elif x == y:
                total += MATCH
            else:
                total += MISMATCH
    return total / (len(col_a) * len(col_b))


def align_node(op, left: list[str], right: list[str]) -> list[str]:
    """Profile–profile Needleman–Wunsch: the ``align-node`` operator.

    ``op`` is the node tag from the guide tree (unused, present to match
    the ``eval(V, LV, RV, Value)`` calling convention).  Both profiles are
    lists of equal-length gapped strings; the result is a single merged
    profile containing every input row.
    """
    la = [str(s) for s in left]
    ra = [str(s) for s in right]
    wa, wb = profile_width(la), profile_width(ra)
    cols_a = [[row[i] for row in la] for i in range(wa)]
    cols_b = [[row[j] for row in ra] for j in range(wb)]
    score = [[0.0] * (wb + 1) for _ in range(wa + 1)]
    for i in range(1, wa + 1):
        score[i][0] = i * GAP_PENALTY
    for j in range(1, wb + 1):
        score[0][j] = j * GAP_PENALTY
    for i in range(1, wa + 1):
        row = score[i]
        prev = score[i - 1]
        ca = cols_a[i - 1]
        for j in range(1, wb + 1):
            sub = prev[j - 1] + _column_score(ca, cols_b[j - 1])
            dele = prev[j] + GAP_PENALTY
            ins = row[j - 1] + GAP_PENALTY
            row[j] = max(sub, dele, ins)
    # traceback into per-input column index lists
    path: list[tuple[str, int, int]] = []
    i, j = wa, wb
    while i > 0 or j > 0:
        if i > 0 and j > 0 and math.isclose(
            score[i][j], score[i - 1][j - 1] + _column_score(cols_a[i - 1], cols_b[j - 1])
        ):
            path.append(("both", i - 1, j - 1))
            i -= 1
            j -= 1
        elif i > 0 and math.isclose(score[i][j], score[i - 1][j] + GAP_PENALTY):
            path.append(("a", i - 1, -1))
            i -= 1
        else:
            path.append(("b", -1, j - 1))
            j -= 1
    path.reverse()
    merged: list[list[str]] = [[] for _ in range(len(la) + len(ra))]
    for kind, ia, jb in path:
        for r, row_str in enumerate(la):
            merged[r].append(row_str[ia] if kind in ("both", "a") else GAP)
        for r, row_str in enumerate(ra):
            merged[len(la) + r].append(row_str[jb] if kind in ("both", "b") else GAP)
    return ["".join(chars) for chars in merged]


def align_cost(op, left: list[str], right: list[str]) -> float:
    """Virtual cost of :func:`align_node`: the DP table work
    ``width_a × width_b × (rows_a + rows_b)``, scaled down to keep virtual
    times readable."""
    wa = len(left[0]) if left else 1
    wb = len(right[0]) if right else 1
    return max(1.0, wa * wb * (len(left) + len(right)) / 100.0)


def sum_of_pairs(alignment: list[str]) -> float:
    """Sum-of-pairs score of a multiple alignment (quality figure used to
    check schedule-independence in experiment E10)."""
    width = profile_width(alignment)
    total = 0.0
    for c in range(width):
        col = [row[c] for row in alignment]
        for i in range(len(col)):
            for j in range(i + 1, len(col)):
                x, y = col[i], col[j]
                if x == GAP and y == GAP:
                    continue
                if x == GAP or y == GAP:
                    total += GAP_PENALTY / 2.0
                elif x == y:
                    total += MATCH
                else:
                    total += MISMATCH
    return total


def alignment_workload(
    n_sequences: int = 8,
    root_length: int = 40,
    seed: int = 0,
) -> tuple[SequenceFamily, Tree]:
    """Convenience: a family plus its guide tree, ready for
    ``reduce_tree(tree, align_node, eval_cost=align_cost, ...)``."""
    family = generate_family(n_sequences, root_length, seed=seed)
    return family, guide_tree(family)


# ---------------------------------------------------------------------------
# Neighbor-Joining (alternative guide-tree method) and tree comparison
# ---------------------------------------------------------------------------

def neighbor_joining(distances: list[list[float]], labels: list) -> Tree:
    """Saitou–Nei neighbor joining, returning a (rooted) binary guide tree.

    NJ recovers the true topology for *additive* distance matrices even
    when evolutionary rates vary across lineages, which UPGMA (molecular
    clock assumed) does not — the standard upgrade path for the paper's
    phylogenetic preprocessing.  NJ trees are unrooted; the final two
    clusters are joined to make a root, which is all a guide tree needs.
    """
    n = len(labels)
    if n == 0:
        raise ReproError("neighbor_joining needs at least one label")
    if len(distances) != n or any(len(row) != n for row in distances):
        raise ReproError("distance matrix shape does not match labels")
    if n == 1:
        return Leaf(labels[0])
    nodes: dict[int, Tree] = {i: Leaf(labels[i]) for i in range(n)}
    dist: dict[tuple[int, int], float] = {
        _key(i, j): distances[i][j] for i in range(n) for j in range(i + 1, n)
    }
    active = set(range(n))
    next_id = n
    while len(active) > 2:
        m = len(active)
        totals = {
            i: sum(dist[_key(i, j)] for j in active if j != i) for i in active
        }
        best = None
        ordered = sorted(active)
        for ai, i in enumerate(ordered):
            for j in ordered[ai + 1:]:
                q = (m - 2) * dist[_key(i, j)] - totals[i] - totals[j]
                if best is None or q < best[0]:
                    best = (q, i, j)
        _, i, j = best
        merged = Node("align", nodes[i], nodes[j])
        d_ij = dist[_key(i, j)]
        for k in active:
            if k in (i, j):
                continue
            dist[_key(next_id, k)] = 0.5 * (
                dist[_key(i, k)] + dist[_key(j, k)] - d_ij
            )
        active.discard(i)
        active.discard(j)
        del nodes[i], nodes[j]
        nodes[next_id] = merged
        active.add(next_id)
        next_id += 1
    i, j = sorted(active)
    return Node("align", nodes[i], nodes[j])


def _leaf_set(tree: Tree) -> frozenset:
    stack, out = [tree], []
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            out.append(node.value)
        else:
            stack.extend((node.left, node.right))
    return frozenset(out)


def _bipartitions(tree: Tree) -> set[frozenset]:
    """Non-trivial leaf bipartitions (as the smaller-side frozenset of an
    unrooted view): the standard input to Robinson–Foulds."""
    all_leaves = _leaf_set(tree)
    splits: set[frozenset] = set()

    def walk(node: Tree) -> frozenset:
        if isinstance(node, Leaf):
            return frozenset([node.value])
        left = walk(node.left)
        right = walk(node.right)
        clade = left | right
        if 1 < len(clade) < len(all_leaves) - 1:
            other = all_leaves - clade
            splits.add(min(clade, other, key=lambda s: (len(s), sorted(map(str, s)))))
        return clade

    walk(tree)
    return splits


def robinson_foulds(a: Tree, b: Tree) -> int:
    """Robinson–Foulds distance between two (leaf-labelled) binary trees:
    the number of bipartitions present in exactly one of them.  0 means
    identical unrooted topologies."""
    if _leaf_set(a) != _leaf_set(b):
        raise ReproError("robinson_foulds: trees have different leaf sets")
    sa, sb = _bipartitions(a), _bipartitions(b)
    return len(sa ^ sb)


def guide_tree_nj(family: SequenceFamily) -> Tree:
    """Neighbor-joining guide tree with single-sequence profiles at the
    leaves (drop-in alternative to :func:`guide_tree`)."""
    d = distance_matrix(family.sequences)
    return neighbor_joining(d, [[seq] for seq in family.sequences])


def relabel_with_names(tree: Tree, family: SequenceFamily) -> Tree:
    """Replace single-sequence-profile leaves by their organism names
    (for comparing a guide tree against ``family.true_tree``)."""
    by_seq = {seq: name for name, seq in zip(family.names, family.sequences)}

    def walk(node: Tree) -> Tree:
        if isinstance(node, Leaf):
            return Leaf(by_seq[node.value[0]])
        return Node(node.op, walk(node.left), walk(node.right))

    return walk(tree)
