"""Application-specific procedures: the "user code" the motifs coordinate."""

from repro.apps import trees
from repro.apps.trees import Leaf, Node, Tree

__all__ = ["trees", "Leaf", "Node", "Tree"]
