"""0/1 knapsack workloads for the branch-and-bound motif.

A search node is ``[index, value, weight]``: items ``0..index-1`` have been
decided, accumulating ``value`` and ``weight``.  The optimistic bound is
the classic fractional-knapsack completion (items pre-sorted by value
density), which dominates the true best completion — required for
branch-and-bound correctness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError
from repro.strand.foreign import ForeignRegistry

__all__ = [
    "KnapsackProblem",
    "random_knapsack",
    "register_knapsack",
    "solve_reference",
    "root_node",
]


@dataclass(frozen=True)
class KnapsackProblem:
    """Items sorted by value density (descending), plus the capacity."""

    values: tuple[int, ...]
    weights: tuple[int, ...]
    capacity: int

    def __post_init__(self):
        if len(self.values) != len(self.weights):
            raise ReproError("values/weights length mismatch")
        if any(w <= 0 for w in self.weights) or any(v < 0 for v in self.values):
            raise ReproError("weights must be positive, values non-negative")

    @property
    def size(self) -> int:
        return len(self.values)


def random_knapsack(items: int, seed: int = 0, capacity_ratio: float = 0.4
                    ) -> KnapsackProblem:
    """A random instance, items pre-sorted by density."""
    rng = random.Random(seed)
    pairs = [(rng.randint(5, 60), rng.randint(3, 30)) for _ in range(items)]
    pairs.sort(key=lambda vw: vw[0] / vw[1], reverse=True)
    values = tuple(v for v, _ in pairs)
    weights = tuple(w for _, w in pairs)
    capacity = max(1, int(sum(weights) * capacity_ratio))
    return KnapsackProblem(values, weights, capacity)


def root_node() -> list[int]:
    return [0, 0, 0]


def _bound(problem: KnapsackProblem, node: list[int]) -> float:
    """Fractional completion bound (density order makes it greedy-optimal)."""
    index, value, weight = node
    room = problem.capacity - weight
    bound = float(value)
    for i in range(index, problem.size):
        w = problem.weights[i]
        if w <= room:
            room -= w
            bound += problem.values[i]
        else:
            bound += problem.values[i] * room / w
            break
    return bound


def _expand(problem: KnapsackProblem, node: list[int]) -> list[list[int]]:
    index, value, weight = node
    if index >= problem.size:
        return []
    children = [[index + 1, value, weight]]  # skip item
    w = problem.weights[index]
    if weight + w <= problem.capacity:
        children.append([index + 1, value + problem.values[index], weight + w])
    return children


def register_knapsack(registry: ForeignRegistry, problem: KnapsackProblem,
                      *, prune: bool = True, step_cost: float = 3.0) -> None:
    """Register ``bound_bb/leaf_bb/value_bb/expand_bb`` for the instance.

    ``prune=False`` replaces the bound with +infinity (never prunes) —
    the ablation baseline for measuring pruning effectiveness.
    """
    if prune:
        registry.register("bound_bb", 2,
                          lambda node: _bound(problem, node), cost=step_cost)
    else:
        registry.register("bound_bb", 2,
                          lambda node: float(sum(problem.values) + 1),
                          cost=step_cost)
    registry.register("leaf_bb", 2,
                      lambda node: 1 if node[0] >= problem.size else 0,
                      cost=1.0)
    registry.register("value_bb", 2, lambda node: node[1], cost=1.0)
    registry.register("expand_bb", 2,
                      lambda node: _expand(problem, node), cost=step_cost)


def solve_reference(problem: KnapsackProblem) -> int:
    """Exact optimum by dynamic programming (reference answer)."""
    best = [0] * (problem.capacity + 1)
    for v, w in zip(problem.values, problem.weights):
        for cap in range(problem.capacity, w - 1, -1):
            candidate = best[cap - w] + v
            if candidate > best[cap]:
                best[cap] = candidate
    return best[problem.capacity]
