"""Binary trees: Python-side construction, Strand-term conversion, and the
Tree-Reduce-2 preprocessing (node identifiers + processor labels).

The same tree has two representations:

* the **nested term** ``tree(Op, L, R)`` / ``leaf(X)`` consumed by
  Tree-Reduce-1 and the static partition motif, and
* the **flat table** (a tuple of ``leaf``/``op`` entries, §3.5) consumed by
  Tree-Reduce-2, produced by :func:`label_table`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Union

from repro.errors import ReproError
from repro.strand.foreign import from_python
from repro.strand.terms import Atom, Struct, Term, Tup, deref

__all__ = [
    "Leaf",
    "Node",
    "Tree",
    "tree_term",
    "tree_from_term",
    "tree_size",
    "leaf_count",
    "tree_depth",
    "sequential_reduce",
    "random_tree",
    "balanced_tree",
    "skewed_tree",
    "label_table",
    "TableEntry",
]


@dataclass(frozen=True)
class Leaf:
    """A leaf node carrying a Python value."""

    value: Any


@dataclass(frozen=True)
class Node:
    """An internal node: an operator tag plus two children."""

    op: Any
    left: "Tree"
    right: "Tree"


Tree = Union[Leaf, Node]


def tree_term(tree: Tree) -> Term:
    """Convert to the nested Strand term ``tree(Op, L, R)`` / ``leaf(X)``."""
    if isinstance(tree, Leaf):
        return Struct("leaf", (from_python(tree.value),))
    op = tree.op if isinstance(tree.op, (int, float, str, Atom)) else from_python(tree.op)
    if isinstance(op, str):
        op = Atom(op)
    return Struct("tree", (op, tree_term(tree.left), tree_term(tree.right)))


def tree_from_term(term: Term) -> Tree:
    """Inverse of :func:`tree_term` (for ground trees)."""
    term = deref(term)
    if type(term) is Struct and term.functor == "leaf" and len(term.args) == 1:
        from repro.strand.foreign import to_python

        return Leaf(to_python(term.args[0]))
    if type(term) is Struct and term.functor == "tree" and len(term.args) == 3:
        op = deref(term.args[0])
        if type(op) is Atom:
            op = op.name
        return Node(op, tree_from_term(term.args[1]), tree_from_term(term.args[2]))
    raise ReproError(f"not a tree term: {term!r}")


def iter_nodes(tree: Tree) -> Iterator[Tree]:
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Node):
            stack.append(node.right)
            stack.append(node.left)


def tree_size(tree: Tree) -> int:
    """Total node count (leaves + internal)."""
    return sum(1 for _ in iter_nodes(tree))


def leaf_count(tree: Tree) -> int:
    return sum(1 for n in iter_nodes(tree) if isinstance(n, Leaf))


def tree_depth(tree: Tree) -> int:
    if isinstance(tree, Leaf):
        return 0
    return 1 + max(tree_depth(tree.left), tree_depth(tree.right))


def sequential_reduce(tree: Tree, fn: Callable[[Any, Any, Any], Any]) -> Any:
    """Reference fold: ``fn(op, left_value, right_value)`` bottom-up.

    Iterative (explicit stack) so arbitrarily deep trees don't hit the
    Python recursion limit.
    """
    # Post-order with an explicit stack of (node, visited) frames.
    out: list[Any] = []
    stack: list[tuple[Tree, bool]] = [(tree, False)]
    while stack:
        node, visited = stack.pop()
        if isinstance(node, Leaf):
            out.append(node.value)
        elif visited:
            rv = out.pop()
            lv = out.pop()
            out.append(fn(node.op, lv, rv))
        else:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))
    (result,) = out
    return result


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def balanced_tree(depth: int, op_fn: Callable[[random.Random], Any],
                  leaf_fn: Callable[[random.Random], Any],
                  rng: random.Random | None = None) -> Tree:
    """A complete binary tree of the given depth."""
    rng = rng or random.Random(0)

    def build(d: int) -> Tree:
        if d == 0:
            return Leaf(leaf_fn(rng))
        return Node(op_fn(rng), build(d - 1), build(d - 1))

    return build(depth)


def random_tree(leaves: int, op_fn: Callable[[random.Random], Any],
                leaf_fn: Callable[[random.Random], Any],
                rng: random.Random | None = None) -> Tree:
    """A random binary tree with exactly ``leaves`` leaves (random splits,
    like a random phylogeny)."""
    if leaves < 1:
        raise ReproError("a tree needs at least one leaf")
    rng = rng or random.Random(0)

    def build(n: int) -> Tree:
        if n == 1:
            return Leaf(leaf_fn(rng))
        k = rng.randint(1, n - 1)
        return Node(op_fn(rng), build(k), build(n - k))

    return build(leaves)


def skewed_tree(leaves: int, op_fn: Callable[[random.Random], Any],
                leaf_fn: Callable[[random.Random], Any],
                rng: random.Random | None = None) -> Tree:
    """A maximally unbalanced (left-spine) tree — the worst case for static
    partitioning."""
    rng = rng or random.Random(0)
    tree: Tree = Leaf(leaf_fn(rng))
    for _ in range(leaves - 1):
        tree = Node(op_fn(rng), tree, Leaf(leaf_fn(rng)))
    return tree


# ---------------------------------------------------------------------------
# Tree-Reduce-2 preprocessing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TableEntry:
    """One row of the flat node table (Python view, mostly for tests)."""

    kind: str  # 'leaf' | 'op'
    payload: Any  # leaf data or operator
    parent: int  # parent identifier, -1 at the root
    parent_label: int  # processor evaluating the parent, 0 at the root
    side: str  # 'left' | 'right' | 'none'
    label: int  # processor evaluating THIS node (leaves: where its value starts)


def label_table(tree: Tree, processors: int,
                rng: random.Random | None = None) -> tuple[list[TableEntry], Term]:
    """Assign identifiers and processor labels (paper §3.5) and build the
    table term for Tree-Reduce-2.

    Labeling rules: leaves get random processor labels, with sibling leaf
    pairs sharing one label; an internal node is labeled with its left
    child's label.  Each entry carries its parent's identifier and label so
    the value message can be routed.

    Returns ``(python_entries, table_term)``.  Raises for a single-leaf
    tree (there is nothing to evaluate; callers handle it directly).
    """
    if isinstance(tree, Leaf):
        raise ReproError("label_table: single-leaf tree has no evaluations")
    if processors < 1:
        raise ReproError("label_table: need at least one processor")
    rng = rng or random.Random(0)

    ids: dict[int, int] = {}
    order: list[Tree] = []

    def number(node: Tree) -> None:
        stack = [node]
        while stack:
            n = stack.pop()
            ids[id(n)] = len(order) + 1
            order.append(n)
            if isinstance(n, Node):
                stack.append(n.right)
                stack.append(n.left)

    number(tree)

    labels: dict[int, int] = {}

    def label_of(node: Tree) -> int:
        """Compute (and cache) the node's label, assigning leaf labels with
        the sibling-sharing rule."""
        key = id(node)
        if key in labels:
            return labels[key]
        assert isinstance(node, Node), "leaf labels are assigned by their parent"
        left, right = node.left, node.right
        if isinstance(left, Leaf):
            left_label = rng.randint(1, processors)
            labels[id(left)] = left_label
        else:
            left_label = label_of(left)
        if isinstance(right, Leaf):
            # Sibling leaves share a label; a leaf with an internal sibling
            # joins it (keeping the parent's evaluation fully local).
            labels[id(right)] = left_label
        else:
            label_of(right)
        labels[key] = left_label
        return left_label

    # Iterative driver to avoid recursion limits on deep trees.
    post: list[Node] = [n for n in order if isinstance(n, Node)]
    for node in reversed(post):  # children before parents in `order` reversal
        label_of(node)

    parents: dict[int, tuple[int, int, str]] = {ids[id(tree)]: (-1, 0, "none")}
    for node in order:
        if isinstance(node, Node):
            nid = ids[id(node)]
            nlabel = labels[id(node)]
            parents[ids[id(node.left)]] = (nid, nlabel, "left")
            parents[ids[id(node.right)]] = (nid, nlabel, "right")

    entries: list[TableEntry] = []
    for node in order:
        nid = ids[id(node)]
        parent, parent_label, side = parents[nid]
        if isinstance(node, Leaf):
            entries.append(
                TableEntry("leaf", node.value, parent, parent_label, side,
                           labels[id(node)])
            )
        else:
            entries.append(
                TableEntry("op", node.op, parent, parent_label, side,
                           labels[id(node)])
            )
    slots: list[Term] = []
    for entry in entries:
        payload = entry.payload
        if isinstance(payload, str):
            payload_term: Term = Atom(payload)
        else:
            payload_term = from_python(payload)
        side_atom = Atom(entry.side)
        functor = "leaf" if entry.kind == "leaf" else "op"
        slots.append(
            Struct(functor, (payload_term, entry.parent, entry.parent_label, side_atom))
        )
    return entries, Tup(slots)
