"""N-queens as a search-motif workload (or-parallel search, §1/§4).

A search node is a flat list ``[n, c1, ..., ck]``: board size plus the
column of the queen in each of the first ``k`` rows.  ``expand`` yields the
safe one-row extensions; a node is a solution when all ``n`` rows are
placed.
"""

from __future__ import annotations

from repro.strand.foreign import ForeignRegistry

__all__ = [
    "root_node",
    "expand",
    "solution",
    "count_solutions_sequential",
    "register_queens",
    "KNOWN_COUNTS",
]

#: Reference solution counts for validation.
KNOWN_COUNTS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352}


def root_node(n: int) -> list[int]:
    """The empty board for an ``n x n`` problem."""
    return [n]


def _safe(cols: list[int], col: int) -> bool:
    row = len(cols)
    for r, c in enumerate(cols):
        if c == col or abs(c - col) == row - r:
            return False
    return True


def expand(node: list[int]) -> list[list[int]]:
    """Children of a node: all safe placements in the next row."""
    n, cols = node[0], node[1:]
    if len(cols) >= n:
        return []
    return [[n, *cols, col] for col in range(n) if _safe(cols, col)]


def solution(node: list[int]) -> int:
    """1 if the node is a complete placement, else 0."""
    n, cols = node[0], node[1:]
    return 1 if len(cols) == n else 0


def count_solutions_sequential(n: int) -> int:
    """Reference sequential count (explicit stack)."""
    count = 0
    stack = [root_node(n)]
    while stack:
        node = stack.pop()
        count += solution(node)
        stack.extend(expand(node))
    return count


def register_queens(registry: ForeignRegistry, cost: float = 2.0) -> None:
    """Register ``expand/2`` and ``sol/2`` for the search motif.

    ``expand``'s cost grows with the prefix length (checking safety of up
    to ``n`` columns against ``k`` placed queens).
    """
    registry.register(
        "expand", 2, expand, cost=lambda node: cost + 0.2 * len(node) * node[0]
    )
    registry.register("sol", 2, solution, cost=1.0)
