"""Bag-of-tasks workloads for the scheduler motif (§1, [2,5]).

The Schedule-package model: independent tasks whose inputs are ready at
submission time; the scheduler's job is purely load balancing.  ``main``
generates ``T`` tasks and folds their results; each ``work(I, O)`` is a
foreign call with a configurable (possibly skewed) cost.
"""

from __future__ import annotations

import zlib

from repro.strand.foreign import ForeignRegistry

__all__ = ["TASKBAG_SOURCE", "work", "expected_sum", "register_taskbag", "skewed_cost"]

TASKBAG_SOURCE = """
% main(T, Sum): run T independent tasks, summing their outputs.
main(T, Sum) :- gen(T, Sum).
gen(N, Sum) :- N > 0 |
    work(N, O) @ task,
    N1 := N - 1,
    gen(N1, Sum1),
    Sum := O + Sum1.
gen(0, Sum) :- Sum := 0.
"""


def work(i: int) -> int:
    """The task body: a deterministic function of the task index."""
    return i * i


def expected_sum(tasks: int) -> int:
    return sum(work(i) for i in range(1, tasks + 1))


def skewed_cost(base: float = 8.0, spike: float = 120.0,
                spike_probability: float = 0.15, seed: int = 0):
    """Schedule-independent skewed task costs (hash of the task index)."""
    threshold = int(spike_probability * 1_000_000)

    def model(i: int) -> float:
        h = zlib.crc32(f"{i}|{seed}".encode()) % 1_000_000
        return spike if h < threshold else base

    return model


def register_taskbag(registry: ForeignRegistry, cost=10.0) -> None:
    """Register ``work/2``; ``cost`` is a number or ``fn(i) -> float``."""
    registry.register("work", 2, work, cost=cost)
