"""The motif abstraction — the paper's primary contribution.

A motif is a pair ``M = (T, L)`` of a source-to-source transformation and a
library program; applying it to an application ``A`` yields the program

    M(A) = T(A) ∪ L .

Because the output is itself a program, motifs compose:

    (M₂ ∘ M₁)(A) = M₂(M₁(A)) = T₂( T₁(A) ∪ L₁ ) ∪ L₂ .

Beyond the pair, a :class:`Motif` carries the *runtime metadata* an engine
needs to execute its output faithfully: which procedures are perpetual
services (so quiescence detection can close their ports), which foreign
procedures its library expects, and which query shape starts a computation.

Caching
-------
Motif application sits on the hot path of every run (``reduce_tree`` builds
a fresh stack per call), so this layer memoizes at two levels:

* **library parsing** — :func:`library_from_source` parses each distinct
  library source once per process;
* **motif outputs** — ``Motif.apply`` caches the transformed-and-linked
  result keyed by the *identity and version* of the input program, so
  re-applying a (composed) stack to the same application re-uses the same
  output :class:`Program` object — which in turn lets the engine's
  compile-layer cache (:func:`repro.strand.compile.compile_program`) hit.

Transformations are pure (they never mutate their input), so sharing cached
programs is safe; callers receive a :meth:`AppliedMotif.fork` so appending
foreign hooks or user names never pollutes the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import MotifError
from repro.strand.foreign import ForeignRegistry
from repro.strand.parser import parse_program
from repro.strand.program import Program, rule_key
from repro.transform.transformation import Identity, Transformation

__all__ = [
    "Motif",
    "ComposedMotif",
    "AppliedMotif",
    "library_from_source",
    "MOTIF_STATS",
    "reset_motif_stats",
]

#: Process-wide counters observable by tests and benchmarks.
MOTIF_STATS = {
    "library_parses": 0,
    "library_hits": 0,
    "apply_calls": 0,
    "apply_hits": 0,
}

_LIBRARY_CACHE: dict[tuple[str, str], Program] = {}


def reset_motif_stats() -> None:
    for key in MOTIF_STATS:
        MOTIF_STATS[key] = 0


def library_from_source(source: str, name: str) -> Program:
    """Parse a library program from Strand source text (memoized: each
    distinct ``(name, source)`` pair is parsed once per process)."""
    key = (name, source)
    cached = _LIBRARY_CACHE.get(key)
    if cached is not None:
        MOTIF_STATS["library_hits"] += 1
        return cached
    MOTIF_STATS["library_parses"] += 1
    program = parse_program(source, name=name)
    _LIBRARY_CACHE[key] = program
    return program


@dataclass
class AppliedMotif:
    """The result of applying a motif (stack) to an application.

    Carries everything needed to run the program: the program itself, the
    service indicators for quiescence handling, the foreign setup hooks,
    and the *library indicator set* — every procedure the user did not
    write — used for the overhead split of experiment E8.
    """

    program: Program
    services: set[tuple[str, int]] = field(default_factory=set)
    foreign_setup: list[Callable[[ForeignRegistry], None]] = field(default_factory=list)
    user_names: set[str] = field(default_factory=set)

    @property
    def library_indicators(self) -> set[tuple[str, int]]:
        return {
            ind for ind in self.program.indicators if ind[0] not in self.user_names
        }

    def fork(self) -> "AppliedMotif":
        """A caller-owned copy sharing the (immutable-by-convention) program
        but with private metadata containers, so appending foreign hooks or
        user names never pollutes a cached application result."""
        return AppliedMotif(
            program=self.program,
            services=set(self.services),
            foreign_setup=list(self.foreign_setup),
            user_names=set(self.user_names),
        )

    def make_foreign(self, base: ForeignRegistry | None = None) -> ForeignRegistry:
        registry = base.copy() if base is not None else ForeignRegistry()
        for setup in self.foreign_setup:
            setup(registry)
        return registry


class Motif:
    """A named ``(transformation, library)`` pair plus runtime metadata.

    Parameters
    ----------
    name:
        Human-readable motif name (``"server"``, ``"tree-reduce-1"``, …).
    transformation:
        The ``T`` of the pair; defaults to the identity (a "library-only"
        motif like the paper's ``Tree1``).
    library:
        The ``L`` of the pair: a :class:`Program` or Strand source text;
        defaults to the empty library (a "transformation-only" motif like
        the paper's ``Rand``).
    services:
        Indicators of perpetual service processes introduced by this motif.
    foreign_setup:
        Hook called with the foreign registry before running, to register
        Python procedures the library depends on.
    """

    def __init__(
        self,
        name: str,
        transformation: Transformation | None = None,
        library: Program | str | None = None,
        *,
        services: Iterable[tuple[str, int]] = (),
        foreign_setup: Callable[[ForeignRegistry], None] | None = None,
    ):
        self.name = name
        self.transformation = transformation or Identity()
        if library is None:
            library = Program(name=f"{name}-library")
        elif isinstance(library, str):
            library = library_from_source(library, name=f"{name}-library")
        self.library = library
        # Provenance: library rules belong to this motif layer.  Stamping is
        # idempotent (``motif`` survives copies), so re-stamping a cached
        # shared library program is safe.
        for rule in library.rules():
            if rule.motif is None:
                rule.motif = name
        self.services = set(services)
        self.foreign_setup = foreign_setup
        # Application memo: (id(input), program version) -> canonical
        # AppliedMotif.  ``_apply_pins`` holds strong references to the
        # keyed inputs so ids are never recycled under the cache.
        self._apply_cache: dict[tuple[int, int], AppliedMotif] = {}
        self._apply_pins: list[Program | AppliedMotif] = []

    # -- application ---------------------------------------------------------
    def apply(self, application: Program | AppliedMotif) -> AppliedMotif:
        """``M(A) = T(A) ∪ L`` with metadata accumulation.

        Memoized on the identity (and version) of ``application``: applying
        the same motif to the same program twice performs the
        transformation, linking, and library parsing once.  The returned
        :class:`AppliedMotif` is a fork, safe for the caller to extend.
        """
        return self._apply_cached(application).fork()

    def _apply_cached(self, application: Program | AppliedMotif) -> AppliedMotif:
        """The canonical (shared, do-not-mutate) application result."""
        MOTIF_STATS["apply_calls"] += 1
        program = (
            application.program
            if isinstance(application, AppliedMotif)
            else application
        )
        key = (id(application), program.version)
        hit = self._apply_cache.get(key)
        if hit is not None:
            MOTIF_STATS["apply_hits"] += 1
            return hit
        result = self._apply_impl(application)
        self._apply_cache[key] = result
        self._apply_pins.append(application)
        return result

    def _apply_impl(self, application: Program | AppliedMotif) -> AppliedMotif:
        if isinstance(application, Program):
            applied = AppliedMotif(
                program=application,
                user_names={ind[0] for ind in application.indicators},
            )
        else:
            applied = application
        transformed = self.transformation.apply(applied.program)
        if type(self.transformation) is not Identity:
            # Provenance: any output rule that is not (structurally) one of
            # the input rules was rewritten or generated by this motif's
            # transformation — stamp it.  Rules the transformation passed
            # through keep their existing tag (``rename`` preserves it).
            before = {rule_key(r) for r in applied.program.rules()}
            for rule in transformed.rules():
                if rule.motif is None and rule_key(rule) not in before:
                    rule.motif = self.name
        try:
            program = transformed.union(self.library, name=f"{self.name}({applied.program.name})")
        except MotifError as e:
            raise MotifError(f"applying motif {self.name!r}: {e}") from e
        return AppliedMotif(
            program=program,
            services=applied.services | self.services,
            foreign_setup=list(applied.foreign_setup)
            + ([self.foreign_setup] if self.foreign_setup else []),
            user_names=applied.user_names,
        )

    def __call__(self, application: Program | AppliedMotif) -> AppliedMotif:
        return self.apply(application)

    # -- composition -----------------------------------------------------
    def compose(self, inner: "Motif") -> "ComposedMotif":
        """``self ∘ inner`` — inner applied first (paper §2.2 ordering)."""
        return ComposedMotif([inner, self])

    def __matmul__(self, inner: "Motif") -> "ComposedMotif":
        """``outer @ inner`` spells ``outer ∘ inner``."""
        return self.compose(inner)

    def stages(self) -> list["Motif"]:
        return [self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Motif {self.name}>"


class ComposedMotif(Motif):
    """A composition pipeline ``Mn ∘ … ∘ M₁`` (stored innermost first)."""

    def __init__(self, pipeline: Sequence[Motif]):
        flat: list[Motif] = []
        for motif in pipeline:
            flat.extend(motif.stages())
        if not flat:
            raise MotifError("cannot compose an empty motif pipeline")
        name = " ∘ ".join(m.name for m in reversed(flat))
        super().__init__(name=name)
        self.pipeline = flat

    def _apply_impl(self, application: Program | AppliedMotif) -> AppliedMotif:
        applied = application
        for motif in self.pipeline:
            # Chain through the canonical results so each stage's memo is
            # keyed on a stable object identity across repeated applies.
            applied = motif._apply_cached(applied)
        return applied

    def apply_staged(self, application: Program) -> list[AppliedMotif]:
        """Every intermediate program of the composition — Figure 5's
        "three stages" view, used by experiment E2."""
        stages: list[AppliedMotif] = []
        applied: Program | AppliedMotif = application
        for motif in self.pipeline:
            applied = motif._apply_cached(applied)
            stages.append(applied.fork())
        return stages

    def compose(self, inner: "Motif") -> "ComposedMotif":
        return ComposedMotif([*inner.stages(), *self.pipeline])

    def stages(self) -> list[Motif]:
        return list(self.pipeline)
