"""Source-level pragmas.

A pragma is an ``@`` annotation with no engine semantics — it exists to be
erased by a transformation (the paper's ``@ random``).  Placements onto
*numeric* processor expressions (``@ J``) are a language feature, not a
pragma, and run directly.
"""

from __future__ import annotations

from repro.strand.terms import Atom, Struct, Term, deref
from repro.transform.rewrite import strip_placement

__all__ = ["RANDOM", "TASK", "annotate", "is_pragma_goal", "pragma_name"]

#: ``Goal @ random`` — dispatch to a randomly selected processor (§3.3).
RANDOM = Atom("random")

#: ``Goal @ task`` — hand the goal to the scheduler motif as a task ([6]).
TASK = Atom("task")


def annotate(goal: Struct, pragma: Atom) -> Struct:
    """Attach a pragma: ``annotate(g, RANDOM)`` builds ``g @ random``."""
    return Struct("@", (goal, pragma))


def is_pragma_goal(goal: Term, pragma: Atom | None = None) -> bool:
    """True if the goal carries a (specific) pragma annotation."""
    _, where = strip_placement(goal)
    if where is None:
        return False
    where = deref(where)
    if type(where) is not Atom:
        return False
    return pragma is None or where is pragma


def pragma_name(goal: Term) -> str | None:
    """The pragma atom's name, or None for plain/numeric placements."""
    _, where = strip_placement(goal)
    if where is None:
        return None
    where = deref(where)
    return where.name if type(where) is Atom else None
