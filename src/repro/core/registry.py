"""A named registry of motif factories.

The paper envisions "libraries implementing motifs [as] archives of
expertise that can be consulted, modified, and extended".  The registry is
the consultation surface: motifs register under a name, and callers build
configured instances with keyword parameters.
"""

from __future__ import annotations

from typing import Callable

from repro.core.motif import Motif
from repro.errors import MotifError

__all__ = ["MotifRegistry", "default_registry", "get_motif", "register_motif"]


class MotifRegistry:
    """Name → motif-factory mapping."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Motif]] = {}

    def register(self, name: str, factory: Callable[..., Motif]) -> None:
        if name in self._factories:
            raise MotifError(f"motif {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str, **params) -> Motif:
        factory = self._factories.get(name)
        if factory is None:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise MotifError(f"unknown motif {name!r}; known motifs: {known}")
        return factory(**params)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


_default = MotifRegistry()


def default_registry() -> MotifRegistry:
    """The process-wide registry, pre-populated with the paper's motifs and
    the future-work extensions on first use."""
    if not _default.names():
        _populate(_default)
    return _default


def register_motif(name: str, factory: Callable[..., Motif]) -> None:
    default_registry().register(name, factory)


def get_motif(name: str, **params) -> Motif:
    return default_registry().create(name, **params)


def _populate(registry: MotifRegistry) -> None:
    from repro.motifs.random_map import rand_motif, random_motif
    from repro.motifs.server import server_motif
    from repro.motifs.termination import short_circuit_motif
    from repro.motifs.tree_reduce1 import (
        sequential_tree_motif,
        static_tree_motif,
        tree1_motif,
        tree_reduce_1,
    )
    from repro.motifs.reliable import reliable_motif, reliable_tree_reduce
    from repro.motifs.supervisor import supervise_motif, supervised_tree_reduce
    from repro.motifs.tree_reduce2 import tree_reduce_2, tree_reduce_motif

    registry.register("server", server_motif)
    registry.register("supervise", supervise_motif)
    registry.register("supervised-tree-reduce", supervised_tree_reduce)
    registry.register("rand", rand_motif)
    registry.register("random", random_motif)
    registry.register("reliable", reliable_motif)
    registry.register("reliable-tree-reduce", reliable_tree_reduce)
    registry.register("termination", short_circuit_motif)
    registry.register("tree1", tree1_motif)
    registry.register("tree-reduce-1", tree_reduce_1)
    registry.register("tree-reduce", tree_reduce_motif)
    registry.register("tree-reduce-2", tree_reduce_2)
    registry.register("static-tree", static_tree_motif)
    registry.register("sequential-tree", sequential_tree_motif)
    # Extension motifs (paper §4 future work) register lazily to avoid
    # import cycles; they are added by repro.motifs.__init__.
    try:
        from repro.motifs import extensions

        extensions.register_all(registry)
    except ImportError:
        pass
