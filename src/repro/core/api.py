"""High-level API: apply motif stacks and run them on a virtual machine.

This is the layer a downstream user touches first::

    from repro import reduce_tree
    from repro.apps.arithmetic import paper_example_tree, eval_arith_node

    result = reduce_tree(paper_example_tree(), eval_arith_node,
                         processors=4, strategy="tr1")
    assert result.value == 24

``reduce_tree`` accepts the node evaluator either as Strand source text
(rules for ``eval/4``) or as a Python callable ``fn(op, lv, rv) -> value``
registered as the foreign procedure ``eval/4`` — the paper's multilingual
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable

from repro.core.motif import AppliedMotif, Motif, library_from_source
from repro.errors import ReproError
from repro.machine.metrics import MachineMetrics
from repro.machine.simulator import Machine
from repro.motifs.tree_reduce1 import (
    sequential_tree_motif,
    static_tree_motif,
    tree_reduce_1,
)
from repro.motifs.tree_reduce2 import tree_reduce_2
from repro.apps import trees
from repro.strand.engine import StrandEngine
from repro.strand.foreign import ForeignRegistry, to_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Term, Var, deref

__all__ = [
    "RunResult",
    "run_applied",
    "reduce_tree",
    "reliable_reduce_tree",
    "supervised_reduce_tree",
    "TREE_STRATEGIES",
    "as_application",
]

#: Tree-reduction strategies offered by :func:`reduce_tree`.
TREE_STRATEGIES = ("tr1", "tr2", "static", "sequential")


@dataclass
class RunResult:
    """Outcome of a motif-stack run."""

    value: Any
    metrics: MachineMetrics
    bindings: dict[str, Term]
    engine: StrandEngine
    applied: AppliedMotif


# Motif stacks are stateless apart from their application memo, so one
# instance per parameterization lets repeated ``reduce_tree`` calls share
# parsed libraries, applied programs, and (transitively) compiled programs.
#
# The caches are *bounded*: each cached stack pins its applied programs and
# compiled rule plans, so an unbounded cache in a long-lived process (a
# notebook sweeping parameters, a benchmark harness) grows without limit.
# The bounds are sized generously above any realistic number of concurrent
# parameterizations — eviction only re-pays one stack construction.
_STACK_CACHE_SIZE = 32  # distinct (server_library, …) parameterizations
_APPLICATION_CACHE_SIZE = 256  # distinct application names


@lru_cache(maxsize=_STACK_CACHE_SIZE)
def _tr1_stack(server_library: str, termination: bool) -> Motif:
    return tree_reduce_1(server_library=server_library, termination=termination)


@lru_cache(maxsize=_STACK_CACHE_SIZE)
def _tr2_stack(server_library: str) -> Motif:
    return tree_reduce_2(server_library=server_library)


@lru_cache(maxsize=_STACK_CACHE_SIZE)
def _static_stack() -> Motif:
    return static_tree_motif()


@lru_cache(maxsize=_STACK_CACHE_SIZE)
def _sequential_stack() -> Motif:
    return sequential_tree_motif()


@lru_cache(maxsize=_STACK_CACHE_SIZE)
def _supervised_stack(
    retries: int, timeout: float, backoff: int, fallback: str,
    server_library: str,
) -> Motif:
    from repro.motifs.supervisor import supervised_tree_reduce

    return supervised_tree_reduce(
        retries=retries, timeout=timeout, backoff=backoff,
        fallback=fallback, server_library=server_library,
    )


@lru_cache(maxsize=_STACK_CACHE_SIZE)
def _reliable_stack(
    retries: int, timeout: float, backoff: int, max_timeout: float,
    supervise: bool, sup_retries: int, sup_timeout: float,
    fallback: str, server_library: str,
) -> Motif:
    from repro.motifs.reliable import reliable_tree_reduce

    return reliable_tree_reduce(
        retries=retries, timeout=timeout, backoff=backoff,
        max_timeout=max_timeout, supervise=supervise,
        sup_retries=sup_retries, sup_timeout=sup_timeout,
        fallback=fallback, server_library=server_library,
    )


@lru_cache(maxsize=_APPLICATION_CACHE_SIZE)
def _empty_application(name: str) -> Program:
    """A shared, never-mutated empty application program.  One object per
    name keeps motif-application caches keyed on a stable identity across
    ``reduce_tree`` calls with Python-callable evaluators."""
    return Program(name=name)


def as_application(evaluator: str | Callable | Program, name: str = "application",
                   cost: float | Callable[..., float] = 1.0
                   ) -> tuple[Program, Callable[[ForeignRegistry], None] | None]:
    """Normalize a user-supplied node evaluator into ``(program, foreign_setup)``.

    * Strand source / :class:`Program` → the application program itself
      (source text is parsed once per process; transformations never
      mutate their input, so the program object is shared);
    * Python callable → a shared empty application plus a hook registering
      it as the foreign procedure ``eval/4`` with the given cost model.
    """
    if isinstance(evaluator, Program):
        return evaluator, None
    if isinstance(evaluator, str):
        return library_from_source(evaluator, name=name), None
    if callable(evaluator):
        fn = evaluator

        def setup(registry: ForeignRegistry) -> None:
            registry.register("eval", 4, fn, cost=cost)

        return _empty_application(name), setup
    raise ReproError(f"cannot use {evaluator!r} as a node evaluator")


def run_applied(
    applied: AppliedMotif,
    goals: Iterable[Term] | Term,
    machine: Machine | None = None,
    *,
    watched: Iterable[tuple[str, int]] = (),
    foreign: ForeignRegistry | None = None,
    max_reductions: int = 5_000_000,
    **engine_options: Any,
) -> tuple[StrandEngine, MachineMetrics]:
    """Run already-constructed goal terms against an applied motif stack."""
    engine = StrandEngine(
        applied.program,
        machine=machine,
        foreign=applied.make_foreign(foreign),
        watched=watched,
        library=applied.library_indicators,
        services=applied.services,
        max_reductions=max_reductions,
        **engine_options,
    )
    if isinstance(goals, (Struct,)):
        goals = [goals]
    for goal in goals:
        engine.spawn(goal, proc=1, ready=0.0)
    metrics = engine.run()
    return engine, metrics


def reduce_tree(
    tree: trees.Tree,
    evaluator: str | Callable | Program,
    *,
    processors: int = 4,
    strategy: str = "tr1",
    machine: Machine | None = None,
    seed: int = 0,
    topology: str | None = None,
    backend: str = "sequential",
    workers: int | None = None,
    epoch_window: float | None = None,
    server_library: str = "ports",
    termination: bool = True,
    eval_cost: float | Callable[..., float] = 1.0,
    watch_eval: bool = True,
    max_reductions: int = 5_000_000,
    **engine_options: Any,
) -> RunResult:
    """Reduce a binary tree with a chosen motif strategy.

    Parameters mirror the paper's design space: ``strategy`` is one of

    * ``"tr1"``        — Tree-Reduce-1 (Server ∘ Rand ∘ Tree1, §3.4)
    * ``"tr2"``        — Tree-Reduce-2 (Server ∘ TreeReduce, §3.5)
    * ``"static"``     — static partition (§3.1)
    * ``"sequential"`` — single-processor fold (baseline)

    ``backend="parallel"`` shards the virtual processors across ``workers``
    OS processes (see :mod:`repro.machine.parallel`); evaluators must then
    be Strand source or a :class:`Program` — Python callables cannot be
    shipped to worker processes.  ``backend``/``workers``/``epoch_window``
    are ignored when an explicit ``machine`` is passed (configure it there
    instead).
    """
    if strategy not in TREE_STRATEGIES:
        raise ReproError(f"unknown strategy {strategy!r}; choose from {TREE_STRATEGIES}")
    if machine is None:
        machine = Machine(
            1 if strategy == "sequential" else processors,
            topology=topology,
            seed=seed,
            backend=backend,
            workers=workers if backend == "parallel" else None,
            epoch_window=epoch_window,
        )
    application, setup = as_application(evaluator, cost=eval_cost)

    # Single-leaf trees have no evaluations; answer directly but uniformly.
    if isinstance(tree, trees.Leaf):
        applied = AppliedMotif(program=application)
        engine = StrandEngine(application, machine=machine)
        return RunResult(tree.value, machine.metrics(), {}, engine, applied)

    value_var = Var("Value")
    watched = [("eval", 4)] if watch_eval else []

    if strategy == "tr1":
        motif = _tr1_stack(server_library, termination)
        applied = motif.apply(application)
        if termination:
            inner = Struct("boot", (trees.tree_term(tree), value_var, Var("Done")))
        else:
            inner = Struct("reduce", (trees.tree_term(tree), value_var))
        goal: Term = Struct("create", (machine.size, inner))
    elif strategy == "tr2":
        motif = _tr2_stack(server_library)
        applied = motif.apply(application)
        import random as _random

        # Labelling must be a function of the *machine's* seed, not the
        # ``seed`` parameter (which is ignored when a machine is passed in),
        # or two runs on the same machine could label differently.
        _entries, table = trees.label_table(
            tree, machine.size, _random.Random(machine.seed + 0x5EED)
        )
        goal = Struct("create", (machine.size, Struct("init", (table, value_var))))
    elif strategy == "static":
        motif = _static_stack()
        applied = motif.apply(application)
        goal = Struct("sreduce", (trees.tree_term(tree), value_var, 1, machine.size))
    else:  # sequential
        motif = _sequential_stack()
        applied = motif.apply(application)
        goal = Struct("reduce_seq", (trees.tree_term(tree), value_var))

    if setup is not None:
        applied.foreign_setup.append(setup)
        applied.user_names.add("eval")

    engine, metrics = run_applied(
        applied, goal, machine, watched=watched,
        max_reductions=max_reductions, **engine_options,
    )
    value = deref(value_var)
    if type(value) is Var:
        raise ReproError(
            f"tree reduction under {strategy!r} finished without binding the result"
        )
    return RunResult(to_python(value), metrics, {"Value": value_var}, engine, applied)


def reliable_reduce_tree(
    tree: trees.Tree,
    evaluator: str | Callable | Program,
    *,
    processors: int = 4,
    machine: Machine | None = None,
    seed: int = 0,
    topology: str | None = None,
    retries: int = 6,
    timeout: float = 30.0,
    backoff: int = 2,
    max_timeout: float = 240.0,
    supervise: bool = False,
    sup_retries: int = 3,
    sup_timeout: float = 600.0,
    fallback: str = "0",
    server_library: str = "ports",
    eval_cost: float | Callable[..., float] = 1.0,
    max_reductions: int = 5_000_000,
    **engine_options: Any,
) -> RunResult:
    """Reduce a binary tree under the Reliable delivery stack
    (``Server ∘ Reliable ∘ Rand ∘ Tree1``), optionally with the Supervise
    layer between Rand and Tree1 (``supervise=True``).

    Pass a :class:`Machine` built with a lossy
    :class:`~repro.machine.faults.FaultPlan` (message drops, duplicates,
    partitions) to exercise the protocol; the result's ``metrics`` then
    carry the reliability counters (retransmits, acks, duplicates
    suppressed, unreachable reports), and destinations the protocol gave
    up on are listed in ``result.engine.rel_state.unreachable``.  The
    supervised variant runs with ``abandon_stragglers=True``: attempts
    superseded by a Supervise retry may be permanently stranded by message
    loss, and are abandoned at quiescence rather than reported as a
    deadlock.
    """
    if machine is None:
        machine = Machine(processors, topology=topology, seed=seed)
    application, setup = as_application(evaluator, cost=eval_cost)
    if isinstance(tree, trees.Leaf):
        applied = AppliedMotif(program=application)
        engine = StrandEngine(application, machine=machine)
        return RunResult(tree.value, machine.metrics(), {}, engine, applied)
    motif = _reliable_stack(
        retries, timeout, backoff, max_timeout,
        supervise, sup_retries, sup_timeout, fallback, server_library,
    )
    applied = motif.apply(application)
    if setup is not None:
        applied.foreign_setup.append(setup)
        applied.user_names.add("eval")
    value_var = Var("Value")
    entry = "sup_run" if supervise else "reduce"
    goal = Struct(
        "create",
        (machine.size, Struct(entry, (trees.tree_term(tree), value_var))),
    )
    engine, metrics = run_applied(
        applied, goal, machine, watched=[("eval", 4)],
        max_reductions=max_reductions,
        abandon_stragglers=supervise,
        **engine_options,
    )
    value = deref(value_var)
    if type(value) is Var:
        raise ReproError(
            "reliable tree reduction finished without binding the result "
            "(destination permanently unreachable? check "
            "engine.rel_state.unreachable)"
        )
    return RunResult(to_python(value), metrics, {"Value": value_var}, engine, applied)


def supervised_reduce_tree(
    tree: trees.Tree,
    evaluator: str | Callable | Program,
    *,
    processors: int = 4,
    machine: Machine | None = None,
    seed: int = 0,
    topology: str | None = None,
    retries: int = 3,
    timeout: float = 600.0,
    backoff: int = 2,
    fallback: str = "0",
    server_library: str = "ports",
    eval_cost: float | Callable[..., float] = 1.0,
    max_reductions: int = 5_000_000,
    **engine_options: Any,
) -> RunResult:
    """Reduce a binary tree under the Supervise motif stack
    (``Server ∘ Rand ∘ Supervise ∘ Tree1′``) — fault-tolerant Tree-Reduce-1.

    Pass a :class:`Machine` constructed with a
    :class:`~repro.machine.faults.FaultPlan` to run against injected
    processor crashes and message faults; the result's ``metrics`` then
    carry the fault and supervision counters.  ``timeout`` must exceed the
    fault-free completion time of the largest supervised subcomputation, or
    healthy attempts will be retried (and ultimately degraded to
    ``fallback``).
    """
    if machine is None:
        machine = Machine(processors, topology=topology, seed=seed)
    application, setup = as_application(evaluator, cost=eval_cost)
    if isinstance(tree, trees.Leaf):
        applied = AppliedMotif(program=application)
        engine = StrandEngine(application, machine=machine)
        return RunResult(tree.value, machine.metrics(), {}, engine, applied)
    motif = _supervised_stack(retries, timeout, backoff, fallback, server_library)
    applied = motif.apply(application)
    if setup is not None:
        applied.foreign_setup.append(setup)
        applied.user_names.add("eval")
    value_var = Var("Value")
    goal = Struct(
        "create",
        (machine.size, Struct("sup_run", (trees.tree_term(tree), value_var))),
    )
    engine, metrics = run_applied(
        applied, goal, machine, watched=[("eval", 4)],
        max_reductions=max_reductions,
        **engine_options,
    )
    value = deref(value_var)
    if type(value) is Var:
        raise ReproError(
            "supervised tree reduction finished without binding the result "
            "(was the supervision channel itself severed?)"
        )
    return RunResult(to_python(value), metrics, {"Value": value_var}, engine, applied)
