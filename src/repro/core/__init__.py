"""The paper's core contribution: motifs as (transformation, library) pairs
with composition, plus the high-level run API."""

from repro.core.api import (
    RunResult,
    TREE_STRATEGIES,
    as_application,
    reduce_tree,
    reliable_reduce_tree,
    run_applied,
    supervised_reduce_tree,
)
from repro.core.motif import AppliedMotif, ComposedMotif, Motif, library_from_source
from repro.core.pragmas import RANDOM, TASK, annotate, is_pragma_goal, pragma_name
from repro.core.registry import MotifRegistry, default_registry, get_motif, register_motif

__all__ = [
    "Motif",
    "ComposedMotif",
    "AppliedMotif",
    "library_from_source",
    "RunResult",
    "reduce_tree",
    "reliable_reduce_tree",
    "supervised_reduce_tree",
    "run_applied",
    "as_application",
    "TREE_STRATEGIES",
    "RANDOM",
    "TASK",
    "annotate",
    "is_pragma_goal",
    "pragma_name",
    "MotifRegistry",
    "default_registry",
    "get_motif",
    "register_motif",
]
