"""Analysis utilities: load-balance statistics, program-size accounting,
and the ASCII reporting used by every benchmark."""

from repro.analysis.complexity import ProgramSize, diff_generated, measure
from repro.analysis.loadbalance import LoadStats, load_stats
from repro.analysis.reporting import Table, banner, format_value

__all__ = [
    "ProgramSize",
    "measure",
    "diff_generated",
    "LoadStats",
    "load_stats",
    "Table",
    "banner",
    "format_value",
]
