"""Load-balance analysis helpers (experiment E3 and friends)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.metrics import (
    MachineMetrics,
    coefficient_of_variation,
    imbalance,
    jain_fairness,
)

__all__ = ["LoadStats", "load_stats"]


@dataclass(frozen=True)
class LoadStats:
    """Derived load figures for one run."""

    processors: int
    total_busy: float
    max_busy: float
    min_busy: float
    imbalance: float       # max/mean; 1.0 is perfect
    cv: float              # std/mean; 0.0 is perfect
    fairness: float        # Jain index; 1.0 is perfect
    efficiency: float      # busy / (P * makespan)


def load_stats(metrics: MachineMetrics) -> LoadStats:
    busy = metrics.busy
    return LoadStats(
        processors=metrics.processors,
        total_busy=sum(busy),
        max_busy=max(busy, default=0.0),
        min_busy=min(busy, default=0.0),
        imbalance=imbalance(busy),
        cv=coefficient_of_variation(busy),
        fairness=jain_fairness(busy),
        efficiency=metrics.efficiency,
    )
