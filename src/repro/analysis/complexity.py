"""Program-size accounting for the incremental-effort experiment (E7).

§3.6: "The first [tree reduction motif] is implemented with five lines of
code ... In contrast, the node evaluation code for the sequence alignment
application currently exceeds 2000 lines ... the use of motifs permits a
parallel version of our code to be developed with only a small incremental
effort."

We count *rules*, *body goals*, and *pretty-printed source lines* of (a)
the user-supplied application, (b) each motif stage's library, (c) the code
the transformations generate — quantifying the "small incremental effort".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.strand.compile import symbol_table
from repro.strand.pretty import format_program
from repro.strand.program import Program

__all__ = ["ProgramSize", "measure", "diff_generated"]


@dataclass(frozen=True)
class ProgramSize:
    """Size figures for one program (or program fragment)."""

    procedures: int
    rules: int
    goals: int
    lines: int

    def __add__(self, other: "ProgramSize") -> "ProgramSize":
        return ProgramSize(
            self.procedures + other.procedures,
            self.rules + other.rules,
            self.goals + other.goals,
            self.lines + other.lines,
        )


def measure(program: Program) -> ProgramSize:
    """Measure a whole program (rule/goal counts come from the shared
    interned symbol table, cached per program version)."""
    table = symbol_table(program)
    text = format_program(program)
    lines = [ln for ln in text.splitlines() if ln.strip() and not ln.strip().startswith("%")]
    return ProgramSize(
        procedures=len(table),
        rules=table.total_rules(),
        goals=table.total_goals(),
        lines=len(lines),
    )


def diff_generated(before: Program, after: Program) -> ProgramSize:
    """Size of what a transformation/link step *added or changed*: rules in
    ``after`` whose procedure is new, plus procedures whose rule text
    changed."""
    from repro.strand.pretty import format_rule

    before_text: dict[tuple[str, int], str] = {
        proc.indicator: "\n".join(format_rule(r) for r in proc.rules)
        for proc in before
    }
    added_procs = 0
    added_rules = 0
    added_goals = 0
    added_lines = 0
    for proc in after:
        text = "\n".join(format_rule(r) for r in proc.rules)
        if proc.indicator in before_text and before_text[proc.indicator] == text:
            continue
        added_procs += 1
        added_rules += len(proc.rules)
        added_goals += sum(len(r.guards) + len(r.body) for r in proc.rules)
        added_lines += len([ln for ln in text.splitlines() if ln.strip()])
    return ProgramSize(added_procs, added_rules, added_goals, added_lines)
