"""ASCII table/series rendering shared by all benchmark harnesses.

Every experiment prints its rows through :class:`Table` so the benchmark
output (``bench_output.txt``) reads like the paper's evaluation section
would have, had it printed numbers.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Table", "format_value", "banner", "metrics_table"]


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


class Table:
    """A fixed-column ASCII table with a title and optional note lines."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([format_value(v) for v in values])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"   {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


def banner(text: str) -> None:
    print()
    print("#" * 72)
    print(f"# {text}")
    print("#" * 72)


def metrics_table(metrics: Any, title: str = "machine metrics") -> Table:
    """Render a :class:`~repro.machine.metrics.MachineMetrics` snapshot —
    headline figures plus *every* fault/reliability/trace counter from
    ``metrics.counters()`` — as one table, so no counter is visible only in
    a benchmark's ad-hoc JSON."""
    table = Table(title, ["metric", "value"])
    table.add("processors", metrics.processors)
    table.add("makespan", metrics.makespan)
    table.add("total_busy", metrics.total_busy)
    table.add("efficiency", metrics.efficiency)
    table.add("imbalance", metrics.imbalance)
    table.add("reductions", metrics.reductions)
    table.add("suspensions", metrics.suspensions)
    table.add("messages", metrics.messages)
    for name, value in metrics.counters().items():
        table.add(name, value)
    if metrics.trace_dropped:
        table.note(
            f"trace truncated: {metrics.trace_dropped} event(s) dropped — "
            "trace-derived figures are lower bounds"
        )
    return table
