"""Virtual multicomputer substrate: topologies, latency model, processors,
metrics, and the :class:`~repro.machine.simulator.Machine` the Strand engine
runs on."""

from repro.machine.faults import FaultPlan, FaultStats, Partition
from repro.machine.metrics import MachineMetrics, coefficient_of_variation, imbalance, jain_fairness
from repro.machine.network import Network
from repro.machine.processor import VirtualProcessor
from repro.machine.simulator import Machine
from repro.machine.topology import (
    BinaryTreeTopology,
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    SharedMemory,
    Torus2D,
    Topology,
    topology_by_name,
)
from repro.machine.gantt import render_gantt
from repro.machine.trace import Trace, TraceEvent

__all__ = [
    "Machine",
    "MachineMetrics",
    "FaultPlan",
    "FaultStats",
    "Partition",
    "Network",
    "VirtualProcessor",
    "Topology",
    "FullyConnected",
    "SharedMemory",
    "Ring",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "BinaryTreeTopology",
    "topology_by_name",
    "Trace",
    "render_gantt",
    "TraceEvent",
    "imbalance",
    "jain_fairness",
    "coefficient_of_variation",
]
