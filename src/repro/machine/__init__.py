"""Virtual multicomputer substrate: topologies, latency model, processors,
metrics, and the :class:`~repro.machine.simulator.Machine` the Strand engine
runs on."""

from repro.machine.faults import FaultPlan, FaultStats, Partition
from repro.machine.metrics import MachineMetrics, coefficient_of_variation, imbalance, jain_fairness
from repro.machine.network import Network
from repro.machine.processor import VirtualProcessor
from repro.machine.simulator import Machine
from repro.machine.topology import (
    BinaryTreeTopology,
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    SharedMemory,
    Torus2D,
    Topology,
    topology_by_name,
)
from repro.machine.gantt import render_gantt
from repro.machine.parallel import run_parallel, shard_of
from repro.machine.profile import MotifProfile
from repro.machine.trace import Trace, TraceEvent
from repro.machine.tracefile import (
    TraceSink,
    read_jsonl,
    to_chrome,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "Machine",
    "MachineMetrics",
    "FaultPlan",
    "FaultStats",
    "Partition",
    "Network",
    "VirtualProcessor",
    "Topology",
    "FullyConnected",
    "SharedMemory",
    "Ring",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "BinaryTreeTopology",
    "topology_by_name",
    "Trace",
    "render_gantt",
    "run_parallel",
    "shard_of",
    "TraceEvent",
    "TraceSink",
    "MotifProfile",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "write_chrome",
    "imbalance",
    "jain_fairness",
    "coefficient_of_variation",
]
