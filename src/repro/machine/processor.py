"""Per-processor state for the virtual multicomputer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VirtualProcessor"]


@dataclass
class VirtualProcessor:
    """One virtual processor: a clock plus activity counters.

    The engine serializes execution per processor: each reduction advances
    ``clock`` by its cost.  ``busy`` accumulates only executed work, so
    ``busy / makespan`` is per-processor utilization and ``max(busy) /
    mean(busy)`` is the load-imbalance figure used by experiment E3.
    """

    number: int  # 1-based, as in the paper's rand_num(N, O) convention
    # Fail-stop state: a crashed processor executes nothing further and its
    # clock freezes at the crash time (so a crash never inflates makespan).
    alive: bool = True
    crashed_at: float | None = None
    clock: float = 0.0
    busy: float = 0.0
    reductions: int = 0
    suspensions: int = 0
    wakeups: int = 0
    spawns: int = 0
    sends: int = 0  # explicit messages (port sends, remote spawns)
    remote_bindings: int = 0  # cross-processor variable bindings
    hops: int = 0  # total hops of messages originated here

    # Watched-procedure accounting (experiment E4): number of live
    # (spawned but not yet reduced) watched processes, and its high-water.
    live_tasks: int = 0
    peak_live_tasks: int = 0
    tasks_started: int = 0

    # Live "resident values" (bound-but-unconsumed results; experiment E4).
    live_values: int = 0
    peak_live_values: int = 0

    def task_spawned(self) -> None:
        self.live_tasks += 1
        self.tasks_started += 1
        if self.live_tasks > self.peak_live_tasks:
            self.peak_live_tasks = self.live_tasks

    def task_finished(self) -> None:
        self.live_tasks -= 1

    def value_produced(self) -> None:
        self.live_values += 1
        if self.live_values > self.peak_live_values:
            self.peak_live_values = self.live_values

    def value_consumed(self) -> None:
        self.live_values -= 1
