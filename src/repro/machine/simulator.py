"""The virtual multicomputer: processors + network + clocks.

The paper's experiments ran on 1990 MIMD machines; we substitute a
deterministic discrete-event model (see DESIGN.md §2).  The
:class:`Machine` owns processor state and the latency model; the Strand
engine (``repro.strand.engine``) drives it, asking for delivery delays and
charging reduction costs.

Determinism: all randomness (``rand_num``) comes from a seeded
``random.Random`` owned by the machine, and the engine's event heap breaks
time ties with a monotone sequence number.
"""

from __future__ import annotations

import random

from repro.errors import MachineError
from repro.machine.faults import FaultPlan, FaultStats, Partition
from repro.machine.metrics import MachineMetrics
from repro.machine.network import Network
from repro.machine.processor import VirtualProcessor
from repro.machine.topology import Topology, topology_by_name
from repro.machine.trace import Trace

__all__ = ["Machine"]


class Machine:
    """``P`` virtual processors joined by a :class:`Network`.

    Parameters
    ----------
    processors:
        Number of virtual processors (1-based numbering, as in the paper's
        ``rand_num(N, O)`` / ``distribute`` convention).
    topology:
        A :class:`Topology`, a name (``'full'``, ``'ring'``, ``'mesh'``,
        ``'hypercube'``, ``'tree'``), or ``None`` for fully connected.
    seed:
        Seed for the machine RNG (drives ``rand_num`` and fault injection;
        nothing else).
    trace:
        Enable event tracing (see :class:`Trace`).
    faults:
        Optional :class:`~repro.machine.faults.FaultPlan`.  The crash
        schedule is resolved here, from the machine RNG, so it is fixed by
        the seed before the first reduction runs.
    backend:
        ``"sequential"`` (default) runs the whole simulation in-process;
        ``"parallel"`` shards the virtual processors across OS worker
        processes (see :mod:`repro.machine.parallel`), synchronized with a
        BSP-style epoch protocol.  Fault injection is not implemented on
        the parallel backend.
    workers:
        Worker-process count for ``backend="parallel"`` (default:
        ``min(processors, os.cpu_count())``); ignored otherwise.
    epoch_window:
        Optional conservative time-window width for the parallel backend.
        ``None`` (default) runs each epoch to local quiescence — exact for
        confluent programs and far fewer barriers; a positive float bounds
        every epoch to that much virtual time, which keeps cross-shard
        message delivery causally ordered even for time-racy programs when
        the window is at most the minimum cross-processor latency.
    """

    def __init__(
        self,
        processors: int = 1,
        topology: Topology | str | None = None,
        seed: int = 0,
        startup_latency: float = 2.0,
        per_hop_latency: float = 1.0,
        trace: bool = False,
        faults: FaultPlan | None = None,
        backend: str = "sequential",
        workers: int | None = None,
        epoch_window: float | None = None,
    ):
        if processors < 1:
            raise MachineError(f"need at least one processor, got {processors}")
        if backend not in ("sequential", "parallel"):
            raise MachineError(
                f"unknown backend {backend!r}; choose 'sequential' or 'parallel'"
            )
        if backend == "parallel" and faults is not None:
            raise NotImplementedError(
                "fault injection is not supported on the parallel backend"
            )
        if workers is not None and backend != "parallel":
            raise MachineError("workers= only applies to backend='parallel'")
        if workers is not None and workers < 1:
            raise MachineError(f"need at least one worker, got {workers}")
        if epoch_window is not None and epoch_window <= 0:
            raise MachineError(f"epoch_window must be positive, got {epoch_window}")
        self.backend = backend
        if backend == "parallel":
            import os

            default_workers = min(processors, os.cpu_count() or 1)
            self.workers = min(workers or default_workers, processors)
        else:
            self.workers = None
        self.epoch_window = epoch_window
        if topology is None:
            topo = topology_by_name("full", processors)
        elif isinstance(topology, str):
            topo = topology_by_name(topology, processors)
        else:
            topo = topology
        if topo.size != processors:
            raise MachineError(
                f"topology size {topo.size} != processor count {processors}"
            )
        self.network = Network(topo, startup=startup_latency, per_hop=per_hop_latency)
        self.procs: list[VirtualProcessor] = [
            VirtualProcessor(number=i + 1) for i in range(processors)
        ]
        self.rng = random.Random(seed)
        self.seed = seed
        self.trace = Trace(enabled=trace)
        self.faults = faults
        self.fault_stats = FaultStats()
        # processor -> virtual crash time, fixed by the seed at construction
        # (drawn before any rand_num draw so the schedule never depends on
        # program behaviour).
        self.crash_schedule: dict[int, float] = (
            faults.resolve_crashes(processors, self.rng) if faults else {}
        )
        # Partition windows, resolved after the crash schedule (explicit
        # cuts plus at most one random one) so both are fixed by the seed.
        self.partitions: tuple[Partition, ...] = (
            faults.resolve_partitions(processors, self.rng) if faults else ()
        )
        # Cost split for experiment E8; the engine fills these in.
        self.library_cost = 0.0
        self.user_cost = 0.0

    # -- addressing ---------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.procs)

    def proc(self, number: int) -> VirtualProcessor:
        """Processor by 1-based number."""
        if not 1 <= number <= len(self.procs):
            raise MachineError(f"processor {number} out of range 1..{len(self.procs)}")
        return self.procs[number - 1]

    def normalize(self, number: int) -> int:
        """Map any integer onto a valid processor number (1-based modulo),
        the conventional wrap-around used when placing ``@ J`` processes."""
        return (number - 1) % len(self.procs) + 1

    # -- communication ------------------------------------------------------
    def latency(self, src: int, dst: int) -> float:
        return self.network.latency(src, dst)

    def hops(self, src: int, dst: int) -> int:
        return self.network.topology.hops(src, dst)

    def rand_proc(self) -> int:
        """A uniformly random processor number in ``1..P`` (the paper's
        ``rand_num(N, R)``)."""
        return self.rng.randint(1, len(self.procs))

    # -- fault injection ----------------------------------------------------
    def link_cut(self, src: int, dst: int, now: float) -> bool:
        """True when an active partition severs the ``src -> dst`` link at
        virtual time ``now`` (no RNG involved)."""
        return any(p.severs(src, dst, now) for p in self.partitions)

    def message_fate(
        self, src: int, dst: int, now: float, *, duplicable: bool = True
    ) -> tuple[str, float]:
        """Decide what happens to an explicit message sent ``src -> dst`` at
        virtual time ``now``:
        ``('deliver' | 'drop' | 'delay' | 'duplicate', latency)``.

        A message arriving at a processor that is (or will by then be)
        crashed is lost deterministically, as is one crossing an active
        partition — no RNG draw in either case, so the draw sequence stays
        identical across fault-plan variations that only change crash times
        or partition windows.  Drop/delay/duplicate draws happen only when
        the plan is lossy, so a fault-free machine replays
        pre-failure-model traces byte-for-byte.

        ``duplicable=False`` (the remote-spawn path) keeps the RNG draw —
        so the sequence never depends on the message kind — but resolves a
        duplicate outcome to a plain delivery.
        """
        latency = self.network.latency(src, dst)
        faults = self.faults
        if faults is None:
            return "deliver", latency
        crash_at = self.crash_schedule.get(dst)
        if (crash_at is not None and crash_at <= now + latency) or not self.proc(
            dst
        ).alive:
            self.fault_stats.messages_dropped += 1
            self.trace.record(now, src, "fault", f"drop:dead-dest p{dst}")
            return "drop", latency
        if self.link_cut(src, dst, now):
            self.fault_stats.partition_dropped += 1
            self.trace.record(now, src, "fault", f"drop:partition->p{dst}")
            return "drop", latency
        if faults.lossy:
            draw = self.rng.random()
            if draw < faults.drop_rate:
                self.fault_stats.messages_dropped += 1
                self.trace.record(now, src, "fault", f"drop:msg->p{dst}")
                return "drop", latency
            if draw < faults.drop_rate + faults.delay_rate:
                self.fault_stats.messages_delayed += 1
                latency *= 1.0 + faults.delay_factor
                self.trace.record(now, src, "fault", f"delay:msg->p{dst}")
                return "delay", latency
            if (
                duplicable
                and draw < faults.drop_rate + faults.delay_rate + faults.duplicate_rate
            ):
                self.fault_stats.messages_duplicated += 1
                self.trace.record(now, src, "fault", f"dup:msg->p{dst}")
                return "duplicate", latency
        return "deliver", latency

    # -- results ------------------------------------------------------------
    def metrics(self) -> MachineMetrics:
        fs = self.fault_stats
        return MachineMetrics.from_processors(
            self.procs,
            library_cost=self.library_cost,
            user_cost=self.user_cost,
            crashes=fs.crashes,
            messages_dropped=fs.messages_dropped,
            messages_delayed=fs.messages_delayed,
            messages_duplicated=fs.messages_duplicated,
            partition_dropped=fs.partition_dropped,
            processes_abandoned=fs.processes_abandoned,
            processes_migrated=fs.processes_migrated,
            orphaned_suspensions=fs.orphaned_suspensions,
            sup_timeouts=fs.sup_timeouts,
            sup_retries=fs.sup_retries,
            sup_degraded=fs.sup_degraded,
            rel_retransmits=fs.rel_retransmits,
            rel_acks=fs.rel_acks,
            rel_duplicates_suppressed=fs.rel_duplicates_suppressed,
            rel_unreachable=fs.rel_unreachable,
            trace_dropped=self.trace.dropped,
        )

    def reset(self) -> None:
        """Clear all processor state and counters; keep topology, seed, and
        fault plan (the re-seeded RNG re-resolves the identical crash
        schedule and partition windows), so back-to-back runs on one
        machine report per-run — not cumulative — fault counts."""
        self.procs = [VirtualProcessor(number=i + 1) for i in range(len(self.procs))]
        self.rng = random.Random(self.seed)
        self.trace.clear()
        self.fault_stats.clear()
        self.crash_schedule = (
            self.faults.resolve_crashes(len(self.procs), self.rng)
            if self.faults
            else {}
        )
        self.partitions = (
            self.faults.resolve_partitions(len(self.procs), self.rng)
            if self.faults
            else ()
        )
        self.library_cost = 0.0
        self.user_cost = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(P={self.size}, topology={type(self.network.topology).__name__})"
        )
