"""Latency model for the virtual interconnect.

Message cost is the classic linear model ``startup + per_hop * hops`` —
enough to make locality and communication volume *matter* in experiments
without modelling contention (the paper's claims are about message counts
and load shape, not queueing effects).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.topology import FullyConnected, Topology

__all__ = ["Network"]


@dataclass
class Network:
    """Topology + cost parameters.

    ``startup``  — fixed software overhead per message (time units)
    ``per_hop``  — wire time per hop
    """

    topology: Topology
    startup: float = 2.0
    per_hop: float = 1.0

    @classmethod
    def uniform(cls, size: int, latency: float = 3.0) -> "Network":
        """A fully-connected network with a flat per-message latency."""
        return cls(FullyConnected(size), startup=latency, per_hop=0.0)

    @property
    def size(self) -> int:
        return self.topology.size

    def latency(self, src: int, dst: int) -> float:
        """Delivery delay for one message from ``src`` to ``dst``.

        Local delivery is free: within a processor, data availability is
        just a memory reference.
        """
        if src == dst:
            return 0.0
        return self.startup + self.per_hop * self.topology.hops(src, dst)
