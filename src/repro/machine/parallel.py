"""Parallel execution backend: shard the virtual processors across OS
worker processes.

The sequential backend simulates all ``P`` virtual processors in one Python
process; this module executes the same simulation on real hardware
parallelism.  Processor ``p`` is owned by worker ``(p - 1) % workers``; each
worker process hosts a full :class:`~repro.strand.engine.StrandEngine` (its
own scheduler, reducer, and compiled program) but only ever runs processes
placed on its owned processors.

Synchronization is a BSP-style epoch protocol driven by the parent process:

1. every worker drains its local event heap (to local quiescence, or — with
   ``Machine(epoch_window=...)`` — up to a conservative global time horizon),
   buffering every cross-shard effect in an *outbox*;
2. at the barrier the parent routes outboxes to inboxes: remote spawns to
   the destination's owner, port messages to the port's owner, variable
   bindings broadcast to every other shard (and applied to the parent's own
   replicas, which is how query variables receive their answers);
3. each worker applies its inbox in a deterministic order — sorted by
   ``(virtual send time, source shard, per-shard message sequence)`` — and
   the next epoch begins.

Cross-shard data travels as a flat, iterative *wire encoding* (see
:func:`freeze`/:func:`thaw`) so 100k-element lists neither recurse the
interpreter nor the pickler.  Variables that cross a shard boundary get a
global id ``(shard, counter)`` and exist as replicas on every shard that has
seen them; binding any replica broadcasts the value, and the engine's
suppression flag keeps an applied binding from echoing back out.  Ports are
replicated as send-only stubs: a stub send is shipped to the owning shard,
which splices it into the real stream with the original sender and send
time, so delivery latency and wake accounting match the sequential backend.

Guarantees and limits
---------------------
* Same seed, same program: the parallel backend computes the same *result
  values* as the sequential backend for confluent programs (anything whose
  answer does not depend on message-arrival races).  Virtual-time metrics
  and trace interleavings are not byte-identical: ``rand_num`` draws come
  from per-worker RNG streams, and each worker advances its shard's clocks
  independently between barriers.  With ``epoch_window`` at most the
  minimum cross-processor latency, cross-shard delivery is additionally
  causally ordered (no shard runs past a time before all messages for it
  have arrived), which extends the equivalence to time-racy programs.
* Repeated parallel runs with the same seed and worker count are
  deterministic.
* Fault injection (``Machine(faults=...)``) and per-motif profiling
  (``profile=``) raise :class:`NotImplementedError` on this backend.
* ``max_reductions`` is enforced per worker, not globally.
* Merged output (``write/1``) is grouped by shard, not interleaved by
  virtual time; cross-shard trace events carry no causal link across the
  epoch barrier.
"""

from __future__ import annotations

import multiprocessing
import traceback

from repro import errors as _errors
from repro.errors import DeadlockError, StrandError
from repro.machine.metrics import MachineMetrics
from repro.machine.processor import VirtualProcessor

__all__ = ["run_parallel", "shard_of", "freeze", "thaw", "WireContext"]

#: Shard id the coordinating parent uses in global variable ids.
PARENT_SHARD = -1


def shard_of(proc: int, workers: int) -> int:
    """Owner worker of 1-based virtual processor ``proc``."""
    return (proc - 1) % workers


# --------------------------------------------------------------------------
# Wire format: flat, iterative term encoding
# --------------------------------------------------------------------------

class WireContext:
    """Per-process tables mapping local terms to global wire ids.

    ``vid_to_var`` / ``var_vids`` track variables that crossed a shard
    boundary (vid = ``(origin shard, counter)``); ``gid_ports`` /
    ``port_gids`` do the same for ports.  Both directions are kept so every
    registered object stays referenced — ``id()`` keys would otherwise be
    reused after garbage collection.
    """

    def __init__(self, shard_id: int):
        self.id = shard_id
        self.counter = 0
        self.vid_to_var: dict[tuple, object] = {}
        self.var_vids: dict[int, tuple] = {}
        self.gid_ports: dict[tuple, object] = {}
        self.port_gids: dict[int, tuple] = {}

    def vid_for(self, var) -> tuple:
        vid = self.var_vids.get(id(var))
        if vid is None:
            self.counter += 1
            vid = (self.id, self.counter)
            self.var_vids[id(var)] = vid
            self.vid_to_var[vid] = var
        return vid

    def replica(self, vid: tuple, name: str):
        from repro.strand.terms import Var

        var = self.vid_to_var.get(vid)
        if var is None:
            var = Var(name)
            self.vid_to_var[vid] = var
            self.var_vids[id(var)] = vid
        return var

    def port_gid(self, port) -> tuple:
        gid = self.port_gids.get(id(port))
        if gid is None:
            self.counter += 1
            gid = (self.id, self.counter)
            self.port_gids[id(port)] = gid
            self.gid_ports[gid] = port
        return gid

    def port_replica(self, gid: tuple, owner: int, label: str):
        from repro.strand.streams import PortRef
        from repro.strand.terms import Var

        port = self.gid_ports.get(gid)
        if port is None:
            port = PortRef(Var("StubTail"), owner, label=label)
            self.gid_ports[gid] = port
            self.port_gids[id(port)] = gid
        return port


def freeze(term, ctx: WireContext) -> list:
    """Encode a term as a flat post-order op list (picklable at any depth).

    Unbound variables are encoded by global id (registering them in ``ctx``
    if new); bound variables are dereferenced through, so a value never
    crosses the wire as a variable.  Ports become global-id references.
    """
    from repro.strand.streams import PortRef
    from repro.strand.terms import Atom, Cons, Struct, Tup, Var, deref

    ops: list = []
    work: list = [term]
    while work:
        item = work.pop()
        if type(item) is tuple:
            # Rebuild markers double as wire ops: they surface after their
            # node's children, yielding the post-order the decoder expects.
            ops.append(item)
            continue
        t = deref(item)
        tt = type(t)
        if tt is Var:
            ops.append(("v", ctx.vid_for(t), t.name))
        elif tt is Atom:
            ops.append(("a", t.name))
        elif tt is Cons:
            work.append(("cons",))
            work.append(t.tail)
            work.append(t.head)
        elif tt is Struct:
            work.append(("s", t.functor, len(t.args)))
            work.extend(reversed(t.args))
        elif tt is Tup:
            work.append(("u", len(t.args)))
            work.extend(reversed(t.args))
        elif tt is PortRef:
            ops.append(("p", ctx.port_gid(t), t.owner, t.label))
        else:
            ops.append(("k", t))
    return ops


def thaw(ops: list, ctx: WireContext):
    """Decode a :func:`freeze` op list into a term, resolving global ids
    against (and extending) ``ctx``."""
    from repro.strand.terms import Atom, Cons, Struct, Tup

    stack: list = []
    for op in ops:
        kind = op[0]
        if kind == "k":
            stack.append(op[1])
        elif kind == "a":
            stack.append(Atom(op[1]))
        elif kind == "v":
            stack.append(ctx.replica(op[1], op[2]))
        elif kind == "cons":
            tail = stack.pop()
            head = stack.pop()
            stack.append(Cons(head, tail))
        elif kind == "s":
            n = op[2]
            base = len(stack) - n
            args = stack[base:]
            del stack[base:]
            stack.append(Struct(op[1], args))
        elif kind == "u":
            base = len(stack) - op[1]
            args = stack[base:]
            del stack[base:]
            stack.append(Tup(args))
        else:  # "p"
            stack.append(ctx.port_replica(op[1], op[2], op[3]))
    return stack[0]


# --------------------------------------------------------------------------
# Shard context: the engine-side hook target inside a worker
# --------------------------------------------------------------------------

class _ShardContext(WireContext):
    """What ``engine.shard`` points at inside a worker process.

    The engine consults it on every cross-processor effect; effects whose
    destination is not owned here are frozen into the outbox instead of
    being applied, and committed by the owning shard at the next barrier.
    """

    def __init__(self, shard_id: int, workers: int, engine):
        super().__init__(shard_id)
        self.workers = workers
        self.engine = engine
        self.outbox: list = []
        self.msg_seq = 0
        # True while a remote *bind* message is being applied, so the
        # engine's bind hook does not echo it back out.
        self.suppress = False

    def owns(self, proc: int) -> bool:
        return (proc - 1) % self.workers == self.id

    def _push(self, kind: str, time: float, payload: tuple) -> None:
        self.msg_seq += 1
        self.outbox.append((time, self.id, self.msg_seq, kind, payload))

    def remote_spawn(self, goal, src: int, dst: int, now: float, lib: bool):
        from repro.strand.engine import _msg_tag

        machine = self.engine.machine
        vp = machine.procs[src - 1]
        vp.sends += 1
        vp.hops += machine.hops(src, dst)
        if machine.trace.enabled:
            machine.trace.record(now, src, "send", f"spawn:{_msg_tag(goal)}->{dst}")
        ready = now + machine.latency(src, dst)
        self._push("spawn", now, (dst, ready, bool(lib), freeze(goal, self)))
        return None

    def queue_bind(self, vid: tuple, value, proc: int, now: float) -> None:
        self._push("bind", now, (vid, proc, freeze(value, self)))

    def remote_port_send(self, gid: tuple, msg, src: int, owner: int,
                         now: float) -> None:
        from repro.strand.engine import _msg_tag

        machine = self.engine.machine
        vp = machine.procs[src - 1]
        vp.sends += 1
        vp.hops += machine.hops(src, owner)
        if machine.trace.enabled:
            machine.trace.record(now, src, "send", f"port:{_msg_tag(msg)}->{owner}")
        self._push("psend", now, (gid, src, freeze(msg, self)))

    def remote_port_close(self, gid: tuple, src: int, now: float) -> None:
        self._push("pclose", now, (gid, src))


def _apply_message(shard: _ShardContext, msg: tuple) -> None:
    """Commit one routed message on its destination shard."""
    from repro.strand.builtins import BUILTINS
    from repro.strand.terms import Struct, deref

    time, _src_shard, _seq, kind, payload = msg
    engine = shard.engine
    if kind == "spawn":
        dst, ready, lib, ops = payload
        goal = thaw(ops, shard)
        goal_d = deref(goal)
        indicator_lib = None
        if type(goal_d) is Struct and goal_d.indicator in BUILTINS:
            indicator_lib = lib
        engine.spawn(goal, dst, ready=ready, lib=indicator_lib)
    elif kind == "bind":
        vid, proc, ops = payload
        target = shard.replica(vid, "_Remote")
        value = thaw(ops, shard)
        shard.suppress = True
        try:
            engine.bind(target, value, proc, time)
        finally:
            shard.suppress = False
    elif kind == "psend":
        gid, src, ops = payload
        port = shard.gid_ports[gid]
        if port.closed:
            raise StrandError(f"send on closed port {port!r}")
        engine._port_append(port, thaw(ops, shard), src, time)
    else:  # "pclose"
        gid, src = payload
        engine.port_close(port=shard.gid_ports[gid], src=src, now=time)


_MSG_ORDER = lambda m: (m[0], m[1], m[2])  # noqa: E731 - (time, shard, seq)


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------

class _WorkerState:
    """All per-worker mutable state, keyed off the init command."""

    def __init__(self):
        self.engine = None
        self.shard: _ShardContext | None = None

    # -- commands -------------------------------------------------------
    def init(self, payload) -> None:
        from repro.machine.simulator import Machine
        from repro.strand.engine import StrandEngine
        from repro.strand.terms import Var

        (shard_id, workers, program, foreign, options, processors, topology,
         seed, startup, per_hop, trace_cfg) = payload
        Var.reset_names()
        enabled, limit, ring = trace_cfg
        machine = Machine(
            processors,
            topology=topology,
            # Distinct per-worker RNG stream, fixed by (seed, shard).
            seed=seed * 1_000_003 + shard_id + 1,
            startup_latency=startup,
            per_hop_latency=per_hop,
            trace=enabled,
        )
        if enabled:
            from repro.machine.trace import Trace

            machine.trace = Trace(enabled=True, limit=limit, ring=ring)
        self.engine = StrandEngine(
            program,
            machine=machine,
            foreign=foreign,
            watched=options["watched"],
            library=options["library"],
            services=options["services"],
            max_reductions=options["max_reductions"],
            auto_close_ports=False,  # the parent coordinates quiescence
            reduction_cost=options["reduction_cost"],
            indexing=options["indexing"],
            abandon_stragglers=options["abandon_stragglers"],
        )
        self.shard = _ShardContext(shard_id, workers, self.engine)
        self.engine.shard = self.shard
        machine.trace.cause = 0

    def epoch(self, payload) -> tuple:
        inbox, horizon = payload
        engine = self.engine
        engine.machine.trace.cause = 0
        inbox.sort(key=_MSG_ORDER)
        for msg in inbox:
            _apply_message(self.shard, msg)
        next_time = engine.scheduler.drain(engine.reducer.execute, horizon)
        outbox = self.shard.outbox
        self.shard.outbox = []
        return (outbox, next_time)

    def quiesce_info(self, _payload) -> tuple:
        engine = self.engine
        suspended = engine.scheduler.suspended
        all_services = all(
            p.goal.indicator in engine.services for p in suspended.values()
        )
        open_ports = any(not port.closed for port in engine.ports)
        max_clock = max(
            (vp.clock for vp in engine.machine.procs
             if self.shard.owns(vp.number)),
            default=0.0,
        )
        return (len(suspended), all_services, open_ports, max_clock)

    def close_ports(self, payload) -> tuple:
        now = payload
        engine = self.engine
        engine.machine.trace.cause = 0
        engine.close_all_ports(now)
        next_time = engine.scheduler.drain(engine.reducer.execute, None)
        outbox = self.shard.outbox
        self.shard.outbox = []
        return (outbox, next_time)

    def abandon(self, payload) -> int:
        # Mirror of the sequential engine's straggler abandonment.
        now = payload
        engine = self.engine
        scheduler = engine.scheduler
        stats = engine.machine.fault_stats
        count = 0
        for key, process in sorted(
            scheduler.suspended.items(),
            key=lambda item: (item[1].proc, item[1].seq),
        ):
            del scheduler.suspended[key]
            process.state = 2  # DONE
            scheduler.live -= 1
            stats.processes_abandoned += 1
            engine.machine.trace.record(
                now, process.proc, "fault", f"straggler:{process.goal.functor}"
            )
            count += 1
        return count

    def stuck(self, _payload) -> list:
        from repro.strand.terms import Var, deref

        out = []
        for process in self.engine.scheduler.suspended.values():
            waiting = [
                v.name for v in (process.blocked_on or ())
                if type(deref(v)) is Var
            ]
            out.append((process.proc, process.seq, process.describe(), waiting))
        return out

    def finish(self, _payload) -> tuple:
        engine = self.engine
        machine = engine.machine
        return (
            machine.procs,
            machine.library_cost,
            machine.user_cost,
            machine.fault_stats.processes_abandoned,
            list(machine.trace.events),
            machine.trace.dropped,
            engine.output,
        )


def _worker_main(conn) -> None:
    """Entry point of one worker process (spawn-safe: module level, state
    rebuilt from the init command)."""
    state = _WorkerState()
    handlers = {
        "init": state.init,
        "epoch": state.epoch,
        "quiesce_info": state.quiesce_info,
        "close_ports": state.close_ports,
        "abandon": state.abandon,
        "stuck": state.stuck,
        "finish": state.finish,
    }
    try:
        while True:
            cmd, payload = conn.recv()
            if cmd == "stop":
                return
            try:
                conn.send(("ok", handlers[cmd](payload)))
            except Exception as exc:  # marshal errors back to the parent
                conn.send((
                    "error",
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                ))
    except (EOFError, KeyboardInterrupt):
        return
    finally:
        conn.close()


# --------------------------------------------------------------------------
# Parent coordinator
# --------------------------------------------------------------------------

class _WorkerPool:
    def __init__(self, workers: int):
        ctx = multiprocessing.get_context("spawn")
        self.conns = []
        self.procs = []
        for _ in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,),
                               daemon=True)
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)

    def command(self, targets, cmd: str, payloads) -> list:
        """Issue ``cmd`` to each target worker concurrently; collect replies
        in shard order.  Raises the (mapped) worker exception on error."""
        for w in targets:
            self.conns[w].send((cmd, payloads[w]))
        results = {}
        failure = None
        for w in targets:
            status, value = self.conns[w].recv()
            if status == "error":
                if failure is None:
                    failure = (w, value)
            else:
                results[w] = value
        if failure is not None:
            w, (name, message, _tb) = failure
            cls = getattr(_errors, name, None)
            if cls is None or not (isinstance(cls, type)
                                   and issubclass(cls, BaseException)):
                cls = StrandError
            raise cls(f"[worker {w}] {message}")
        return [results[w] for w in targets]

    def shutdown(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self.conns:
            conn.close()


def _route(messages, workers: int, parent_ctx: WireContext,
           inboxes: list, parent_binds: list) -> None:
    """Distribute one barrier's outbox messages.

    Spawns and port traffic go to the owning shard; binds are broadcast to
    every shard except the sender and remembered for the parent (whose
    replicas include the query variables)."""
    for msg in messages:
        _time, src_shard, _seq, kind, payload = msg
        if kind == "spawn":
            inboxes[shard_of(payload[0], workers)].append(msg)
        elif kind in ("psend", "pclose"):
            inboxes[payload[0][0]].append(msg)
        else:  # bind: broadcast
            for w in range(workers):
                if w != src_shard:
                    inboxes[w].append(msg)
            parent_binds.append(msg)


def _parent_apply_binds(parent_ctx: WireContext, binds: list) -> None:
    from repro.strand.terms import Var, deref

    binds.sort(key=_MSG_ORDER)
    for msg in binds:
        vid, _proc, ops = msg[4]
        target = deref(parent_ctx.replica(vid, "_Remote"))
        value = deref(thaw(ops, parent_ctx))
        if type(target) is Var and target is not value:
            target.ref = value


def run_parallel(engine) -> MachineMetrics:
    """Execute ``engine``'s pending goal pool on the parallel backend.

    Called by :meth:`StrandEngine.run` when the machine was built with
    ``backend="parallel"``.  Returns the merged machine metrics; the
    engine's machine is updated in place (merged processor counters, merged
    trace, merged ``write/1`` output), and every binding made to the
    caller's goal variables is applied, so downstream result extraction is
    backend-agnostic.
    """
    machine = engine.machine
    if machine.faults is not None:
        raise NotImplementedError(
            "fault injection is not supported on the parallel backend"
        )
    if engine.profile is not None:
        raise NotImplementedError(
            "per-motif profiling is not supported on the parallel backend"
        )
    workers = machine.workers or 1
    processors = machine.size
    epoch_window = machine.epoch_window

    # -- initial pool: freeze the goals spawned before run() -------------
    parent_ctx = WireContext(PARENT_SHARD)
    initial: list = []
    seq = 0
    for pnum in range(1, processors + 1):
        for _ready, _pseq, process in sorted(
            engine.scheduler.queues[pnum - 1],
            key=lambda entry: (entry[0], entry[1]),
        ):
            if process.state != 0:  # RUNNABLE
                continue
            seq += 1
            initial.append((
                process.ready, PARENT_SHARD, seq, "spawn",
                (pnum, process.ready, bool(process.lib),
                 freeze(process.goal, parent_ctx)),
            ))

    trace_cfg = (
        machine.trace.enabled,
        machine.trace.limit,
        machine.trace.ring,
    )
    pool = _WorkerPool(workers)
    try:
        init_payloads = {
            w: (
                w, workers, engine.program, engine.foreign, engine._options,
                processors, machine.network.topology, machine.seed,
                machine.network.startup, machine.network.per_hop, trace_cfg,
            )
            for w in range(workers)
        }
        try:
            pool.command(range(workers), "init", init_payloads)
        except (TypeError, AttributeError, ImportError) as exc:
            raise NotImplementedError(
                "engine configuration cannot be shipped to parallel workers "
                f"(not picklable): {exc}"
            ) from exc

        inboxes: list[list] = [[] for _ in range(workers)]
        parent_binds: list = []
        _route(initial, workers, parent_ctx, inboxes, parent_binds)
        worker_next: list[float | None] = [None] * workers
        ports_closed = False

        while True:
            # ---- message-exchange epochs until globally quiescent ------
            while True:
                if epoch_window is None:
                    active = [w for w in range(workers) if inboxes[w]]
                    horizon = None
                else:
                    pending = [t for t in worker_next if t is not None]
                    pending.extend(
                        msg[4][1] if msg[3] == "spawn" else msg[0]
                        for box in inboxes for msg in box
                    )
                    if not pending:
                        active = []
                    else:
                        horizon = min(pending) + epoch_window
                        active = [
                            w for w in range(workers)
                            if inboxes[w] or (
                                worker_next[w] is not None
                                and worker_next[w] < horizon
                            )
                        ]
                if not active:
                    break
                payloads = {}
                for w in active:
                    payloads[w] = (inboxes[w], None if epoch_window is None
                                   else horizon)
                    inboxes[w] = []
                replies = pool.command(active, "epoch", payloads)
                parent_binds = []
                for w, (outbox, next_time) in zip(active, replies):
                    worker_next[w] = next_time
                    _route(outbox, workers, parent_ctx, inboxes, parent_binds)
                _parent_apply_binds(parent_ctx, parent_binds)

            # ---- global quiescence: the sequential policy, distributed -
            infos = pool.command(range(workers), "quiesce_info",
                                 {w: None for w in range(workers)})
            total_suspended = sum(info[0] for info in infos)
            if total_suspended == 0:
                break
            all_services = all(info[1] for info in infos)
            any_open = any(info[2] for info in infos)
            now = max(info[3] for info in infos)
            releasable = engine.abandon_stragglers or all_services
            if (not ports_closed and engine.auto_close_ports and releasable
                    and any_open):
                ports_closed = True
                replies = pool.command(range(workers), "close_ports",
                                       {w: now for w in range(workers)})
                parent_binds = []
                for w, (outbox, next_time) in zip(range(workers), replies):
                    worker_next[w] = next_time
                    _route(outbox, workers, parent_ctx, inboxes, parent_binds)
                _parent_apply_binds(parent_ctx, parent_binds)
                continue
            if engine.abandon_stragglers:
                pool.command(range(workers), "abandon",
                             {w: now for w in range(workers)})
                break
            listings = pool.command(range(workers), "stuck",
                                    {w: None for w in range(workers)})
            _raise_deadlock([item for sub in listings for item in sub])

        # ---- merge: metrics, trace, output -----------------------------
        finals = pool.command(range(workers), "finish",
                              {w: None for w in range(workers)})
    finally:
        pool.shutdown()

    merged = [VirtualProcessor(number=i + 1) for i in range(processors)]
    library_cost = 0.0
    user_cost = 0.0
    abandoned = 0
    trace_batches = []
    output: list[str] = []
    for w, (procs, lib_cost, usr_cost, n_abandoned, events, dropped,
            out) in enumerate(finals):
        library_cost += lib_cost
        user_cost += usr_cost
        abandoned += n_abandoned
        trace_batches.append((w, events, dropped))
        output.extend(out)
        for vp in procs:
            m = merged[vp.number - 1]
            # Cross-shard effects (sends, wake latency accounting) may be
            # charged on any shard's replica of a processor; exclusive
            # execution state lives only on the owner.
            m.spawns += vp.spawns
            m.sends += vp.sends
            m.hops += vp.hops
            m.remote_bindings += vp.remote_bindings
            m.suspensions += vp.suspensions
            m.wakeups += vp.wakeups
            if shard_of(vp.number, workers) == w:
                m.clock = vp.clock
                m.busy = vp.busy
                m.reductions = vp.reductions
                m.live_tasks = vp.live_tasks
                m.peak_live_tasks = vp.peak_live_tasks
                m.tasks_started = vp.tasks_started
                m.live_values = vp.live_values
                m.peak_live_values = vp.peak_live_values

    machine.procs = merged
    machine.library_cost = library_cost
    machine.user_cost = user_cost
    machine.fault_stats.processes_abandoned = abandoned
    engine.output[:] = output
    _merge_traces(machine.trace, trace_batches)
    return machine.metrics()


def _merge_traces(trace, batches: list) -> None:
    """Renumber per-worker event ids into one global trace, ordered by
    ``(time, shard, local id)``; intra-shard cause links are remapped,
    cross-shard links do not exist (they are cut at epoch barriers)."""
    from dataclasses import replace

    rows = []
    dropped = 0
    for w, events, worker_dropped in batches:
        dropped += worker_dropped
        rows.extend((ev.time, w, ev.eid, ev) for ev in events)
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    eid_map = {(w, old): new for new, (_t, w, old, _ev) in enumerate(rows, 1)}
    merged = [
        replace(ev, eid=new, cause=eid_map.get((w, ev.cause), 0))
        for new, (_t, w, _old, ev) in enumerate(rows, 1)
    ]
    if isinstance(trace.events, list):
        trace.events[:] = merged
    else:  # ring deque
        trace.events.clear()
        trace.events.extend(merged)
    trace.dropped += dropped
    trace._next_id = len(merged) + 1


def _raise_deadlock(stuck: list) -> None:
    """Merged deadlock report mirroring the sequential scheduler's."""
    stuck.sort(key=lambda item: (item[0], item[1]))
    shown = stuck[:12]
    lines = []
    for _proc, _seq, describe, waiting in shown:
        suffix = f"  [waiting on {', '.join(waiting)}]" if waiting else ""
        lines.append(describe + suffix)
    more = len(stuck) - len(shown)
    listing = "\n  ".join(lines) + (f"\n  ... and {more} more" if more > 0 else "")
    raise DeadlockError(
        f"computation deadlocked with {len(stuck)} suspended "
        f"process(es):\n  {listing}"
    )
