"""Per-motif / per-predicate cost profiling.

The paper's pitch is that motif layers are *readable archives of expertise*
— but a running composition (``Server ∘ Reliable ∘ Rand ∘ Tree1``) is a
soup of rewritten goals unless costs can be attributed back to the motif
layer that produced them.  A :class:`MotifProfile` aggregates, per
``(motif, predicate)`` pair:

* **reductions** — committed reduction attempts;
* **suspensions** — attempts that blocked on unbound variables;
* **messages** — explicit network traffic (remote spawns, port sends)
  issued while reducing that predicate;
* **busy** — virtual time charged.

Attribution follows rule provenance (see :mod:`repro.core.motif`): user
rules profile under ``"user"``; rules a motif's library or transformation
produced profile under the motif's name; builtins inherit the motif of the
rule that spawned them.  Profiling is off by default — the engine holds
``profile=None`` and the hot path pays one ``is not None`` check.
"""

from __future__ import annotations

from typing import Any

__all__ = ["MotifProfile", "USER_TAG"]

#: Profile bucket for rules written by the application programmer.
USER_TAG = "user"


class MotifProfile:
    """Aggregated per-(motif, predicate) counters for one run."""

    __slots__ = ("rows", "context")

    def __init__(self):
        # (motif, "name/arity") -> [reductions, suspensions, messages, busy]
        self.rows: dict[tuple[str, str], list] = {}
        # Attribution context of the reduction currently executing
        # (set by the reducer, read by the engine's message paths).
        self.context: tuple[str, str] = (USER_TAG, "?")

    def _row(self, key: tuple[str, str]) -> list:
        row = self.rows.get(key)
        if row is None:
            row = [0, 0, 0, 0.0]
            self.rows[key] = row
        return row

    def begin(self, motif: str | None, indicator: tuple[str, int]) -> None:
        """Set the attribution context for the reduction about to run."""
        self.context = (motif or USER_TAG,
                        f"{indicator[0]}/{indicator[1]}")

    def reduction(self, cost: float) -> None:
        row = self._row(self.context)
        row[0] += 1
        row[3] += cost

    def suspension(self) -> None:
        self._row(self.context)[1] += 1

    def message(self) -> None:
        """One explicit message sent while reducing the current goal."""
        self._row(self.context)[2] += 1

    # -- reporting ----------------------------------------------------------
    @property
    def total_busy(self) -> float:
        return sum(row[3] for row in self.rows.values())

    def by_motif(self) -> dict[str, list]:
        """Collapse predicates: ``motif -> [red, susp, msgs, busy]``."""
        out: dict[str, list] = {}
        for (motif, _pred), row in self.rows.items():
            agg = out.setdefault(motif, [0, 0, 0, 0.0])
            for i in range(4):
                agg[i] += row[i]
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (stable ordering: busy time, descending)."""
        return {
            f"{motif}:{pred}": {
                "reductions": row[0], "suspensions": row[1],
                "messages": row[2], "busy": row[3],
            }
            for (motif, pred), row in sorted(
                self.rows.items(), key=lambda kv: (-kv[1][3], kv[0])
            )
        }

    def table(self):
        """Render as an :class:`~repro.analysis.reporting.Table` (rows
        sorted by busy time, descending; per-motif subtotal notes)."""
        from repro.analysis.reporting import Table

        table = Table(
            "per-motif / per-predicate profile",
            ["motif", "predicate", "reductions", "suspensions",
             "messages", "busy", "busy%"],
        )
        total = self.total_busy or 1.0
        for (motif, pred), row in sorted(
            self.rows.items(), key=lambda kv: (-kv[1][3], kv[0])
        ):
            table.add(motif, pred, row[0], row[1], row[2], row[3],
                      100.0 * row[3] / total)
        for motif, agg in sorted(self.by_motif().items(),
                                 key=lambda kv: -kv[1][3]):
            table.note(
                f"{motif}: {agg[0]} reductions, {agg[2]} messages, "
                f"busy {agg[3]:.1f} ({100.0 * agg[3] / total:.1f}%)"
            )
        return table

    def render(self) -> str:
        return self.table().render()

    def __len__(self) -> int:
        return len(self.rows)
