"""Interconnect topologies for the virtual multicomputer.

The paper notes Strand ran "on shared-memory computers, hypercubes, mesh
machines, transputer surfaces" — the interconnect determines how many hops a
message travels.  Each topology maps a pair of 1-based processor numbers to
a hop count; the network layer turns hops into latency.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import TopologyError

__all__ = [
    "Topology",
    "FullyConnected",
    "SharedMemory",
    "Ring",
    "Mesh2D",
    "Torus2D",
    "Hypercube",
    "BinaryTreeTopology",
    "topology_by_name",
]


class Topology(ABC):
    """Hop-count model over processors numbered ``1..size``."""

    def __init__(self, size: int):
        if size < 1:
            raise TopologyError(f"topology needs at least one processor, got {size}")
        self.size = size

    def _check(self, p: int) -> None:
        if not 1 <= p <= self.size:
            raise TopologyError(f"processor {p} out of range 1..{self.size}")

    def hops(self, a: int, b: int) -> int:
        """Number of network hops from processor ``a`` to ``b``."""
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        return self._hops(a, b)

    @abstractmethod
    def _hops(self, a: int, b: int) -> int:
        """Hop count for distinct, validated processors."""

    @property
    def diameter(self) -> int:
        """Maximum hop count over all pairs (computed generically)."""
        return max(
            (self.hops(a, b) for a in range(1, self.size + 1)
             for b in range(1, self.size + 1)),
            default=0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(size={self.size})"


class FullyConnected(Topology):
    """Every processor one hop from every other (crossbar)."""

    def _hops(self, a: int, b: int) -> int:
        return 1


class SharedMemory(FullyConnected):
    """Alias for a uniform one-hop interconnect; named for readability when
    modelling the Argonne shared-memory machines."""


class Ring(Topology):
    """Bidirectional ring; hops = shortest way around."""

    def _hops(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.size - d)


class Mesh2D(Topology):
    """A ``rows x cols`` 2-D mesh (no wraparound); Manhattan distance.

    Processor ``p`` sits at ``((p-1) // cols, (p-1) % cols)``.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise TopologyError(f"bad mesh shape {rows}x{cols}")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    @classmethod
    def square(cls, size: int) -> "Mesh2D":
        """The most-square mesh with ``size`` processors."""
        rows = int(math.isqrt(size))
        while size % rows != 0:
            rows -= 1
        return cls(rows, size // rows)

    def _hops(self, a: int, b: int) -> int:
        ra, ca = divmod(a - 1, self.cols)
        rb, cb = divmod(b - 1, self.cols)
        return abs(ra - rb) + abs(ca - cb)


class Torus2D(Mesh2D):
    """A 2-D torus: the mesh with wraparound links on both axes."""

    def _hops(self, a: int, b: int) -> int:
        ra, ca = divmod(a - 1, self.cols)
        rb, cb = divmod(b - 1, self.cols)
        dr = abs(ra - rb)
        dc = abs(ca - cb)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)


class Hypercube(Topology):
    """A d-dimensional hypercube (size must be a power of two); hops =
    Hamming distance of the node labels."""

    def __init__(self, size: int):
        if size & (size - 1) != 0:
            raise TopologyError(f"hypercube size must be a power of two, got {size}")
        super().__init__(size)
        self.dimension = size.bit_length() - 1

    def _hops(self, a: int, b: int) -> int:
        return ((a - 1) ^ (b - 1)).bit_count()


class BinaryTreeTopology(Topology):
    """Processors as nodes of a complete binary tree rooted at 1; hops =
    tree distance (up to the common ancestor and down)."""

    def _hops(self, a: int, b: int) -> int:
        da, db = a.bit_length(), b.bit_length()
        hops = 0
        while da > db:
            a >>= 1
            da -= 1
            hops += 1
        while db > da:
            b >>= 1
            db -= 1
            hops += 1
        while a != b:
            a >>= 1
            b >>= 1
            hops += 2
        return hops


def topology_by_name(name: str, size: int) -> Topology:
    """Factory used by benchmarks: ``'full' | 'ring' | 'mesh' | 'hypercube'
    | 'tree'``."""
    name = name.lower()
    if name in ("full", "fully_connected", "crossbar", "shared"):
        return FullyConnected(size)
    if name == "ring":
        return Ring(size)
    if name == "mesh":
        return Mesh2D.square(size)
    if name == "torus":
        mesh = Mesh2D.square(size)
        return Torus2D(mesh.rows, mesh.cols)
    if name == "hypercube":
        return Hypercube(size)
    if name == "tree":
        return BinaryTreeTopology(size)
    raise TopologyError(f"unknown topology {name!r}")
