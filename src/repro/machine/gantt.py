"""ASCII Gantt rendering of machine traces.

Turns a traced run into a per-processor timeline — the quickest way to
*see* a schedule: load imbalance shows up as ragged rows, communication
phases as gaps.  Used by the CLI's ``--gantt`` flag and by examples.
"""

from __future__ import annotations

from repro.machine.trace import Trace

__all__ = ["render_gantt"]

_BUSY = "█"
_SEND = "↑"
_IDLE = "·"


def render_gantt(trace: Trace, processors: int, makespan: float,
                 width: int = 72) -> str:
    """Render ``reduce``/``send`` events as per-processor timelines.

    Each column is a bucket of ``makespan / width`` time units; a bucket
    with any reduction shows solid, a bucket with only sends shows an
    arrow, an empty bucket shows a dot.
    """
    if not trace.enabled:
        return "(tracing was disabled; run with trace=True to see a Gantt chart)"
    if makespan <= 0:
        makespan = 1.0
    width = max(8, width)
    scale = width / makespan
    rows = [[0] * width for _ in range(processors)]  # 0 idle, 1 send, 2 busy
    for event in trace:
        if event.kind not in ("reduce", "send"):
            continue
        if not 1 <= event.proc <= processors:
            continue
        column = min(width - 1, int(event.time * scale))
        level = 2 if event.kind == "reduce" else 1
        if level > rows[event.proc - 1][column]:
            rows[event.proc - 1][column] = level
    lines = [
        f"t=0 {'─' * (width - 8)} t={makespan:.0f}".ljust(width + 6)
    ]
    glyphs = {0: _IDLE, 1: _SEND, 2: _BUSY}
    for p, row in enumerate(rows, start=1):
        body = "".join(glyphs[level] for level in row)
        lines.append(f"p{p:<3d} {body}")
    lines.append(f"     {_BUSY}=reduction  {_SEND}=message only  {_IDLE}=idle")
    if trace.truncated:
        lines.append(
            f"     WARNING: trace truncated ({trace.dropped} events dropped) "
            "— the schedule above is incomplete"
        )
    return "\n".join(lines)
