"""Trace export: JSONL archives and Chrome/Perfetto ``trace_event`` JSON.

Two interchange formats, both derived from the in-memory :class:`Trace`:

* **JSONL** — one JSON object per event plus a leading metadata header
  line.  Lossless: an exported trace reloads (:func:`read_jsonl`) into a
  :class:`Trace` that formats, filters, and renders identically, so
  ``repro trace`` can analyse runs after the fact and golden traces can be
  archived as plain text.
* **Chrome ``trace_event``** — the JSON array format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev.  Virtual processors
  become threads, ``reduce`` events become complete ("X") slices of their
  charged duration, everything else becomes instants, and cause links
  become flow arrows ("s"/"f" pairs) so Perfetto draws the causal DAG over
  the schedule.  One virtual time unit maps to one microsecond.

A :class:`TraceSink` streams events as they are recorded (attach with
:meth:`Trace.attach_sink`), bounding memory on long runs: the in-memory
trace can then run in ring mode while the sink keeps the full history on
disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable

from repro.machine.trace import Trace, TraceEvent

__all__ = [
    "TraceSink",
    "event_to_dict",
    "event_from_dict",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "write_chrome",
]

_FORMAT = "repro-trace"
_VERSION = 1


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    out: dict[str, Any] = {
        "id": event.eid,
        "t": event.time,
        "proc": event.proc,
        "kind": event.kind,
        "detail": event.detail,
    }
    # Sparse encoding: defaults are omitted so fault-free user-code traces
    # stay compact.
    if event.cause:
        out["cause"] = event.cause
    if event.motif:
        out["motif"] = event.motif
    if event.dur:
        out["dur"] = event.dur
    return out


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        time=float(data["t"]),
        proc=int(data["proc"]),
        kind=data["kind"],
        detail=data.get("detail", ""),
        eid=int(data.get("id", 0)),
        cause=int(data.get("cause", 0)),
        motif=data.get("motif", ""),
        dur=float(data.get("dur", 0.0)),
    )


class TraceSink:
    """Streams events to a file as JSONL, one line per event.

    Use as a context manager, or call :meth:`close` explicitly::

        with TraceSink.open(path, processors=4) as sink:
            machine.trace.attach_sink(sink)
            engine.run()
    """

    def __init__(self, stream: IO[str], meta: dict[str, Any] | None = None):
        self.stream = stream
        self.count = 0
        header = {"format": _FORMAT, "version": _VERSION}
        header.update(meta or {})
        self.stream.write(json.dumps(header) + "\n")

    @classmethod
    def open(cls, path: str | Path, **meta: Any) -> "TraceSink":
        return cls(Path(path).open("w"), meta=meta)

    def write(self, event: TraceEvent) -> None:
        self.stream.write(json.dumps(event_to_dict(event)) + "\n")
        self.count += 1

    def close(self) -> None:
        self.stream.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def write_jsonl(trace: Trace, path: str | Path,
                **meta: Any) -> int:
    """Export a finished trace to ``path`` as JSONL; returns the event
    count.  Extra keyword arguments land in the metadata header (the
    ``dropped`` count is always included)."""
    path = Path(path)
    with path.open("w") as stream:
        sink = TraceSink(stream, meta={"dropped": trace.dropped, **meta})
        for event in trace:
            sink.write(event)
    return len(trace)


def read_jsonl(path: str | Path) -> tuple[Trace, dict[str, Any]]:
    """Load an exported trace; returns ``(trace, metadata)``.

    The returned trace is enabled and unlimited (it already holds exactly
    the archived events); its ``dropped`` count is restored from the
    header so truncation warnings survive the round trip."""
    path = Path(path)
    meta: dict[str, Any] = {}
    trace = Trace(enabled=True, limit=None)
    with path.open() as stream:
        for lineno, line in enumerate(stream):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if lineno == 0 and data.get("format") == _FORMAT:
                meta = data
                continue
            trace.events.append(event_from_dict(data))
    trace.dropped = int(meta.get("dropped", 0))
    if trace.events:
        trace._next_id = max(e.eid for e in trace.events) + 1
    return trace, meta


# ---------------------------------------------------------------------------
# Chrome / Perfetto trace_event format
# ---------------------------------------------------------------------------

#: Flow arrows are drawn for the message/fault edges (where causality is
#: non-local); local spawn→reduce edges would bury the graph in arrows.
_FLOW_KINDS = frozenset({"wake", "spawn", "timeout", "fault", "crash", "bind"})


def to_chrome(events: Iterable[TraceEvent], processors: int | None = None,
              flows: bool = True) -> dict[str, Any]:
    """Convert events to a Chrome ``trace_event`` JSON object.

    ``reduce`` events become complete ("X") slices with their charged
    virtual duration; all other kinds become thread-scoped instants ("i");
    cause links on message/fault kinds become flow arrows ("s" start at the
    cause, "f" finish at the event).  Load the result in
    https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events = list(events)
    by_id = {e.eid: e for e in events}
    if processors is None:
        processors = max((e.proc for e in events), default=1)
    out: list[dict[str, Any]] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": "repro virtual machine"}},
    ]
    for proc in range(1, processors + 1):
        out.append({"ph": "M", "pid": 0, "tid": proc, "name": "thread_name",
                    "args": {"name": f"p{proc}"}})
        out.append({"ph": "M", "pid": 0, "tid": proc, "name": "thread_sort_index",
                    "args": {"sort_index": proc}})
    flow_sources: set[int] = set()
    entries: list[dict[str, Any]] = []
    for event in events:
        cat = event.motif or ("fault" if event.kind in ("fault", "crash")
                              else "user")
        entry: dict[str, Any] = {
            "name": f"{event.kind}:{event.detail}" if event.kind != "reduce"
                    else event.detail,
            "cat": cat,
            "pid": 0,
            "tid": event.proc,
            "ts": event.time,
            "args": {"id": event.eid, "cause": event.cause,
                     "detail": event.detail},
        }
        if event.kind == "reduce":
            entry["ph"] = "X"
            entry["dur"] = event.dur
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        entries.append(entry)
        if flows and event.cause and event.kind in _FLOW_KINDS:
            source = by_id.get(event.cause)
            if source is not None:
                flow_sources.add(source.eid)
                entries.append({
                    "ph": "f", "bp": "e", "id": event.eid, "cat": "causal",
                    "name": event.kind, "pid": 0, "tid": event.proc,
                    "ts": event.time,
                })
                entries.append({
                    "ph": "s", "id": event.eid, "cat": "causal",
                    "name": event.kind, "pid": 0, "tid": source.proc,
                    "ts": source.time,
                })
    out.extend(entries)
    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"format": _FORMAT, "version": _VERSION}}


def write_chrome(events: Iterable[TraceEvent], path: str | Path,
                 processors: int | None = None) -> None:
    Path(path).write_text(
        json.dumps(to_chrome(events, processors=processors)) + "\n"
    )
