"""Structured, causally-linked event traces for the virtual machine.

Tracing is off by default (it costs memory on big runs); benchmarks, tests,
and the CLI's ``--gantt``/``--trace-out`` flags turn it on.  The disabled
path is a single ``enabled`` check with no allocation, so the engine hot
path pays (nearly) nothing when observability is off.

Every recorded event gets a **monotonic event id** and a **cause link** —
the id of the event that causally produced it (``0`` for roots).  The
runtime threads causality through every machine interaction:

* ``spawn`` → ``reduce``/``suspend`` (a process's events point at the spawn
  or wake that made it runnable);
* ``send`` → ``bind`` (delivery) → ``wake`` (a woken process points at the
  binding that woke it, which points at the send that carried it);
* ``timeout`` → the ``after/2`` arm site; the timeout's probe binding points
  at the timeout event;
* ``crash`` → the ``fault`` events for every process it abandons, migrates,
  or orphans.

Walking ``cause`` links backwards from any event terminates at a root goal
spawn (or an injected fault), so any binding or failure can be attributed.
Events also carry the **motif tag** of the rule layer that produced them
(see :mod:`repro.core.motif`) and, for reductions, the virtual ``dur``
charged — enough to reconstruct a full per-motif schedule offline.

Storage modes:

* **full** (default) — append until ``limit``, then count drops (the trace
  is a complete prefix; ``truncated`` flags the loss);
* **ring** (``ring=True``) — keep the *last* ``limit`` events, evicting the
  oldest (the trace is a complete suffix; ``dropped`` counts evictions).

A :class:`~repro.machine.tracefile.TraceSink` can be attached to stream
events out (JSONL) as they are recorded, bounding memory on long runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One machine event.

    ``kind`` is one of ``reduce``, ``spawn``, ``suspend``, ``wake``,
    ``send``, ``bind``, ``fail``, ``fault``, ``crash``, ``timeout``;
    ``time`` is the virtual time at which it happened on processor
    ``proc``; ``detail`` is a short human-readable payload (goal indicator,
    message summary, …).

    ``eid`` is the monotonic event id (1-based; unique within one trace),
    ``cause`` the id of the event that causally produced this one (``0``
    for roots), ``motif`` the motif layer the event is attributed to
    (``""`` for user code and runtime plumbing), and ``dur`` the virtual
    cost charged (nonzero only for ``reduce`` events).
    """

    time: float
    proc: int
    kind: str
    detail: str
    eid: int = 0
    cause: int = 0
    motif: str = ""
    dur: float = 0.0


class Trace:
    """An append-only event log with ids, cause links and query helpers.

    ``cause`` is the *current causal context*: the scheduler/reducer set it
    to the event id of whatever is currently executing, and ``record``
    defaults new events' cause links to it.  Callers with more specific
    knowledge (a delivery caused by a particular send) pass ``cause``
    explicitly.
    """

    def __init__(self, enabled: bool = False, limit: int | None = 1_000_000,
                 ring: bool = False):
        self.enabled = enabled
        self.limit = limit
        self.ring = ring
        self.events: list[TraceEvent] | deque[TraceEvent]
        if ring and limit is not None:
            self.events = deque(maxlen=limit)
        else:
            self.events = []
        self.dropped = 0
        self.cause = 0
        self._next_id = 1
        self._sink = None  # TraceSink | None

    def attach_sink(self, sink) -> None:
        """Stream every subsequently recorded event to ``sink`` (an object
        with a ``write(event)`` method, e.g.
        :class:`~repro.machine.tracefile.TraceSink`)."""
        self._sink = sink

    def record(self, time: float, proc: int, kind: str, detail: str,
               cause: int | None = None, motif: str = "",
               dur: float = 0.0) -> int:
        """Record one event; returns its id (``0`` when disabled or full).

        ``cause=None`` (the default) links the event to the current causal
        context ``self.cause``."""
        if not self.enabled:
            return 0
        if self.limit is not None and not self.ring \
                and len(self.events) >= self.limit:
            self.dropped += 1
            return 0
        eid = self._next_id
        self._next_id = eid + 1
        if self.ring and self.limit is not None \
                and len(self.events) == self.limit:
            self.dropped += 1  # deque evicts the oldest on append
        event = TraceEvent(time, proc, kind, detail, eid,
                           self.cause if cause is None else cause, motif, dur)
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(event)
        return eid

    @property
    def truncated(self) -> bool:
        """True when events were dropped past ``limit`` — ``of_kind()`` and
        ``__len__`` then under-report and the trace must not be treated as
        complete.  In ring mode the retained events are the *latest* ones
        (the prefix was evicted)."""
        return self.dropped > 0

    def clear(self) -> None:
        """Empty the log for reuse, resetting the ``dropped`` count, the id
        counter, and the causal context, so a reused trace reports neither
        stale truncation nor continuing event ids."""
        self.events.clear()
        self.dropped = 0
        self.cause = 0
        self._next_id = 1

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_motif(self, motif: str) -> list[TraceEvent]:
        return [e for e in self.events if e.motif == motif]

    def on_processor(self, proc: int) -> list[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def by_id(self) -> dict[int, TraceEvent]:
        """``eid -> event`` lookup (for walking cause chains)."""
        return {e.eid: e for e in self.events}

    def chain(self, eid: int) -> list[TraceEvent]:
        """The causal chain ending at event ``eid``, root first.

        Follows ``cause`` links back to a root (cause 0); links pointing at
        evicted events (ring mode) terminate the walk."""
        index = self.by_id()
        out: list[TraceEvent] = []
        seen: set[int] = set()
        while eid and eid in index and eid not in seen:
            seen.add(eid)
            event = index[eid]
            out.append(event)
            eid = event.cause
        out.reverse()
        return out

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format(self, max_events: int | None = None) -> str:
        """Human-readable rendering, time-ordered."""
        events = sorted(self.events, key=lambda e: (e.time, e.proc, e.eid))
        if max_events is not None:
            events = events[:max_events]
        lines = [
            f"t={e.time:10.2f}  p{e.proc:<3d} {e.kind:<8s} {e.detail}" for e in events
        ]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped)")
        return "\n".join(lines)
