"""Structured event traces for the virtual machine.

Tracing is off by default (it costs memory on big runs); benchmarks and
tests that need schedules turn it on.  Events are plain tuples so traces
stay cheap and are trivially comparable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One machine event.

    ``kind`` is one of ``reduce``, ``spawn``, ``suspend``, ``wake``,
    ``send``, ``bind``, ``fail``, ``fault``, ``crash``, ``timeout``;
    ``time`` is the virtual time at which it
    happened on processor ``proc``; ``detail`` is a short human-readable
    payload (goal indicator, message summary, …).
    """

    time: float
    proc: int
    kind: str
    detail: str


class Trace:
    """An append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = False, limit: int | None = 1_000_000):
        self.enabled = enabled
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, proc: int, kind: str, detail: str) -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, proc, kind, detail))

    @property
    def truncated(self) -> bool:
        """True when events were dropped past ``limit`` — ``of_kind()`` and
        ``__len__`` then under-report and the trace must not be treated as
        complete."""
        return self.dropped > 0

    def clear(self) -> None:
        """Empty the log for reuse, resetting the ``dropped`` count so a
        reused trace does not report a stale truncation."""
        self.events.clear()
        self.dropped = 0

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def on_processor(self, proc: int) -> list[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format(self, max_events: int | None = None) -> str:
        """Human-readable rendering, time-ordered."""
        events = sorted(self.events, key=lambda e: (e.time, e.proc))
        if max_events is not None:
            events = events[:max_events]
        lines = [
            f"t={e.time:10.2f}  p{e.proc:<3d} {e.kind:<8s} {e.detail}" for e in events
        ]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped)")
        return "\n".join(lines)
