"""Deterministic fault injection for the virtual multicomputer.

The machine model is extended with a *failure model*: processors can crash
at scheduled virtual times, and task/port messages crossing the network can
be dropped or delayed.  Every random decision is drawn from the single
machine RNG (``Machine.rng``), interleaved with ``rand_num`` draws by the
deterministic event order — so a failure run is exactly replayable from the
machine seed, and two same-seed runs produce identical traces and metrics.

Model choices (see ``docs/INTERNALS.md``, *Failure model*):

* **Crashes** are fail-stop: a crashed processor executes nothing further.
  Its runnable processes are abandoned (or, with ``migrate=True``, requeued
  on the next live processor); its suspended processes become *orphaned* —
  they are removed from the suspension table, counted, and listed in any
  subsequent deadlock report.
* **Messages** subject to faults are the explicit ones — remote spawns and
  port sends.  Variable-binding wakeups model shared single-assignment
  state, not messages, and are delivered reliably.
* A message whose destination processor is (or will be) crashed at arrival
  time is lost, deterministically, with no RNG draw.
* **Partitions** are time-windowed link cuts between two processor groups
  (:class:`Partition`): a message whose endpoints sit on opposite sides of
  an active cut is lost deterministically, with no RNG draw, and delivery
  resumes when the window closes (scheduled healing).
* **Duplicate delivery** re-delivers a port message twice (the classic
  at-least-once network artefact the Reliable motif's dedup suppresses).
  Remote *spawns* are never duplicated — a twice-spawned bootstrap task
  would corrupt programs that are correct on a reliable network.
* When all fault rates are zero, no RNG draws happen on the message path,
  so a fault-free machine reproduces exactly the traces it produced before
  the failure model existed.  Zero-rate partition/duplicate fields likewise
  leave the RNG draw sequence untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields

__all__ = ["FaultPlan", "FaultStats", "Partition"]


@dataclass(frozen=True)
class Partition:
    """A time-windowed network partition.

    Processors in ``group`` are cut off from every processor *not* in
    ``group`` during ``[start, end)`` — messages crossing the cut in either
    direction are lost deterministically.  Traffic within a side is
    unaffected, and the cut heals (delivery resumes) at ``end``.
    """

    group: frozenset[int]
    start: float
    end: float

    def __post_init__(self):
        object.__setattr__(self, "group", frozenset(self.group))
        if not self.group:
            raise ValueError("partition group must name at least one processor")
        if not self.start <= self.end:
            raise ValueError(
                f"partition window must have start <= end, got "
                f"[{self.start}, {self.end})"
            )

    def severs(self, src: int, dst: int, now: float) -> bool:
        """True when a ``src -> dst`` message sent at ``now`` crosses the cut."""
        if not self.start <= now < self.end:
            return False
        return (src in self.group) != (dst in self.group)


@dataclass(frozen=True)
class FaultPlan:
    """Configuration for deterministic fault injection.

    Parameters
    ----------
    crash:
        Explicit ``processor -> virtual time`` crash schedule.  Takes
        precedence over ``crash_rate`` for the listed processors.
    crash_rate:
        Probability that each processor (outside ``immortal``) crashes,
        drawn once per processor from the machine RNG at machine
        construction; the crash time is then drawn uniformly from
        ``crash_window``.
    crash_window:
        ``(earliest, latest)`` virtual-time window for randomly scheduled
        crashes.
    drop_rate:
        Per-message probability that a remote spawn or port send is lost.
    delay_rate:
        Per-message probability that delivery is delayed; the latency is
        multiplied by ``1 + delay_factor``.
    delay_factor:
        Extra latency multiplier for delayed messages.
    duplicate_rate:
        Per-message probability that a port send is delivered twice.
        Remote spawns are exempt (see the module docstring).
    partitions:
        Explicit :class:`Partition` windows — deterministic link cuts with
        scheduled healing, no RNG involved.
    partition_rate:
        Probability (drawn once per machine from the machine RNG, after the
        crash schedule) that one additional random partition is scheduled:
        a random group of non-immortal processors cut off for
        ``partition_duration`` starting at a time drawn uniformly from
        ``partition_window``.
    partition_window:
        ``(earliest, latest)`` virtual-time window for the random
        partition's start.
    partition_duration:
        Length of the random partition's window.
    immortal:
        Processors that never crash randomly (default: processor 1, which
        hosts the root computation and the supervisor).  An explicit
        ``crash`` entry overrides immortality.
    migrate:
        When True, a crashed processor's runnable queue is requeued on the
        next live processor (checkpoint-style recovery) instead of being
        abandoned.
    """

    crash: dict[int, float] = field(default_factory=dict)
    crash_rate: float = 0.0
    crash_window: tuple[float, float] = (10.0, 200.0)
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_factor: float = 4.0
    duplicate_rate: float = 0.0
    partitions: tuple[Partition, ...] = ()
    partition_rate: float = 0.0
    partition_window: tuple[float, float] = (10.0, 200.0)
    partition_duration: float = 60.0
    immortal: frozenset[int] = frozenset({1})
    migrate: bool = False

    def __post_init__(self):
        object.__setattr__(self, "crash", dict(self.crash))
        object.__setattr__(self, "immortal", frozenset(self.immortal))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        for rate_name in (
            "crash_rate", "drop_rate", "delay_rate", "duplicate_rate",
            "partition_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.drop_rate + self.delay_rate + self.duplicate_rate > 1.0:
            raise ValueError(
                "drop_rate + delay_rate + duplicate_rate must not exceed 1.0"
            )
        if self.partition_duration < 0.0:
            raise ValueError(
                f"partition_duration must be >= 0, got {self.partition_duration}"
            )

    @property
    def lossy(self) -> bool:
        """True when the message path needs RNG draws."""
        return (
            self.drop_rate > 0.0
            or self.delay_rate > 0.0
            or self.duplicate_rate > 0.0
        )

    def resolve_crashes(self, processors: int, rng: random.Random) -> dict[int, float]:
        """The concrete ``processor -> crash time`` schedule.

        Random entries are drawn in ascending processor order so the draw
        sequence (and hence everything downstream of the shared RNG) is a
        pure function of the machine seed.
        """
        schedule: dict[int, float] = {}
        for pnum in range(1, processors + 1):
            if pnum in self.crash:
                schedule[pnum] = float(self.crash[pnum])
            elif self.crash_rate > 0.0 and pnum not in self.immortal:
                if rng.random() < self.crash_rate:
                    lo, hi = self.crash_window
                    schedule[pnum] = rng.uniform(lo, hi)
        return schedule

    def resolve_partitions(
        self, processors: int, rng: random.Random
    ) -> tuple[Partition, ...]:
        """The concrete partition windows: the explicit ones plus (with
        probability ``partition_rate``) one randomly drawn cut.

        Random draws happen only when ``partition_rate > 0``, in a fixed
        order after the crash schedule's draws, so a zero-rate plan leaves
        the RNG draw sequence — and hence every downstream trace —
        untouched.
        """
        resolved = list(self.partitions)
        if self.partition_rate > 0.0 and processors >= 2:
            if rng.random() < self.partition_rate:
                candidates = [
                    p for p in range(1, processors + 1) if p not in self.immortal
                ]
                if candidates:
                    size = rng.randint(1, max(1, len(candidates) // 2))
                    group = frozenset(rng.sample(candidates, size))
                    start = rng.uniform(*self.partition_window)
                    resolved.append(
                        Partition(group, start, start + self.partition_duration)
                    )
        return tuple(resolved)


@dataclass
class FaultStats:
    """Counters for injected faults and the supervision responses to them.

    Owned by the :class:`~repro.machine.simulator.Machine`; snapshot into
    :class:`~repro.machine.metrics.MachineMetrics` after a run.
    """

    crashes: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    partition_dropped: int = 0
    processes_abandoned: int = 0
    processes_migrated: int = 0
    orphaned_suspensions: int = 0
    # Supervision motif accounting (builtins `after`/`sup_note` bump these).
    sup_timeouts: int = 0
    sup_retries: int = 0
    sup_degraded: int = 0
    # Reliable motif accounting (builtins `rel_*` bump these).
    rel_retransmits: int = 0
    rel_acks: int = 0
    rel_duplicates_suppressed: int = 0
    rel_unreachable: int = 0

    def clear(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def any_faults(self) -> bool:
        return bool(
            self.crashes or self.messages_dropped or self.messages_delayed
            or self.messages_duplicated or self.partition_dropped
            or self.processes_abandoned or self.orphaned_suspensions
        )
