"""Aggregated machine metrics — the measurement surface for every benchmark.

A :class:`MachineMetrics` snapshot is computed from processor state after a
run.  It deliberately exposes exactly the quantities the paper's claims are
phrased in: virtual makespan (for speedup), per-processor busy time (load
balance, E3), message and hop counts (E5), and watched-task high-water marks
(memory behaviour, E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.processor import VirtualProcessor

__all__ = ["MachineMetrics", "imbalance", "jain_fairness", "coefficient_of_variation"]


def imbalance(loads: list[float]) -> float:
    """``max/mean`` load ratio; 1.0 is perfect balance.  Empty or all-idle
    loads give 1.0 (a degenerate but balanced machine)."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean


def jain_fairness(loads: list[float]) -> float:
    """Jain's fairness index in ``(0, 1]``; 1.0 is perfect balance."""
    if not loads or all(x == 0 for x in loads):
        return 1.0
    num = sum(loads) ** 2
    den = len(loads) * sum(x * x for x in loads)
    return num / den


def coefficient_of_variation(loads: list[float]) -> float:
    """Std-dev over mean of the loads; 0.0 is perfect balance."""
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    var = sum((x - mean) ** 2 for x in loads) / len(loads)
    return math.sqrt(var) / mean


@dataclass
class MachineMetrics:
    """Snapshot of one finished run."""

    processors: int
    makespan: float
    busy: list[float]
    reductions: int
    suspensions: int
    wakeups: int
    sends: int
    remote_bindings: int
    hops: int
    peak_live_tasks: list[int]
    peak_live_values: list[int]
    tasks_started: int
    # Optional cost split recorded by the engine: virtual time charged to
    # procedures in the "library" set vs everything else (experiment E8).
    library_cost: float = 0.0
    user_cost: float = 0.0
    # Fault-injection accounting (zero on fault-free runs).
    crashes: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    partition_dropped: int = 0
    processes_abandoned: int = 0
    processes_migrated: int = 0
    orphaned_suspensions: int = 0
    # Supervision-motif responses to injected faults.
    sup_timeouts: int = 0
    sup_retries: int = 0
    sup_degraded: int = 0
    # Reliable-motif responses: retransmissions, receiver acks, duplicate
    # deliveries suppressed, and destinations reported unreachable.
    rel_retransmits: int = 0
    rel_acks: int = 0
    rel_duplicates_suppressed: int = 0
    rel_unreachable: int = 0
    # Events the Trace dropped past its limit — nonzero means every
    # trace-derived figure is a lower bound.
    trace_dropped: int = 0

    @classmethod
    def from_processors(
        cls,
        procs: list[VirtualProcessor],
        library_cost: float = 0.0,
        user_cost: float = 0.0,
        **fault_counters: int,
    ) -> "MachineMetrics":
        return cls(
            processors=len(procs),
            makespan=max((p.clock for p in procs), default=0.0),
            busy=[p.busy for p in procs],
            reductions=sum(p.reductions for p in procs),
            suspensions=sum(p.suspensions for p in procs),
            wakeups=sum(p.wakeups for p in procs),
            sends=sum(p.sends for p in procs),
            remote_bindings=sum(p.remote_bindings for p in procs),
            hops=sum(p.hops for p in procs),
            peak_live_tasks=[p.peak_live_tasks for p in procs],
            peak_live_values=[p.peak_live_values for p in procs],
            tasks_started=sum(p.tasks_started for p in procs),
            library_cost=library_cost,
            user_cost=user_cost,
            **fault_counters,
        )

    # -- derived figures -----------------------------------------------------
    @property
    def total_busy(self) -> float:
        return sum(self.busy)

    @property
    def imbalance(self) -> float:
        return imbalance(self.busy)

    @property
    def fairness(self) -> float:
        return jain_fairness(self.busy)

    @property
    def cv(self) -> float:
        return coefficient_of_variation(self.busy)

    @property
    def efficiency(self) -> float:
        """Fraction of total processor-time spent busy (``∈ (0, 1]``)."""
        if self.makespan == 0:
            return 1.0
        return self.total_busy / (self.processors * self.makespan)

    @property
    def messages(self) -> int:
        """All cross-processor traffic: explicit sends + remote bindings."""
        return self.sends + self.remote_bindings

    @property
    def max_peak_live_tasks(self) -> int:
        return max(self.peak_live_tasks, default=0)

    @property
    def max_peak_live_values(self) -> int:
        return max(self.peak_live_values, default=0)

    @property
    def library_fraction(self) -> float:
        """Fraction of charged cost spent in motif-library procedures."""
        total = self.library_cost + self.user_cost
        if total == 0:
            return 0.0
        return self.library_cost / total

    def speedup_against(self, sequential_makespan: float) -> float:
        """Virtual speedup relative to a sequential (P=1) run's makespan."""
        if self.makespan == 0:
            return 1.0
        return sequential_makespan / self.makespan

    @property
    def faults_injected(self) -> int:
        return (
            self.crashes + self.messages_dropped + self.messages_delayed
            + self.messages_duplicated + self.partition_dropped
        )

    @property
    def reliability_events(self) -> int:
        """All Reliable-motif protocol activity (zero when the motif is
        absent or never had to act)."""
        return (
            self.rel_retransmits + self.rel_acks
            + self.rel_duplicates_suppressed + self.rel_unreachable
        )

    def counters(self) -> dict[str, int]:
        """Every fault/reliability/trace counter as one flat dict — the
        uniform export surface for bench JSON and reporting tables, so no
        counter exists only in one harness's ad-hoc output."""
        return {
            "crashes": self.crashes,
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "messages_duplicated": self.messages_duplicated,
            "partition_dropped": self.partition_dropped,
            "processes_abandoned": self.processes_abandoned,
            "processes_migrated": self.processes_migrated,
            "orphaned_suspensions": self.orphaned_suspensions,
            "sup_timeouts": self.sup_timeouts,
            "sup_retries": self.sup_retries,
            "sup_degraded": self.sup_degraded,
            "rel_retransmits": self.rel_retransmits,
            "rel_acks": self.rel_acks,
            "rel_duplicates_suppressed": self.rel_duplicates_suppressed,
            "rel_unreachable": self.rel_unreachable,
            "trace_dropped": self.trace_dropped,
        }

    def summary(self) -> str:
        text = (
            f"P={self.processors} makespan={self.makespan:.1f} "
            f"busy={self.total_busy:.1f} eff={self.efficiency:.3f} "
            f"imb={self.imbalance:.3f} red={self.reductions} "
            f"msgs={self.messages} (sends={self.sends}, remote_binds={self.remote_bindings}) "
            f"peak_tasks={self.max_peak_live_tasks}"
        )
        if self.faults_injected:
            text += (
                f" faults(crashes={self.crashes}, dropped={self.messages_dropped}, "
                f"delayed={self.messages_delayed}, duplicated={self.messages_duplicated}, "
                f"partition_dropped={self.partition_dropped}, "
                f"abandoned={self.processes_abandoned}, "
                f"migrated={self.processes_migrated}, "
                f"orphans={self.orphaned_suspensions}, "
                f"timeouts={self.sup_timeouts}, retries={self.sup_retries}, "
                f"degraded={self.sup_degraded})"
            )
        if self.reliability_events:
            text += (
                f" reliable(retransmits={self.rel_retransmits}, acks={self.rel_acks}, "
                f"dup_suppressed={self.rel_duplicates_suppressed}, "
                f"unreachable={self.rel_unreachable})"
            )
        if self.trace_dropped:
            text += f" trace_dropped={self.trace_dropped} (trace truncated)"
        return text
