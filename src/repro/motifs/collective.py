"""Collective-communication motif: allreduce over per-processor values.

Strand's home machines included hypercubes (§2.1), whose signature
collective is **recursive doubling**: in round ``r`` every processor
combines its value with that of the partner whose number differs in bit
``r``; after ``log₂ P`` rounds every processor holds the full reduction.

The plan is compiled to one *worker per processor*: each worker receives
its private list of ``round(Mine, Partner, Next)`` descriptors (shared
single-assignment variables wire the rounds together) and runs them with
the generic ``creduce`` loop — dataflow makes each round wait for exactly
the two values it needs, so no barrier is ever spawned.

The combine operator is the user procedure ``cop(A, B, C)`` (Strand rules
or foreign; must be associative and commutative).  ``SUM_OP`` is a
ready-made integer-sum instance for tests and examples.

Two plans are provided for experiment E15's ablation:

* :func:`allreduce_goals` — recursive doubling (``P`` a power of two),
  critical path ``O(log P)``;
* :func:`central_reduce_goals` — the naive baseline: one fold chain on
  processor 1 (critical path ``O(P)``) followed by a broadcast.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.motif import Motif
from repro.errors import MotifError
from repro.strand.foreign import from_python
from repro.strand.terms import Cons, NIL, Struct, Term, Var

__all__ = [
    "collective_motif",
    "allreduce_goals",
    "central_reduce_goals",
    "SUM_OP",
]

COLLECTIVE_LIBRARY = """
% creduce(Rounds): run this processor's combine rounds; dataflow ties each
% round to the availability of its two operands.
creduce([round(A, B, N) | Rs]) :-
    cop(A, B, N),
    creduce(Rs).
creduce([]).

% touch(V, Done): wait until the (possibly remote) value arrives; the
% cross-processor wakeup is the broadcast's delivery cost.
touch(V, Done) :- known(V) | Done := done.
"""

#: A ready-made combine operator (link it, or register a foreign ``cop/3``).
SUM_OP = "cop(A, B, C) :- C := A + B.\n"


def collective_motif() -> Motif:
    """Library-only collective motif (``creduce/1`` + ``touch/2``)."""
    return Motif(name="collective", library=COLLECTIVE_LIBRARY)


def _rounds_term(rounds: list[tuple[Term, Term, Term]]) -> Term:
    out: Term = NIL
    for a, b, n in reversed(rounds):
        out = Cons(Struct("round", (a, b, n)), out)
    return out


def allreduce_goals(values: Sequence) -> tuple[list[Term], list[Term]]:
    """Recursive-doubling allreduce: one worker per processor.

    Returns ``(goals, result_terms)`` — ``result_terms[i]`` derefs, after
    the run, to the reduction of all inputs (computed on processor
    ``i+1``).  ``len(values)`` must be a power of two.
    """
    processors = len(values)
    if processors < 1 or processors & (processors - 1) != 0:
        raise MotifError(
            f"recursive doubling needs a power-of-two processor count, "
            f"got {processors}"
        )
    current: list[Term] = [from_python(v) for v in values]
    per_proc: list[list[tuple[Term, Term, Term]]] = [[] for _ in range(processors)]
    stride = 1
    while stride < processors:
        nxt = [Var(f"R{stride}_{i + 1}") for i in range(processors)]
        for i in range(processors):
            partner = i ^ stride
            per_proc[i].append((current[i], current[partner], nxt[i]))
        current = list(nxt)
        stride <<= 1
    goals: list[Term] = [
        Struct("@", (Struct("creduce", (_rounds_term(rounds),)), i + 1))
        for i, rounds in enumerate(per_proc)
    ]
    return goals, current


def central_reduce_goals(values: Sequence) -> tuple[list[Term], Term, list[Var]]:
    """Naive baseline: one fold chain on processor 1, then every processor
    touches the result (the broadcast).

    Returns ``(goals, total_term, done_vars)``.
    """
    processors = len(values)
    if processors < 1:
        raise MotifError("central reduce needs at least one value")
    terms = [from_python(v) for v in values]
    rounds: list[tuple[Term, Term, Term]] = []
    acc: Term = terms[0]
    for i in range(1, processors):
        nxt = Var(f"Acc{i}")
        rounds.append((acc, terms[i], nxt))
        acc = nxt
    goals: list[Term] = []
    if rounds:
        goals.append(Struct("@", (Struct("creduce", (_rounds_term(rounds),)), 1)))
    done_vars: list[Var] = []
    for i in range(processors):
        done = Var(f"Done{i + 1}")
        done_vars.append(done)
        goals.append(Struct("@", (Struct("touch", (acc, done)), i + 1)))
    return goals, acc, done_vars
