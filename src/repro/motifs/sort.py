"""Parallel sorting motif — §4 future work.

A parallel mergesort: split the list, sort the halves (one shipped to a
random processor), merge the results.  The list primitives are user
procedures (typically foreign, with costs proportional to list length):

* ``halve(Xs, A, B)``           — split in two;
* ``merge_sorted(A, B, Out)``   — merge two sorted lists;
* ``sort_seq(Xs, Out)``         — sequential sort for small inputs.

``psort(Xs, Out, Depth)`` splits in parallel for the first ``Depth``
levels, then falls back to ``sort_seq``.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif

__all__ = ["SORT_LIBRARY", "sort_motif", "sort_stack"]

SORT_LIBRARY = """
% psort(Xs, Out, Depth): parallel mergesort with a depth bound.
psort(Xs, Out, D) :- D > 0 |
    halve(Xs, A, B),
    D1 := D - 1,
    psort(B, SB, D1) @ random,
    psort(A, SA, D1),
    merge_sorted(SA, SB, Out).
psort(Xs, Out, 0) :- sort_seq(Xs, Out).
"""


def sort_motif() -> Motif:
    """Library-only parallel mergesort motif."""
    return Motif(name="sort", library=SORT_LIBRARY)


def sort_stack(
    *,
    termination: bool = True,
    server_library: str = "ports",
) -> ComposedMotif:
    """``Server ∘ Rand ∘ [ShortCircuit ∘] Sort``.

    Entry message: ``boot(Xs, Out, Depth, Done)`` with termination, else
    ``psort(Xs, Out, Depth)``.
    """
    stack: list[Motif] = [sort_motif()]
    if termination:
        stack.append(
            short_circuit_motif(
                entry=("psort", 3),
                sync_outputs={
                    ("merge_sorted", 3): 2,
                    ("sort_seq", 2): 1,
                },
            )
        )
    stack.append(rand_motif())
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)
