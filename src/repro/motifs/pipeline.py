"""Pipeline motif — §4 future work.

Stages are user procedures ``s(X, Y)`` applied elementwise; stage ``i``
runs on processor ``i`` (one stream process per stage, placed with the
language's ``@ J`` feature, not a pragma).  Streams give the classic
pipeline overlap: stage 2 works on element 1 while stage 1 works on
element 2.

The library is generated from the stage list; no server network is needed
and the pipeline terminates naturally when the input list ends.
"""

from __future__ import annotations

from repro.core.motif import Motif
from repro.errors import MotifError

__all__ = ["pipeline_library_source", "pipeline_motif"]


def pipeline_library_source(stages: list[str]) -> str:
    """Generate the pipeline library for the given stage procedure names.

    ``pipe(Xs, Ys)`` runs ``Xs`` through every stage; each stage gets a
    ``<stage>_stream/2`` transducer placed on its own processor.
    """
    if not stages:
        raise MotifError("a pipeline needs at least one stage")
    lines = []
    connections = []
    prev = "Xs"
    for i, stage in enumerate(stages):
        out = "Ys" if i == len(stages) - 1 else f"T{i + 1}"
        connections.append(f"    {stage}_stream({prev}, {out}) @ {i + 1}")
        prev = out
    lines.append("pipe(Xs, Ys) :-\n" + ",\n".join(connections) + ".")
    for stage in stages:
        lines.append(
            f"""
{stage}_stream([X | Xs], Out) :-
    Out := [Y | Out1],
    {stage}(X, Y),
    {stage}_stream(Xs, Out1).
{stage}_stream([], Out) :- Out := []."""
        )
    return "\n".join(lines) + "\n"


def pipeline_motif(stages: list[str]) -> Motif:
    """Library-only pipeline motif; run with ``pipe(Xs, Ys)``."""
    return Motif(
        name=f"pipeline[{'>'.join(stages)}]",
        library=pipeline_library_source(stages),
    )
