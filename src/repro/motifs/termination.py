"""Short-circuit termination detection (paper §3.3, last paragraph).

"The Random motif described here does not provide for termination detection
in an application.  If this is required, the associated transformation can
be extended to thread a short circuit through the application program and
to add code to invoke the Server motif's halt operation when the
application terminates."

The classic short-circuit technique: every application process carries two
extra arguments ``(L, R)`` forming a segment of a chain.  A rule that
spawns ``k`` application sub-processes splits its segment into ``k`` pieces
with fresh middle variables; a rule that spawns none closes its segment
with ``L := R``.  When the whole computation has finished, the chain has
collapsed and the initial left end receives the initial right end's value
(the atom ``done``); a ``watch`` process then invokes ``halt``.

Computations whose real completion is the binding of an *output* variable
(e.g. ``eval(V, LV, RV, Value)``'s ``Value``) declare that via
``sync_outputs``; their segment closes only once the output is known.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Struct, Term, Var
from repro.transform.callgraph import CallGraph
from repro.transform.rewrite import strip_placement, with_placement
from repro.transform.transformation import Transformation

__all__ = ["ShortCircuit", "short_circuit_motif", "BOOT", "WATCH"]

BOOT = "boot"
WATCH = "watch"

_SUPPORT_SOURCE_DOC = """
watch(Done) :- known(Done) | halt.
wait_done(X, L, R) :- known(X) | L := R.
"""  # (generated structurally below; shown here for readability)


class ShortCircuit(Transformation):
    """Thread a termination short circuit through an application.

    Parameters
    ----------
    procs:
        Indicators of the application procedures to thread.  ``None``
        threads everything reachable from ``entry`` that is defined in the
        program (builtins and foreign calls excluded automatically).
    entry:
        The procedure whose completion means "the application is done".
        A ``boot`` wrapper with the entry's original arity is generated,
        together with its server dispatch rule.
    sync_outputs:
        ``indicator -> argument position`` (0-based) for calls (typically
        foreign, like ``eval/4``) whose completion is the binding of an
        output argument.
    """

    name = "short-circuit"

    def __init__(
        self,
        entry: tuple[str, int],
        procs: set[tuple[str, int]] | None = None,
        sync_outputs: dict[tuple[str, int], int] | None = None,
        add_server_rule: bool = True,
    ):
        self.entry = entry
        self.procs = procs
        self.sync_outputs = dict(sync_outputs or {})
        self.add_server_rule = add_server_rule

    def _affected(self, program: Program) -> set[tuple[str, int]]:
        graph = CallGraph(program)
        if self.entry not in graph.defined:
            raise TransformError(
                f"short-circuit entry {self.entry[0]}/{self.entry[1]} "
                f"is not defined in {program.name!r}"
            )
        if self.procs is not None:
            return set(self.procs) & graph.defined
        return graph.reachable_from({self.entry}) & graph.defined

    def apply(self, program: Program) -> Program:
        affected = self._affected(program)
        defined = set(program.indicators)
        for name, arity in affected:
            shifted = (name, arity + 2)
            if shifted in defined and shifted not in affected:
                raise TransformError(
                    f"short-circuit threading {name}/{arity} would collide "
                    f"with the existing procedure {name}/{arity + 2}"
                )
        out = Program(name=program.name)
        for rule in program.rules():
            renamed = rule.rename()
            if renamed.indicator in affected:
                out.add_rule(self._thread_rule(renamed, affected))
            else:
                out.add_rule(renamed)
        self._add_support(out)
        return out

    def _thread_rule(self, rule: Rule, affected: set[tuple[str, int]]) -> Rule:
        left, right = Var("L"), Var("R")
        head = Struct(rule.head.functor, (*rule.head.args, left, right))
        # First pass: find the segment-consuming goals.
        segmented: list[int] = []
        for idx, goal in enumerate(rule.body):
            inner, _ = strip_placement(goal)
            if inner.indicator in affected or inner.indicator in self.sync_outputs:
                segmented.append(idx)
        if not segmented:
            return Rule(head, rule.guards, [*rule.body, Struct(":=", (left, right))])
        body: list[Term] = []
        cursor = left
        remaining = len(segmented)
        for idx, goal in enumerate(rule.body):
            if idx not in segmented:
                body.append(goal)
                continue
            remaining -= 1
            nxt = right if remaining == 0 else Var("M")
            inner, where = strip_placement(goal)
            if inner.indicator in affected:
                threaded = Struct(inner.functor, (*inner.args, cursor, nxt))
                body.append(with_placement(threaded, where))
            else:  # sync output call: keep the call, add a wait segment
                body.append(goal)
                position = self.sync_outputs[inner.indicator]
                body.append(Struct("wait_done", (inner.args[position], cursor, nxt)))
            cursor = nxt
        return Rule(head, rule.guards, body)

    def _add_support(self, out: Program) -> None:
        entry_name, entry_arity = self.entry
        # boot(A1..Ak, Done) :- entry(A1..Ak, Done, done), watch(Done).
        # The circuit's left end is exposed as boot's last argument so other
        # motifs (e.g. the scheduler) can observe completion.
        args = [Var(f"A{i + 1}") for i in range(entry_arity)]
        done = Var("Done")
        out.add_rule(
            Rule(
                Struct(BOOT, (*args, done)),
                [],
                [
                    Struct(entry_name, (*args, done, Atom("done"))),
                    Struct(WATCH, (done,)),
                ],
            )
        )
        # watch(Done) :- known(Done) | halt.
        dv = Var("Done")
        out.add_rule(
            Rule(Struct(WATCH, (dv,)), [Struct("known", (dv,))], [Atom("halt")])
        )
        # wait_done(X, L, R) :- known(X) | L := R.
        x, l, r = Var("X"), Var("L"), Var("R")
        out.add_rule(
            Rule(
                Struct("wait_done", (x, l, r)),
                [Struct("known", (x,))],
                [Struct(":=", (l, r))],
            )
        )
        # server([boot(V1..Vk, Done) | In]) :- boot(V1..Vk, Done), server(In).
        # (Skipped when a later motif, e.g. the scheduler, provides its own
        # entry route for boot.)
        if self.add_server_rule:
            from repro.motifs.random_map import dispatch_rule

            out.add_rule(dispatch_rule(BOOT, entry_arity + 1))


def short_circuit_motif(
    entry: tuple[str, int],
    procs: set[tuple[str, int]] | None = None,
    sync_outputs: dict[tuple[str, int], int] | None = None,
    add_server_rule: bool = True,
):
    """The termination motif: the :class:`ShortCircuit` transformation with
    an empty library."""
    from repro.core.motif import Motif

    return Motif(
        name="termination",
        transformation=ShortCircuit(entry, procs, sync_outputs, add_server_rule),
    )
