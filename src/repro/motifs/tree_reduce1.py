"""Tree-Reduce-1 (paper §3.4) and the static-partition variant (§3.1).

``Tree1`` is a *library-only* motif (identity transformation) containing
exactly the paper's five-line divide-and-conquer reduction::

    reduce(tree(V, L, R), Value) :-
        reduce(R, RV) @ random,
        reduce(L, LV),
        eval(V, LV, RV, Value).
    reduce(leaf(X), Value) :- Value := X.

The full motif is the paper's composition

    Tree-Reduce-1 = Server ∘ Rand ∘ Tree1

optionally with the short-circuit termination stage between Tree1 and Rand
(Server ∘ Rand ∘ ShortCircuit ∘ Tree1), which lets the program halt its own
server network instead of relying on engine quiescence.

``static_tree_motif`` implements the §3.1 alternative — "a static partition
of the tree is probably ideal in the simple arithmetic example": subtrees
are placed by recursive range splitting, with no server network at all.
Experiment E6 compares the two under uniform and non-uniform node costs.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif

__all__ = [
    "TREE1_LIBRARY",
    "STATIC_LIBRARY",
    "SEQUENTIAL_LIBRARY",
    "tree1_motif",
    "tree_reduce_1",
    "static_tree_motif",
    "sequential_tree_motif",
]

TREE1_LIBRARY = """
% Divide-and-conquer tree reduction with random mapping (paper §3.4).
reduce(tree(V, L, R), Value) :-
    reduce(R, RV) @ random,
    reduce(L, LV),
    eval(V, LV, RV, Value).
reduce(leaf(X), Value) :- Value := X.
"""

STATIC_LIBRARY = """
% Static partition (paper §3.1): recursively split the processor range
% [Lo, Hi]; the right subtree goes to the first processor of the upper
% half.  Once a single processor remains, reduction stays local.
sreduce(tree(V, L, R), Value, Lo, Hi) :- Hi > Lo |
    Mid := (Lo + Hi) // 2,
    Mid1 := Mid + 1,
    sreduce(R, RV, Mid1, Hi) @ Mid1,
    sreduce(L, LV, Lo, Mid),
    eval(V, LV, RV, Value).
sreduce(tree(V, L, R), Value, Lo, Hi) :- Hi == Lo |
    sreduce(R, RV, Lo, Hi),
    sreduce(L, LV, Lo, Hi),
    eval(V, LV, RV, Value).
sreduce(leaf(X), Value, _, _) :- Value := X.
"""


SEQUENTIAL_LIBRARY = """
% Sequential baseline: plain recursive fold, no placement, no servers.
reduce_seq(tree(V, L, R), Value) :-
    reduce_seq(L, LV),
    reduce_seq(R, RV),
    eval(V, LV, RV, Value).
reduce_seq(leaf(X), Value) :- Value := X.
"""


def sequential_tree_motif() -> Motif:
    """Library-only sequential reduction (baseline for speedup figures)."""
    return Motif(name="sequential-tree", library=SEQUENTIAL_LIBRARY)


def tree1_motif() -> Motif:
    """The ``Tree1`` motif: identity transformation + the five-line library."""
    return Motif(name="tree1", library=TREE1_LIBRARY)


def tree_reduce_1(
    server_library: str = "ports",
    termination: bool = True,
) -> ComposedMotif:
    """``Tree-Reduce-1 = Server ∘ Rand ∘ [ShortCircuit ∘] Tree1``.

    With ``termination=True`` (default) the program halts its own server
    network via the short-circuit chain and the entry message is
    ``boot(Tree, Value)``; without it, rely on engine quiescence and the
    entry message is ``reduce(Tree, Value)``.
    """
    stack: list[Motif] = [tree1_motif()]
    if termination:
        stack.append(
            short_circuit_motif(
                entry=("reduce", 2),
                sync_outputs={("eval", 4): 3},
            )
        )
    stack.append(rand_motif())
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)


def static_tree_motif() -> Motif:
    """The static-partition reduction: a library-only motif, no servers."""
    return Motif(name="static-tree", library=STATIC_LIBRARY)
