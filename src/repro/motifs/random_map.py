"""The Rand and Random motifs (paper §3.3).

``Rand`` is a transformation-only motif (its library is empty) supporting
the ``@ random`` pragma:

1. every body goal ``P @ random`` becomes
   ``nodes(N), rand_num(N, R), send(R, P)`` — the process is shipped, as a
   message, to a randomly selected server;
2. a ``server/1`` definition is synthesized with one dispatch rule per
   ``@ random``-annotated process type, plus the ``halt`` rule (and an
   end-of-stream rule, a dialect addition that lets quiescence-closed
   servers terminate cleanly).

``Random = Server ∘ Rand`` — exactly the paper's composition.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.core.pragmas import RANDOM
from repro.errors import TransformError
from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Cons, NIL, Struct, Term, Var, deref
from repro.transform.rewrite import strip_placement
from repro.transform.transformation import Transformation
from repro.motifs.server import server_motif

__all__ = ["RandTransformation", "rand_motif", "random_motif", "dispatch_rule"]


def dispatch_rule(name: str, arity: int) -> Rule:
    """The paper's generated server rule for a process type ``p/n``::

        server([p(V1,...,Vn) | In]) :- p(V1,...,Vn), server(In).
    """
    variables = [Var(f"V{i + 1}") for i in range(arity)]
    message = Struct(name, variables)
    stream_tail = Var("In")
    head = Struct("server", (Cons(message, stream_tail),))
    body: list[Term] = [message, Struct("server", (stream_tail,))]
    return Rule(head, [], body)


def _halt_rule() -> Rule:
    return Rule(Struct("server", (Cons(Atom("halt"), Var("_")),)), [], [])


def _eos_rule() -> Rule:
    return Rule(Struct("server", (NIL,)), [], [])


class RandTransformation(Transformation):
    """Rewrite ``@ random`` pragmas into send-to-random-server code and
    synthesize the ``server/1`` dispatcher.

    Parameters
    ----------
    extra_entries:
        Additional ``name/arity`` pairs to generate dispatch rules for —
        "the process used to initiate execution of the application" when it
        is not itself annotated (paper §3.3 step 2).
    """

    name = "rand"

    def __init__(self, extra_entries: tuple[tuple[str, int], ...] = ()):
        self.extra_entries = tuple(extra_entries)

    def apply(self, program: Program) -> Program:
        annotated: list[tuple[str, int]] = []
        out = Program(name=program.name)
        for rule in program.rules():
            renamed = rule.rename()
            new_body: list[Term] = []
            for goal in renamed.body:
                inner, where = strip_placement(goal)
                if where is not None and deref(where) is RANDOM:
                    n, r = Var("N"), Var("R")
                    new_body.append(Struct("nodes", (n,)))
                    new_body.append(Struct("rand_num", (n, r)))
                    new_body.append(Struct("send", (r, inner)))
                    if inner.indicator not in annotated:
                        annotated.append(inner.indicator)
                else:
                    new_body.append(goal)
            out.add_rule(Rule(renamed.head, renamed.guards, new_body))

        entries = list(annotated)
        for extra in self.extra_entries:
            if extra not in entries:
                entries.append(extra)
        if not entries:
            raise TransformError(
                "Rand motif applied to a program with no '@ random' pragma "
                "and no explicit entries"
            )
        for name, arity in entries:
            out.add_rule(dispatch_rule(name, arity))
        existing = out.procedure("server", 1)
        heads = {r.head.args[0] for r in existing.rules} if existing else set()
        # halt and end-of-stream rules go last; skip if a motif lower in the
        # stack (e.g. termination) already provided them.
        if not any(_is_halt_head(h) for h in heads):
            out.add_rule(_halt_rule())
        if not any(deref(h) is NIL for h in heads):
            out.add_rule(_eos_rule())
        return out


def _is_halt_head(pattern: Term) -> bool:
    pattern = deref(pattern)
    return type(pattern) is Cons and deref(pattern.head) is Atom("halt")


def rand_motif(extra_entries: tuple[tuple[str, int], ...] = ()) -> Motif:
    """The ``Rand`` motif: the transformation above, empty library."""
    return Motif(name="rand", transformation=RandTransformation(extra_entries))


def random_motif(
    server_library: str = "ports",
    extra_entries: tuple[tuple[str, int], ...] = (),
) -> ComposedMotif:
    """``Random = Server ∘ Rand`` (paper §3.3)."""
    return server_motif(server_library).compose(rand_motif(extra_entries))
