"""Monitor motif — the §1 "Argonne monitor macros" analogue.

"The Argonne monitor macros and Schedule packages support load-balancing
on shared-memory computers" (§1).  The monitor macros' core abstraction is
mutual exclusion around shared state; in a dataflow language the same
abstraction is a **serializer**: a perpetual process that owns the state
and applies request operations one at a time, in arrival order.  Atomicity
is free — the loop carries the state from one request to the next, so no
two operations ever interleave.

The user supplies ``user_handle(Op, State, NewState, Reply)`` rules (or a
foreign procedure of that name) defining additional operations; common
ones (counter, lock, get/put) are built in.  Requests are sent through the
monitor's port from any processor::

    new_monitor(0, Counter),                 % shared counter at 0
    send_port(Counter, req(incr, R1)),       % R1 := new value, atomically
    send_port(Counter, req(get, V)).

The library also ships a ready-made counter and a test-and-set lock — the
two idioms the monitor macros were most used for.
"""

from __future__ import annotations

from repro.core.motif import Motif

__all__ = ["MONITOR_LIBRARY", "monitor_motif"]

MONITOR_LIBRARY = """
% new_monitor(Init, Port): a serializer owning Init; operations arrive as
% req(Op, Reply) messages on the port and are applied in arrival order.
new_monitor(Init, Port) :-
    open_port(Port, S),
    monitor_loop(S, Init).

monitor_loop([req(Op, Reply) | In], State) :-
    handle(Op, State, State1, Reply),
    monitor_loop(In, State1).
monitor_loop([], _).
monitor_loop([halt | _], _).

% Ready-made operations (users add their own handle/4 rules):
%   incr / decr          — counter; Reply := the new value
%   get                  — Reply := current state
%   put(V)               — replace state; Reply := old state
%   test_and_set         — lock acquire: Reply := got/busy (state 0 = free)
%   release              — lock release
handle(incr, State, State1, Reply) :-
    State1 := State + 1,
    Reply := State1.
handle(decr, State, State1, Reply) :-
    State1 := State - 1,
    Reply := State1.
handle(get, State, State1, Reply) :-
    State1 := State,
    Reply := State.
handle(put(V), State, State1, Reply) :-
    State1 := V,
    Reply := State.
handle(test_and_set, 0, State1, Reply) :-
    State1 := 1,
    Reply := got.
handle(test_and_set, 1, State1, Reply) :-
    State1 := 1,
    Reply := busy.
handle(release, _, State1, Reply) :-
    State1 := 0,
    Reply := released.
% Open extension point: unknown operations fall through to the user's
% user_handle/4 rules (program union keeps procedures closed, so the
% library delegates instead of letting users append to handle/4).
handle(Op, State, State1, Reply) :- otherwise |
    user_handle(Op, State, State1, Reply).
"""


def monitor_motif() -> Motif:
    """The monitor/serializer motif; ``monitor_loop/2`` is a service."""
    return Motif(
        name="monitor",
        library=MONITOR_LIBRARY,
        services={("monitor_loop", 2)},
    )
