"""Tree-Reduce-2 (paper §3.5): memory-bounded tree reduction.

"Each tree node is allocated to a randomly selected processor.  The value
of a node is computed when its offspring's values are available and is then
sent to the processor on which its parent is located.  At each processor,
computation is sequenced so that only a single node evaluation is active at
any given time.  This reduces memory consumption."

Protocol (after Figure 7):

* the tree is preprocessed into a *table*: a tuple whose ``i``-th entry
  describes node ``i`` — ``leaf(Data, ParentId, ParentLabel, Side)`` or
  ``op(Op, ParentId, ParentLabel, Side)`` — where labels are processor
  numbers: leaves random (sibling leaves share), internal nodes inherit
  their left child's label, so at most one of each node's two offspring
  values crosses the network (experiment E5 measures this);
* an ``init(Table, Sol)`` message makes the first server broadcast
  ``tree(Table, Sol)`` to every server and dispatch one
  ``value(ParentId, Side, Data)`` message per leaf;
* each server pairs incoming values by parent in its pending list; a
  completed pair schedules the parent's evaluation, *sequenced* through a
  token so only one ``eval`` is ever active per processor;
* a computed value is forwarded to the grandparent's label, or — at the
  root — bound to ``Sol`` followed by ``halt``.

The preprocessing (node identifiers, labels) is performed by
``label_table`` in :mod:`repro.apps.trees`, as the paper prescribes
("Labels are generated in a preprocessing step introduced by the
transformation").

``Tree-Reduce-2 = Server ∘ TreeReduce``.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.server import server_motif

__all__ = ["TREE_REDUCE_LIBRARY", "tree_reduce_motif", "tree_reduce_2"]

TREE_REDUCE_LIBRARY = """
% Tree-Reduce library (after Figure 7).  Server state is carried by the
% serve/4 loop: the (initially unbound) table and solution variables, the
% pending-value list, and the evaluation-sequencing token.
server(In) :- serve(In, _Table, _Sol, [], go).

serve([init(Table, Sol) | In], TableV, SolV, Pending, Tok) :-
    nodes(N),
    bcast_tree(N, Table, Sol),
    serve(In, TableV, SolV, Pending, Tok).
serve([tree(Table, Sol) | In], TableV, SolV, Pending, Tok) :-
    TableV := Table,
    SolV := Sol,
    serve(In, TableV, SolV, Pending, Tok).
serve([value(P, Side, V) | In], Table, Sol, Pending, Tok) :-
    take(P, Pending, Found, Pending1),
    handle(Found, P, Side, V, Table, Sol, Pending1, Pending2, Tok, Tok2),
    serve(In, Table, Sol, Pending2, Tok2).
% Initial leaf dispatches arrive under their own tag so experiments can
% separate setup traffic from reduction-phase value forwarding (E5).
serve([leafval(P, Side, V) | In], Table, Sol, Pending, Tok) :-
    take(P, Pending, Found, Pending1),
    handle(Found, P, Side, V, Table, Sol, Pending1, Pending2, Tok, Tok2),
    serve(In, Table, Sol, Pending2, Tok2).
serve([halt | _], _, _, _, _).
serve([], _, _, _, _).

% Broadcast the table, then dispatch every leaf's value message.
bcast_tree(N, Table, Sol) :- N > 0 |
    send(N, tree(Table, Sol)),
    N1 := N - 1,
    bcast_tree(N1, Table, Sol).
bcast_tree(0, Table, _) :- dispatch(Table).

dispatch(Table) :- length(Table, N), dispatch1(N, Table).
dispatch1(N, Table) :- N > 0 |
    arg(N, Table, Entry),
    dispatch_entry(Entry),
    N1 := N - 1,
    dispatch1(N1, Table).
dispatch1(0, _).
dispatch_entry(leaf(Data, PP, PPL, Side)) :- send(PPL, leafval(PP, Side, Data)).
dispatch_entry(op(_, _, _, _)).

% Pending-value bookkeeping: find (and remove) the sibling of (P, Side).
take(P, [pair(Q, S, V) | Rest], Found, Out) :- P == Q |
    Found := found(S, V),
    Out := Rest.
take(P, [pair(Q, S, V) | Rest], Found, Out) :- P =\\= Q |
    Out := [pair(Q, S, V) | Out1],
    take(P, Rest, Found, Out1).
take(_, [], Found, Out) :- Found := none, Out := [].

handle(none, P, Side, V, _, _, Pnd, PndOut, Tok, TokOut) :-
    note_value_produced,
    PndOut := [pair(P, Side, V) | Pnd],
    TokOut := Tok.
handle(found(left, LV), P, right, RV, Table, Sol, Pnd, PndOut, Tok, TokOut) :-
    note_value_consumed,
    schedule(P, LV, RV, Table, Sol, Tok, TokOut),
    PndOut := Pnd.
handle(found(right, RV), P, left, LV, Table, Sol, Pnd, PndOut, Tok, TokOut) :-
    note_value_consumed,
    schedule(P, LV, RV, Table, Sol, Tok, TokOut),
    PndOut := Pnd.

schedule(P, LV, RV, Table, Sol, Tok, TokOut) :-
    arg(P, Table, Entry),
    schedule1(Entry, LV, RV, Sol, Tok, TokOut).
schedule1(op(Op, PP, PPL, Side), LV, RV, Sol, Tok, TokOut) :-
    seq_eval(Op, LV, RV, PV, Tok, TokOut),
    emit(PV, PP, PPL, Side, Sol).

% The token sequences evaluations: seq_eval only fires when the previous
% evaluation on this processor has unlocked the token.
seq_eval(Op, LV, RV, PV, go, TokOut) :-
    eval(Op, LV, RV, PV),
    unlock(PV, TokOut).
unlock(PV, TokOut) :- known(PV) | TokOut := go.

emit(PV, PP, PPL, Side, Sol) :- known(PV) | emit1(PP, PPL, Side, PV, Sol).
emit1(-1, _, _, PV, Sol) :- Sol := PV, halt.
emit1(PP, PPL, Side, PV, _) :- PP > 0 | send(PPL, value(PP, Side, PV)).
"""


def tree_reduce_motif() -> Motif:
    """The ``TreeReduce`` motif: identity transformation + the library
    above.  ``serve/5`` (its post-Server arity) is a service process."""
    return Motif(
        name="tree-reduce",
        library=TREE_REDUCE_LIBRARY,
        services={("serve", 5)},
    )


def tree_reduce_2(server_library: str = "ports") -> ComposedMotif:
    """``Tree-Reduce-2 = Server ∘ TreeReduce`` (paper §3.5)."""
    return server_motif(server_library).compose(tree_reduce_motif())
