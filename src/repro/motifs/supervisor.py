"""The Supervise motif: fault tolerance as a transformation + library pair.

The paper's framework treats every parallel-programming concern as a motif
``M = (T, L)`` that composes with the others (§2.2); supervision is the
natural next layer once the machine model admits failures (processor
crashes, message drops — see :mod:`repro.machine.faults`).  The motif's
contract:

* **Annotation** — the user marks a body goal ``P @ supervised(Retries)``.
  The annotated goal's *output argument* (declared via ``outputs``) will be
  bound even if processors crash: by the computed value if any attempt
  completes, or by a configured fallback after ``Retries`` re-attempts time
  out (graceful degradation to a partial result).
* **Transformation** — threads a monitor stream ``Mon`` through the
  procedures that (transitively) contain supervised goals, rewrites each
  supervised goal into a ``watch`` request on the monitor, and generates a
  ``sup_run`` entry wrapper that opens the monitor port and starts the
  supervisor loop.
* **Library** — the supervisor service: for each watch request it runs an
  *attempt* (a fresh-variable copy of the goal, so retries never collide
  with stragglers from earlier attempts), arms a timeout, and on expiry
  retries with an exponentially backed-off timeout or degrades to the
  fallback.

Composition: ``Supervised-Tree-Reduce = Server ∘ Rand ∘ Supervise ∘ Tree1′``
where ``Tree1′`` is the five-line reduction with ``@ supervised(R)`` in
place of ``@ random``.  The Supervise library dispatches attempts with
``call(Copy) @ random``, so the Rand stage above it rewrites attempt
placement exactly as it rewrites user code — the motif adds fault handling
without its own placement machinery.

Correctness under crashes rests on one invariant the stack establishes:
*all cross-processor dataflow goes through supervised outputs*.  The entry
wrapper (and hence the supervisor and the left recursion spine) runs on
processor 1, which the default :class:`~repro.machine.faults.FaultPlan`
keeps immortal; every right-branch subcomputation is shipped out under
supervision.  A crash therefore kills only supervised attempts, whose
timeouts fire deterministically and whose retries land elsewhere.

Caveats (documented limits of the model):

* a supervised goal's *input* arguments must be bound when the goal is
  reached — the attempt copy freshens unbound variables, so dataflow still
  in flight would be severed;
* ``supervised(R)`` must be the goal's only annotation;
* the atom ``timeout`` is reserved: a computed value equal to ``timeout``
  is indistinguishable from an expiry.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.errors import TransformError
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.strand.program import Program, Rule
from repro.strand.terms import Struct, Term, Var, deref
from repro.transform.callgraph import CallGraph
from repro.transform.rewrite import strip_placement, with_placement
from repro.transform.transformation import Transformation

__all__ = [
    "SuperviseTransformation",
    "supervise_motif",
    "supervised_tree_reduce",
    "SUPERVISE_LIBRARY",
    "TREE1_SUP_LIBRARY",
    "SUP_RUN",
    "SUPERVISE_SERVICES",
]

SUP_RUN = "sup_run"

#: Service procedures of the Supervise motif.  The supervisor loop is
#: declared at both its own arity and the arity it gains when the Server
#: motif threads ``DT`` through it (services are indicator sets, and arity
#: shifts from outer motifs are part of normal composition).
SUPERVISE_SERVICES: frozenset[tuple[str, int]] = frozenset(
    {("supervisor", 2), ("supervisor", 3)}
)

SUPERVISE_LIBRARY = """
% Supervise library.  The monitor stream carries watch(Goal, K, Out,
% Retries) requests; the supervisor runs attempts until one binds the
% goal's K-th argument or retries are exhausted.
sup_watch(Goal, K, Out, Retries, Mon) :-
    send_port(Mon, watch(Goal, K, Out, Retries)).

supervisor([watch(Goal, K, Out, Retries) | In], Timeout) :-
    sup_attempt(Goal, K, Out, Retries, Timeout),
    supervisor(In, Timeout).
supervisor([halt | _], _).
supervisor([], _).

% One attempt: a fresh-variable copy of the goal (private output, so a
% straggler from a crashed attempt can never collide with a retry), shipped
% out for execution, raced against a timer via a private probe.
sup_attempt(Goal, K, Out, Retries, Timeout) :-
    sup_fresh(Goal, K, Copy, CopyOut),
    sup_spawn(Copy),
    sup_relay(CopyOut, Probe),
    after(Timeout, Probe),
    sup_check(Probe, Goal, K, Out, Retries, Timeout).

{spawn}

% First writer wins the probe; the second rule lets the timeout firing
% release a relay whose value will never arrive (dead attempt), so no
% suspension outlives the race.
sup_relay(V, Probe) :- known(V) | soft_bind(Probe, V).
sup_relay(_V, Probe) :- known(Probe) | true.

% Timed out with retries remaining: back off and re-attempt.
sup_check(timeout, Goal, K, Out, Retries, Timeout) :- Retries > 0 |
    sup_note(retry),
    R1 := Retries - 1,
    T1 := Timeout * {backoff},
    sup_attempt(Goal, K, Out, R1, T1).
% Out of retries: degrade gracefully to the fallback value.
sup_check(timeout, _Goal, _K, Out, 0, _Timeout) :-
    sup_note(degrade),
    soft_bind(Out, {fallback}).
% The attempt delivered a value before the timer fired.
sup_check(Value, _Goal, _K, Out, _Retries, _Timeout) :-
    known(Value), Value \\== timeout |
    soft_bind(Out, Value).
"""

#: Attempt-dispatch rule variants interpolated into the library.
_SPAWN_RANDOM = "sup_spawn(Copy) :- call(Copy) @ random."
_SPAWN_LOCAL = "sup_spawn(Copy) :- call(Copy)."

TREE1_SUP_LIBRARY = """
% Tree1 with supervised (instead of bare random) right-branch dispatch.
reduce(tree(V, L, R), Value) :-
    reduce(R, RV) @ supervised({retries}),
    reduce(L, LV),
    eval(V, LV, RV, Value).
reduce(leaf(X), Value) :- Value := X.
"""


def _supervised_annotation(where: Term | None) -> Struct | None:
    """The ``supervised(Retries)`` annotation struct, if that is what the
    placement is."""
    if where is None:
        return None
    where = deref(where)
    if type(where) is Struct and where.indicator == ("supervised", 1):
        return where
    return None


class SuperviseTransformation(Transformation):
    """Thread a monitor stream through supervised code and generate the
    entry wrapper.

    Parameters
    ----------
    outputs:
        ``indicator -> output argument position`` (1-based) for every goal
        type that may carry ``@ supervised(R)`` — the argument the
        supervisor guarantees to bind.
    entry:
        The procedure a ``sup_run`` wrapper (same arity) is generated for:
        ``sup_run(A1..Ak)`` opens the monitor port, starts the supervisor
        loop, and calls the entry with the monitor threaded.
    timeout:
        Initial attempt timeout in virtual time units; doubled (by the
        library's backoff factor) on every retry.
    """

    name = "supervise"

    def __init__(
        self,
        outputs: dict[tuple[str, int], int],
        entry: tuple[str, int],
        timeout: float = 40.0,
    ):
        self.outputs = dict(outputs)
        self.entry = entry
        self.timeout = timeout
        for (name, arity), k in self.outputs.items():
            if not 1 <= k <= arity:
                raise TransformError(
                    f"supervised output position {k} out of range for "
                    f"{name}/{arity}"
                )

    def apply(self, program: Program) -> Program:
        graph = CallGraph(program)
        sup_procs: set[tuple[str, int]] = set()
        for rule in program.rules():
            for goal in rule.body:
                _, where = strip_placement(goal)
                if _supervised_annotation(where) is not None:
                    sup_procs.add(rule.indicator)
        if not sup_procs:
            raise TransformError(
                "Supervise motif applied to a program with no "
                "'@ supervised(R)' annotation"
            )
        affected = (sup_procs | graph.callers_of(sup_procs)) & graph.defined
        if self.entry not in affected:
            raise TransformError(
                f"supervise entry {self.entry[0]}/{self.entry[1]} does not "
                f"reach any supervised goal"
            )
        defined = set(program.indicators)
        for name, arity in affected:
            shifted = (name, arity + 1)
            if shifted in defined and shifted not in affected:
                raise TransformError(
                    f"threading the monitor through {name}/{arity} would "
                    f"collide with the existing procedure {name}/{arity + 1}"
                )
        out = Program(name=program.name)
        for rule in program.rules():
            renamed = rule.rename()
            if renamed.indicator in affected:
                out.add_rule(self._thread_rule(renamed, affected))
            else:
                out.add_rule(renamed)
        self._add_entry(out)
        return out

    def _thread_rule(self, rule: Rule, affected: set[tuple[str, int]]) -> Rule:
        mon = Var("Mon")
        head = Struct(rule.head.functor, (*rule.head.args, mon))
        body: list[Term] = []
        for goal in rule.body:
            inner, where = strip_placement(goal)
            annotation = _supervised_annotation(where)
            if annotation is not None:
                indicator = inner.indicator
                k = self.outputs.get(indicator)
                if k is None:
                    raise TransformError(
                        f"supervised goal {indicator[0]}/{indicator[1]} has "
                        f"no declared output position (pass it in 'outputs')"
                    )
                out_var = inner.args[k - 1]
                target = inner
                if indicator in affected:
                    target = Struct(inner.functor, (*inner.args, mon))
                body.append(
                    Struct(
                        "sup_watch",
                        (target, k, out_var, annotation.args[0], mon),
                    )
                )
                continue
            if inner.indicator in affected:
                threaded = Struct(inner.functor, (*inner.args, mon))
                body.append(with_placement(threaded, where))
                continue
            body.append(goal)
        return Rule(head, rule.guards, body)

    def _add_entry(self, out: Program) -> None:
        # sup_run(A1..Ak) :-
        #     open_port(Mon, S), supervisor(S, Timeout), entry(A1..Ak, Mon).
        name, arity = self.entry
        args = [Var(f"A{i + 1}") for i in range(arity)]
        mon, stream = Var("Mon"), Var("S")
        out.add_rule(
            Rule(
                Struct(SUP_RUN, tuple(args)),
                [],
                [
                    Struct("open_port", (mon, stream)),
                    Struct("supervisor", (stream, self.timeout)),
                    Struct(name, (*args, mon)),
                ],
            )
        )


def supervise_motif(
    outputs: dict[tuple[str, int], int],
    entry: tuple[str, int],
    *,
    timeout: float = 40.0,
    backoff: int = 2,
    fallback: str = "0",
    place: str = "random",
) -> Motif:
    """The Supervise motif.

    ``place`` selects attempt dispatch: ``"random"`` (default) emits
    ``call(Copy) @ random`` — requiring a Rand/Server stage above in the
    stack — while ``"local"`` runs attempts on the supervisor's processor
    (for standalone use).  ``fallback`` is Strand source text for the
    degradation value.
    """
    if place == "random":
        spawn = _SPAWN_RANDOM
    elif place == "local":
        spawn = _SPAWN_LOCAL
    else:
        raise ValueError(f"unknown placement {place!r}; use 'random' or 'local'")
    return Motif(
        name="supervise",
        transformation=SuperviseTransformation(outputs, entry, timeout),
        library=SUPERVISE_LIBRARY.format(
            spawn=spawn, backoff=backoff, fallback=fallback
        ),
        services=SUPERVISE_SERVICES,
    )


def supervised_tree_reduce(
    retries: int = 3,
    timeout: float = 600.0,
    backoff: int = 2,
    fallback: str = "0",
    server_library: str = "ports",
) -> ComposedMotif:
    """``Supervised-Tree-Reduce = Server ∘ Rand ∘ Supervise ∘ Tree1′``.

    The entry message is ``sup_run(Tree, Value)`` (sent via ``create/2``,
    like ``boot`` in the termination stack); ``Value`` is bound to the
    reduction result, or to the fallback for subtrees whose every attempt
    timed out.  ``timeout`` must exceed the fault-free completion time of
    the largest supervised subcomputation (half the tree), or healthy
    attempts will be retried and eventually degraded.
    """
    tree1_sup = Motif(
        name="tree1-sup", library=TREE1_SUP_LIBRARY.format(retries=retries)
    )
    supervise = supervise_motif(
        outputs={("reduce", 2): 2},
        entry=("reduce", 2),
        timeout=timeout,
        backoff=backoff,
        fallback=fallback,
    )
    return ComposedMotif(
        [
            tree1_sup,
            supervise,
            rand_motif(extra_entries=((SUP_RUN, 2),)),
            server_motif(server_library),
        ]
    )
