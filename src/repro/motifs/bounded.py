"""Bounded-buffer stream motif — flow control as a building-block motif.

The paper's Figure 1 demonstrates fully synchronous communication: the
producer sends one item and waits for its acknowledgement (a window of 1).
This motif generalizes the idiom to a window of ``K``: a relay forwards a
stream while never letting more than ``K`` items be outstanding
(sent-but-unacknowledged).  The consumer acknowledges the Figure-1 way, by
assigning each message's acknowledgement variable::

    consume([msg(X, Ack) | In]) :- Ack := done, ..., consume(In).

A window is the standard cure for the unbounded-producer memory blow-up —
the stream sibling of Tree-Reduce-2's "one evaluation at a time" (§3.5):
both trade concurrency for a hard bound on live intermediate data.

The relay calls the engine's no-cost instrumentation hooks, so a run's
``peak_live_values`` is exactly the maximum number of outstanding items —
tests assert it never exceeds ``K``.
"""

from __future__ import annotations

from repro.core.motif import Motif

__all__ = ["BOUNDED_LIBRARY", "bounded_motif"]

BOUNDED_LIBRARY = """
% bounded(K, Xs, Ys): forward Xs to Ys as msg(Item, Ack) pairs, with at
% most K unacknowledged messages outstanding.
bounded(K, Xs, Ys) :- bb(Xs, Ys, K, []).

% Credit available: send, remember the acknowledgement variable.
bb([X | Xs], Ys, Credit, Pending) :- Credit > 0 |
    note_value_produced,
    Ys := [msg(X, Ack) | Ys1],
    append_ack(Pending, Ack, Pending1),
    Credit1 := Credit - 1,
    bb(Xs, Ys1, Credit1, Pending1).
% No credit: wait for the oldest acknowledgement.
bb(Xs, Ys, 0, [Ack | Pending]) :- Ack == done |
    note_value_consumed,
    bb(Xs, Ys, 1, Pending).
% Input exhausted: close the output (outstanding acks are irrelevant).
bb([], Ys, _, _) :- Ys := [].

append_ack([A | Rest], Ack, Out) :-
    Out := [A | Rest1],
    append_ack(Rest, Ack, Rest1).
append_ack([], Ack, Out) :- Out := [Ack].

% A standard acknowledging consumer that collects the items.
bounded_collect([msg(X, Ack) | In], Items) :-
    Ack := done,
    Items := [X | Items1],
    bounded_collect(In, Items1).
bounded_collect([], Items) :- Items := [].
"""


def bounded_motif() -> Motif:
    """Library-only bounded-buffer motif (``bounded/3`` + a collector)."""
    return Motif(name="bounded-buffer", library=BOUNDED_LIBRARY)
