"""The Server motif (paper §3.2).

Provides "a fully connected set of named servers, each capable of initiating
computations upon receipt of messages from other servers".  The user writes
a ``server/1`` procedure over an incoming message stream, using three
operations:

* ``send(Node, Msg)`` — deliver ``Msg`` to server ``Node``;
* ``nodes(N)``       — bind ``N`` to the number of servers;
* ``halt``           — broadcast the ``halt`` message to every server.

The motif's transformation threads the output tuple ``DT`` through the call
graph and rewrites the operations (paper steps 1–4)::

    send(Node, Msg)  →  distribute(Node, Msg, DT)
    nodes(N)         →  length(DT, N)
    halt             →  broadcast(halt, DT)

Two interchangeable library programs are provided (DESIGN.md §2):

* :data:`PORT_LIBRARY` — each server owns one *port*; every other server
  appends to it directly.  This is the robust default.
* :data:`MERGE_LIBRARY` — the literal Figure-3 architecture: N² streams,
  with each server's input formed by an explicit binary ``merge`` tree.
  Messages cost extra reductions in the merge chain; experiment E9
  measures the difference.
"""

from __future__ import annotations

from repro.core.motif import Motif
from repro.strand.terms import Atom, Struct, Term, Var
from repro.transform.argthread import ThreadArgument

__all__ = [
    "server_transformation",
    "server_motif",
    "PORT_LIBRARY",
    "MERGE_LIBRARY",
    "SERVER_SERVICES",
]

PORT_LIBRARY = """
% Server library (port network).  create(N, Msg) builds N servers on
% processors 1..N, each reading its own port; DT is the tuple of ports.
create(N, Msg) :-
    make_tuple(N, DT),
    spawn_servers(N, DT),
    distribute(1, Msg, DT).

spawn_servers(N, DT) :- N > 0 |
    server_init(N, DT) @ N,
    N1 := N - 1,
    spawn_servers(N1, DT).
spawn_servers(0, _).

% Runs on the server's own processor so the port is owned locally.
server_init(N, DT) :-
    open_port(Port, Stream),
    put_arg(N, DT, Port),
    server(Stream, DT).

% halt support: append Msg to every server stream in DT.
broadcast(Msg, DT) :- length(DT, N), bcast(N, Msg, DT).
bcast(N, Msg, DT) :- N > 0 |
    distribute(N, Msg, DT),
    N1 := N - 1,
    bcast(N1, Msg, DT).
bcast(0, _, _).
"""

MERGE_LIBRARY = """
% Server library (merge network, after Figure 3).  Each pair of servers
% (i, j) gets a dedicated stream; receiver j merges its N input streams
% into one with a chain of binary merges.  Cols is a tuple of columns;
% column K holds the write ports into receiver K, indexed by writer.
create(N, Msg) :-
    make_tuple(N, Cols),
    start_receivers(N, N, Cols),
    send_initial(Msg, Cols).

start_receivers(K, N, Cols) :- K > 0 |
    receiver_init(K, N, Cols) @ K,
    K1 := K - 1,
    start_receivers(K1, N, Cols).
start_receivers(0, _, _).

receiver_init(K, N, Cols) :-
    make_tuple(N, Col),
    put_arg(K, Cols, Col),
    open_ports(N, Col, Streams),
    merge_all(Streams, In),
    make_dt(N, K, Cols, DT),
    server(In, DT).

open_ports(N, Col, Streams) :- N > 0 |
    open_port(P, S),
    put_arg(N, Col, P),
    Streams := [S | Rest],
    N1 := N - 1,
    open_ports(N1, Col, Rest).
open_ports(0, _, Streams) :- Streams := [].

merge_all([S], In) :- In := S.
merge_all([S1, S2 | Rest], In) :-
    merge(S1, S2, M),
    merge_all([M | Rest], In).
merge_all([], In) :- In := [].

% DT for receiver K: DT[J] = Cols[J][K], the port writing from K to J.
make_dt(N, K, Cols, DT) :- make_tuple(N, DT), fill_dt(N, K, Cols, DT).
fill_dt(J, K, Cols, DT) :- J > 0 |
    arg(J, Cols, Col),
    arg(K, Col, P),
    put_arg(J, DT, P),
    J1 := J - 1,
    fill_dt(J1, K, Cols, DT).
fill_dt(0, _, _, _).

send_initial(Msg, Cols) :-
    arg(1, Cols, Col),
    arg(1, Col, P),
    send_port(P, Msg).

broadcast(Msg, DT) :- length(DT, N), bcast(N, Msg, DT).
bcast(N, Msg, DT) :- N > 0 |
    distribute(N, Msg, DT),
    N1 := N - 1,
    bcast(N1, Msg, DT).
bcast(0, _, _).
"""

#: Service procedures introduced by the Server motif: the transformed user
#: server loop.  (``merge/3`` is always a service at the engine level.)
SERVER_SERVICES: frozenset[tuple[str, int]] = frozenset({("server", 2)})


def _rewrite_send(goal: Struct, dt: Var) -> list[Term]:
    node, msg = goal.args
    return [Struct("distribute", (node, msg, dt))]


def _rewrite_nodes(goal: Struct, dt: Var) -> list[Term]:
    return [Struct("length", (dt, goal.args[0]))]


def _rewrite_halt(goal: Struct, dt: Var) -> list[Term]:
    return [Struct("broadcast", (Atom("halt"), dt))]


def server_transformation() -> ThreadArgument:
    """The Server transformation (steps 1–4 of §3.2)."""
    return ThreadArgument(
        ops={
            ("send", 2): _rewrite_send,
            ("nodes", 1): _rewrite_nodes,
            ("halt", 0): _rewrite_halt,
        },
        var_hint="DT",
        also_thread=(("server", 1),),
        name="server",
    )


def server_motif(library: str = "ports") -> Motif:
    """The Server motif with the chosen library implementation.

    ``library`` is ``"ports"`` (default) or ``"merge"`` (Figure-3 style).
    """
    if library == "ports":
        source = PORT_LIBRARY
    elif library == "merge":
        source = MERGE_LIBRARY
    else:
        raise ValueError(f"unknown server library {library!r}; use 'ports' or 'merge'")
    return Motif(
        name=f"server[{library}]",
        transformation=server_transformation(),
        library=source,
        services=SERVER_SERVICES,
    )
