"""Graph-theory motif — §4 future work ("various graph theory problems").

Single-source shortest paths by **asynchronous chaotic relaxation** over a
vertex-partitioned graph: each worker owns a slice of the adjacency
structure and a table of tentative distances; ``visit(Node, D)`` messages
relax distances and propagate ``D+1`` to the node's neighbours (owner =
``Node mod P + 1``).  No global synchronization exists — the computation
is finished exactly when the message system is quiet, which the engine's
quiescence detection turns into end-of-stream on every worker's port, at
which point each worker publishes its local distance table.

This is the §1 DIME shape again (system owns the distributed structure and
the communication; the user's "code per node" here is the relaxation
rule), built from ports and streams with no server-motif dependency — a
demonstration that motifs can be authored directly against the substrate.

Unweighted edges (BFS distances); the relaxation loop is exactly
Bellman–Ford's, so the result equals the true shortest path length at
quiescence regardless of message ordering.
"""

from __future__ import annotations

from repro.core.motif import Motif
from repro.errors import MotifError
from repro.strand.terms import Struct, Term, Tup, Var

__all__ = ["GRAPH_LIBRARY", "graph_motif", "sssp_goals"]

GRAPH_LIBRARY = """
% gworker(K, Part, Ports, Result): own the port for worker K, then serve
% visit messages against the local adjacency part.
%   Part   — list of adj(Node, Neighbours)
%   Ports  — shared tuple; slot K is filled by this worker
%   Result — bound to the local dist(Node, D) list at quiescence
gwork(K, Part, Ports, Result) :-
    open_port(P, S),
    put_arg(K, Ports, P),
    gserve(S, Part, Ports, [], Result).

gserve([visit(Node, D) | In], Part, Ports, Dists, Result) :-
    relax(Node, D, Dists, Dists1, Improved),
    forward(Improved, Node, D, Part, Ports),
    gserve(In, Part, Ports, Dists1, Result).
gserve([], _, _, Dists, Result) :- Result := Dists.
gserve([halt | _], _, _, Dists, Result) :- Result := Dists.

% relax: keep the smaller distance; Improved := yes iff the table changed.
relax(Node, D, [dist(Node2, D2) | Rest], Out, Improved) :- Node == Node2, D < D2 |
    Out := [dist(Node2, D) | Rest],
    Improved := yes.
relax(Node, D, [dist(Node2, D2) | Rest], Out, Improved) :- Node == Node2, D >= D2 |
    Out := [dist(Node2, D2) | Rest],
    Improved := no.
relax(Node, D, [dist(Node2, D2) | Rest], Out, Improved) :- Node =\\= Node2 |
    Out := [dist(Node2, D2) | Rest1],
    relax(Node, D, Rest, Rest1, Improved).
relax(Node, D, [], Out, Improved) :-
    Out := [dist(Node, D)],
    Improved := yes.

% An improved distance propagates D+1 to every neighbour's owner.
forward(yes, Node, D, Part, Ports) :-
    lookup(Node, Part, Neighbours),
    D1 := D + 1,
    fan(Neighbours, D1, Ports).
forward(no, _, _, _, _).

lookup(Node, [adj(Node2, Ns) | _], Out) :- Node == Node2 | Out := Ns.
lookup(Node, [adj(Node2, _) | Rest], Out) :- Node =\\= Node2 |
    lookup(Node, Rest, Out).
lookup(_, [], Out) :- Out := [].

fan([Nb | Rest], D, Ports) :-
    length(Ports, NP),
    O := Nb mod NP + 1,
    distribute(O, visit(Nb, D), Ports),
    fan(Rest, D, Ports).
fan([], _, _).

% Kick the computation: deliver visit(Source, 0) to the source's owner.
gstart(Source, Ports) :-
    length(Ports, NP),
    O := Source mod NP + 1,
    distribute(O, visit(Source, 0), Ports).
"""


def graph_motif() -> Motif:
    """Library-only graph motif; ``gserve/5`` is a quiescence service."""
    return Motif(
        name="graph-sssp",
        library=GRAPH_LIBRARY,
        services={("gserve", 5)},
    )


def sssp_goals(
    adjacency: dict[int, list[int]],
    source: int,
    workers: int,
) -> tuple[list[Term], list[Var], Tup]:
    """Build the worker goals for a single-source shortest-path run.

    ``adjacency`` maps node id → neighbour ids (node ids are arbitrary
    non-negative ints).  Node ``n`` is owned by worker ``n mod workers + 1``
    and placed on that processor.

    Returns ``(goals, result_vars, ports_tuple)``; after the run, worker
    ``k``'s ``result_vars[k-1]`` holds its ``dist(Node, D)`` list.
    """
    if workers < 1:
        raise MotifError("sssp needs at least one worker")
    if source not in adjacency:
        raise MotifError(f"source {source} is not a node of the graph")
    from repro.strand.foreign import from_python

    parts: list[list[Term]] = [[] for _ in range(workers)]
    for node, neighbours in sorted(adjacency.items()):
        owner = node % workers
        parts[owner].append(
            Struct("adj", (node, from_python(sorted(neighbours))))
        )
    ports = Tup([Var(f"P{k + 1}") for k in range(workers)])
    goals: list[Term] = []
    results: list[Var] = []
    for k in range(workers):
        result = Var(f"Dists{k + 1}")
        results.append(result)
        from repro.strand.terms import Cons, NIL

        part_term: Term = NIL
        for entry in reversed(parts[k]):
            part_term = Cons(entry, part_term)
        worker = Struct("gwork", (k + 1, part_term, ports, result))
        goals.append(Struct("@", (worker, k + 1)))
    goals.append(Struct("gstart", (source, ports)))
    return goals, results, ports
