"""Registration of the §4 future-work motifs with the default registry."""

from __future__ import annotations

from repro.core.registry import MotifRegistry
from repro.motifs.bnb import bnb_motif, bnb_stack
from repro.motifs.bounded import bounded_motif
from repro.motifs.collective import collective_motif
from repro.motifs.dnc import dnc_motif, dnc_stack
from repro.motifs.graph import graph_motif
from repro.motifs.farm import farm_motif, farm_stack
from repro.motifs.grid import grid_motif
from repro.motifs.monitor import monitor_motif
from repro.motifs.pipeline import pipeline_motif
from repro.motifs.scheduler import scheduled_application, scheduler_motif
from repro.motifs.search import search_motif, search_stack
from repro.motifs.sort import sort_motif, sort_stack

__all__ = ["register_all"]


def register_all(registry: MotifRegistry) -> None:
    registry.register("scheduler", scheduler_motif)
    registry.register("scheduled", scheduled_application)
    registry.register("farm", farm_motif)
    registry.register("farm-stack", farm_stack)
    registry.register("pipeline", pipeline_motif)
    registry.register("dnc", dnc_motif)
    registry.register("dnc-stack", dnc_stack)
    registry.register("search", search_motif)
    registry.register("search-stack", search_stack)
    registry.register("sort", sort_motif)
    registry.register("sort-stack", sort_stack)
    registry.register("grid", grid_motif)
    registry.register("graph-sssp", graph_motif)
    registry.register("bounded-buffer", bounded_motif)
    registry.register("monitor", monitor_motif)
    registry.register("collective", collective_motif)
    registry.register("bnb", bnb_motif)
    registry.register("bnb-stack", bnb_stack)
