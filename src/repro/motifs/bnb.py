"""Branch-and-bound motif — a specialized search motif (§3.6: "many
applications will benefit from specialized motifs tailored to their
particular requirements"; §4 lists search).

Distributed best-first pruning with an **incumbent broadcast** protocol:

* every server keeps a local copy of the best solution value found so far;
* exploration tasks (``explore`` messages, randomly mapped) are *bounded*
  on arrival: if the node's optimistic bound cannot beat the local
  incumbent, the subtree is pruned;
* leaf improvements go to server 1 (the incumbent manager), which
  rebroadcasts ``newbest`` to every server — stale local incumbents only
  cost pruning opportunities, never correctness;
* termination is the short-circuit chain *written out in library form*
  (each task carries its ``(L, R)`` segment; pruning and leaves close
  segments, expansion splits them) — the same §3.3 technique the
  ``termination`` motif automates, here shown as a manual idiom because
  the segments must travel inside messages the library itself fans out.

The user supplies four (typically foreign) procedures over search nodes:

* ``bound_bb(Node, B)``   — optimistic bound on the subtree's best value;
* ``leaf_bb(Node, F)``    — ``F := 1`` for complete solutions else 0;
* ``value_bb(Node, V)``   — a complete solution's value;
* ``expand_bb(Node, Ks)`` — child nodes.

``BnB = Server ∘ BnBLib``; entry message ``binit(Root, Best)``.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.server import server_motif

__all__ = ["BNB_LIBRARY", "bnb_motif", "bnb_stack"]

BNB_LIBRARY = """
% Stateful server loop: bserve(In, Best, Sol).
server(In) :- bserve(In, 0, nosol).

% The initial message starts the root task and the termination watch.
bserve([binit(Root, Sol) | In], _, _) :-
    nodes(N),
    rand_num(N, W),
    send(W, explore(Root, L, done)),
    bb_watch(L),
    bserve(In, 0, Sol).

% An exploration task: bounded against the local incumbent at dequeue.
bserve([explore(Node, L, R) | In], Best, Sol) :-
    step(Node, Best, L, R),
    bserve(In, Best, Sol).

% Improvement reports (manager only — everyone else never receives best/1).
bserve([best(V) | In], Best, Sol) :- V > Best |
    nodes(N),
    bcast_best(N, V),
    bserve(In, V, Sol).
bserve([best(V) | In], Best, Sol) :- V =< Best |
    bserve(In, Best, Sol).

% Incumbent broadcasts: keep the max.
bserve([newbest(V) | In], Best, Sol) :- V > Best |
    bserve(In, V, Sol).
bserve([newbest(V) | In], Best, Sol) :- V =< Best |
    bserve(In, Best, Sol).

% The watch's finish lands on the manager before its halt broadcast does
% (same source, FIFO): publish the answer.
bserve([finish | In], Best, Sol) :-
    Sol := Best,
    bserve(In, Best, Sol).
bserve([halt | _], _, _).
bserve([], _, _).

bb_watch(L) :- known(L) | send(1, finish), halt.

bcast_best(N, V) :- N > 0 |
    send(N, newbest(V)),
    N1 := N - 1,
    bcast_best(N1, V).
bcast_best(0, _).

% One task step: prune, record a leaf, or expand.
step(Node, Best, L, R) :-
    bound_bb(Node, Bound),
    step1(Bound, Best, Node, L, R).
step1(Bound, Best, _, L, R) :- Bound =< Best |
    L := R.
step1(Bound, Best, Node, L, R) :- Bound > Best |
    leaf_bb(Node, IsLeaf),
    step2(IsLeaf, Node, Best, L, R).
step2(1, Node, Best, L, R) :-
    value_bb(Node, V),
    report_best(V, Best),
    L := R.
step2(0, Node, _, L, R) :-
    expand_bb(Node, Kids),
    fan_bb(Kids, L, R).

report_best(V, Best) :- V > Best | send(1, best(V)).
report_best(V, Best) :- V =< Best | true.

% Fan children out to random servers, splitting the circuit segment.
fan_bb([K | Ks], L, R) :-
    nodes(N),
    rand_num(N, W),
    send(W, explore(K, L, M)),
    fan_bb(Ks, M, R).
fan_bb([], L, R) :- L := R.
"""


def bnb_motif() -> Motif:
    """The branch-and-bound library motif; ``bserve/4`` (post-Server
    arity) is its service loop."""
    return Motif(
        name="branch-and-bound",
        library=BNB_LIBRARY,
        services={("bserve", 4)},
    )


def bnb_stack(server_library: str = "ports") -> ComposedMotif:
    """``BnB = Server ∘ BnBLib``; entry message ``binit(Root, Best)``."""
    return server_motif(server_library).compose(bnb_motif())
