"""Grid/stencil motif — §4 future work ("grid problems"); cf. the DIME
package in §1 (mesh maintained by the system, user supplies per-node code).

A 1-D strip decomposition of a 2-D relaxation: each worker owns a strip of
rows, runs ``K`` sweeps, and exchanges boundary rows with its neighbours
through streams each iteration.  The user supplies the computational
procedures (typically foreign, cost ∝ strip size):

* ``top_row(Strip, Row)`` / ``bottom_row(Strip, Row)``;
* ``sweep(Strip, Above, Below, NewStrip)`` — one relaxation step, where
  ``Above``/``Below`` are neighbour boundary rows or the atom ``edge``.

The worker chain is assembled by :func:`grid_goals` (stream variables and
``@ J`` placements built directly), mirroring how DIME "maintains the mesh
data structure on a parallel computer and handles communication".
"""

from __future__ import annotations

from repro.core.motif import Motif
from repro.errors import MotifError
from repro.strand.terms import Struct, Term, Var

__all__ = ["GRID_LIBRARY", "grid_motif", "grid_goals"]

GRID_LIBRARY = """
% gworker(Strip, K, UpIn, UpOut, DownIn, DownOut, Result):
% run K sweeps, exchanging boundary rows on the four streams.
gworker(Strip, 0, _, UpOut, _, DownOut, Result) :-
    UpOut := [],
    DownOut := [],
    Result := Strip.
gworker(Strip, K, UpIn, UpOut, DownIn, DownOut, Result) :- K > 0 |
    top_row(Strip, Top),
    bottom_row(Strip, Bottom),
    UpOut := [Top | UpOut1],
    DownOut := [Bottom | DownOut1],
    recv(UpIn, Above, UpIn1),
    recv(DownIn, Below, DownIn1),
    sweep(Strip, Above, Below, Strip1),
    K1 := K - 1,
    gworker(Strip1, K1, UpIn1, UpOut1, DownIn1, DownOut1, Result).

recv([Row | Rest], Out, Tail) :- Out := Row, Tail := Rest.

% Fixed-boundary generator: K copies of the atom `edge`.
boundary_stream(K, S) :- K > 0 |
    S := [edge | S1],
    K1 := K - 1,
    boundary_stream(K1, S1).
boundary_stream(0, S) :- S := [].
"""


def grid_motif() -> Motif:
    """Library-only grid motif (workers + boundary streams)."""
    return Motif(name="grid", library=GRID_LIBRARY)


def grid_goals(strips: list[Term], iterations: int) -> tuple[list[Term], list[Var]]:
    """Build the worker-chain goals for the given strip terms.

    Worker ``i`` is placed on processor ``i``; between neighbours ``i`` and
    ``i+1`` two streams carry boundary rows (down from ``i``, up from
    ``i+1``).  The outermost streams are fed by ``boundary_stream``.

    Returns ``(goals, result_vars)``; spawn the goals and read each
    worker's final strip from the result variables after the run.
    """
    workers = len(strips)
    if workers < 1:
        raise MotifError("grid needs at least one strip")
    goals: list[Term] = []
    results: list[Var] = []
    # down[i] = stream from worker i to worker i+1; up[i] = the reverse.
    down = [Var(f"Dn{i}") for i in range(workers + 1)]
    up = [Var(f"Up{i}") for i in range(workers + 1)]
    goals.append(Struct("boundary_stream", (iterations, down[0])))
    goals.append(Struct("boundary_stream", (iterations, up[workers])))
    for i, strip in enumerate(strips):
        result = Var(f"Res{i + 1}")
        results.append(result)
        worker = Struct(
            "gworker",
            (
                strip,
                iterations,
                down[i],      # UpIn: boundary row arriving from above
                up[i],        # UpOut: my top row sent upward
                up[i + 1],    # DownIn: boundary row arriving from below
                down[i + 1],  # DownOut: my bottom row sent downward
                result,
            ),
        )
        goals.append(Struct("@", (worker, i + 1)))
    return goals, results
