"""Motif library: the paper's motifs (Server, Rand/Random, Tree-Reduce-1/2,
termination, scheduler) and the §4 future-work extensions."""

from repro.motifs.bnb import bnb_motif, bnb_stack
from repro.motifs.bounded import bounded_motif
from repro.motifs.collective import allreduce_goals, central_reduce_goals, collective_motif
from repro.motifs.graph import graph_motif, sssp_goals
from repro.motifs.monitor import monitor_motif
from repro.motifs.random_map import RandTransformation, rand_motif, random_motif
from repro.motifs.reliable import (
    ReliableTransformation,
    reliable_motif,
    reliable_tree_reduce,
)
from repro.motifs.server import (
    MERGE_LIBRARY,
    PORT_LIBRARY,
    server_motif,
    server_transformation,
)
from repro.motifs.supervisor import (
    SuperviseTransformation,
    supervise_motif,
    supervised_tree_reduce,
)
from repro.motifs.termination import ShortCircuit, short_circuit_motif
from repro.motifs.tree_reduce1 import (
    sequential_tree_motif,
    static_tree_motif,
    tree1_motif,
    tree_reduce_1,
)
from repro.motifs.tree_reduce2 import tree_reduce_2, tree_reduce_motif

__all__ = [
    "bnb_motif",
    "bnb_stack",
    "bounded_motif",
    "collective_motif",
    "allreduce_goals",
    "central_reduce_goals",
    "graph_motif",
    "monitor_motif",
    "sssp_goals",
    "server_motif",
    "server_transformation",
    "PORT_LIBRARY",
    "MERGE_LIBRARY",
    "rand_motif",
    "random_motif",
    "RandTransformation",
    "reliable_motif",
    "reliable_tree_reduce",
    "ReliableTransformation",
    "short_circuit_motif",
    "ShortCircuit",
    "supervise_motif",
    "supervised_tree_reduce",
    "SuperviseTransformation",
    "tree1_motif",
    "tree_reduce_1",
    "static_tree_motif",
    "sequential_tree_motif",
    "tree_reduce_motif",
    "tree_reduce_2",
]
