"""The Reliable motif: acked, retransmitted, deduplicated message delivery.

The machine's failure model (:mod:`repro.machine.faults`) can drop, delay,
and duplicate explicit messages, and sever links with time-windowed
partitions.  The Supervise motif answers with whole-task restart — one lost
message costs an entire attempt.  ``Reliable = (T_rel, L_rel)`` adds
*message-level* fault tolerance instead, as a motif that composes between
Rand and Server::

    Server ∘ Reliable ∘ Rand ∘ [Supervise ∘] Tree1

* **Transformation** — rewrites every top-level ``send(Node, Msg)`` goal
  (the sends Rand just emitted, plus any the user wrote) into
  ``rsend(Node, Msg)``, and wraps each Rand-generated dispatch rule
  ``server([p(V…)|In]) :- p(V…), server(In)`` with an ``rmsg``-accepting
  twin that acks, dedups, and then dispatches.  The original rules are
  kept, so local unwrapped traffic (``create``'s initial message) still
  matches.
* **Library** — the sender-side protocol: ``rsend`` draws a per-(sender,
  destination) sequence token (``rel_seq/2``), posts the message wrapped as
  ``rmsg(Tok, Msg, Ack)``, and races the ack against an ``after/2``
  retransmit timer with capped exponential backoff.  Acks are variable
  bindings, which the failure model delivers reliably — only the ``rmsg``
  itself can be lost.  When the retry cap is exhausted the destination is
  reported on the engine's status stream (``engine.rel_state.unreachable``,
  via ``rel_dead/2``) instead of retransmitting forever.
* **Receive side** — ``rel_accept/2`` consults the engine's seen-set and
  classifies each token ``new`` or ``dup``; duplicates (retransmissions
  that crossed their own ack, or network-duplicated deliveries) are acked
  and discarded without re-dispatching the payload.

Composition with Server is what gives ``rsend`` its published
``rsend(Node, Msg, DT)`` form: the library's ``rel_post`` calls
``send/2``, so Server's argument-threading transformation threads ``DT``
through the whole protocol and lowers the inner send to
``distribute/3`` — Reliable needs no placement or port machinery of its
own.

Guarantees and limits (documented in ``docs/MOTIFS.md``):

* delivery is *at-least-once* on the wire and *exactly-once* at dispatch
  (the seen-set suppresses redeliveries);
* a destination that is slow rather than dead can be falsely reported
  unreachable — inherent to timeout-based failure detection;
* the bootstrap (``create``'s remote ``server_init`` spawns) predates the
  protocol and is not protected; a server that never boots is exactly the
  "permanently unreachable" case the status stream reports.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.errors import TransformError
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.supervisor import SUP_RUN, TREE1_SUP_LIBRARY, supervise_motif
from repro.motifs.tree_reduce1 import tree1_motif
from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Cons, Struct, Term, Var, deref, term_eq
from repro.transform.transformation import Transformation

__all__ = [
    "ReliableTransformation",
    "reliable_motif",
    "reliable_tree_reduce",
    "RELIABLE_LIBRARY",
]

RELIABLE_LIBRARY = """
% Reliable library.  rsend/2 is the acked send: draw a sequence token,
% post the wrapped message, and race the ack against a retransmit timer.
% Server's transformation threads DT through this whole chain (rel_post
% calls send/2), turning rsend/2 into the published rsend(Node, Msg, DT).
rsend(Node, Msg) :-
    rel_seq(Node, Tok),
    rel_post(Node, Tok, Msg, Ack, {retries}, {timeout}).

rel_post(Node, Tok, Msg, Ack, Left, T) :-
    send(Node, rmsg(Tok, Msg, Ack)),
    after(T, Probe),
    rel_wait(Probe, Ack, Node, Tok, Msg, Left, T).

% Acked: defuse the pending timer (soft_bind makes the race benign) and
% stop.  This rule wins over the timeout rules whenever the ack is known,
% so a late ack after an expiry is still a success, not a retransmit.
rel_wait(Probe, Ack, _Node, _Tok, _Msg, _Left, _T) :- known(Ack) |
    soft_bind(Probe, done).
% Timed out with budget left: retransmit under capped exponential backoff.
rel_wait(timeout, Ack, Node, Tok, Msg, Left, T) :- Left > 0 |
    rel_note(retransmit),
    L1 := Left - 1,
    T1 := min(T * {backoff}, {max_timeout}),
    rel_post(Node, Tok, Msg, Ack, L1, T1).
% Budget exhausted: report the destination on the status stream instead of
% hanging the sender.
rel_wait(timeout, _Ack, Node, Tok, _Msg, 0, _T) :-
    rel_dead(Node, Tok).
"""


def _recv_name(indicator: tuple[str, int]) -> str:
    return f"rel_recv_{indicator[0]}_{indicator[1]}"


def _dispatch_shape(rule: Rule) -> Struct | None:
    """The dispatched message pattern when ``rule`` is a Rand-style server
    dispatch rule ``server([p(V…)|In]) :- p(V…), server(In)``; else None."""
    if rule.indicator != ("server", 1) or rule.guards or len(rule.body) != 2:
        return None
    arg = deref(rule.head.args[0])
    if type(arg) is not Cons:
        return None
    msg = deref(arg.head)
    if type(msg) is not Struct or msg.functor == "rmsg":
        return None
    first, second = (deref(goal) for goal in rule.body)
    if not term_eq(first, msg):
        return None
    if (
        type(second) is not Struct
        or second.indicator != ("server", 1)
        or deref(second.args[0]) is not deref(arg.tail)
    ):
        return None
    return msg


def _wrapped_rule(rule: Rule) -> Rule:
    """The ``rmsg``-accepting twin of a dispatch rule: ack, dedup, then
    dispatch the payload — while the stream advances regardless of the
    new/dup verdict."""
    msg = _dispatch_shape(rule)
    assert msg is not None
    tail = deref(rule.head.args[0]).tail
    tok, ack, verdict = Var("Tok"), Var("Ack"), Var("Verdict")
    head = Struct("server", (Cons(Struct("rmsg", (tok, msg, ack)), tail),))
    body: list[Term] = [
        Struct("rel_accept", (tok, verdict)),
        Struct(_recv_name(msg.indicator), (verdict, ack, *msg.args)),
        Struct("server", (tail,)),
    ]
    return Rule(head, [], body)


def _helper_rules(indicator: tuple[str, int]) -> list[Rule]:
    """``rel_recv_<p>_<n>``: ack then dispatch on ``new``; ack only on
    ``dup``.  The payload is called with explicit arguments (not via
    ``call/1``) so outer transformations — Server's DT threading — reach
    the payload procedure through the normal call graph."""
    name, arity = indicator
    recv = _recv_name(indicator)
    new_vars = tuple(Var(f"V{i + 1}") for i in range(arity))
    new_ack = Var("Ack")
    fresh = Rule(
        Struct(recv, (Atom("new"), new_ack, *new_vars)),
        [],
        [Struct("rel_ack", (new_ack,)), Struct(name, new_vars)],
    )
    dup_vars = tuple(Var(f"_V{i + 1}") for i in range(arity))
    dup_ack = Var("Ack")
    dup = Rule(
        Struct(recv, (Atom("dup"), dup_ack, *dup_vars)),
        [],
        [Struct("rel_ack", (dup_ack,))],
    )
    return [fresh, dup]


class ReliableTransformation(Transformation):
    """Rewrite ``send/2`` goals into the acked ``rsend/2`` protocol and wrap
    the server dispatch rules with ``rmsg``-accepting twins.

    Must sit *above* Rand (whose transformation emits the ``send`` goals
    and synthesizes the dispatch rules) and *below* Server (whose
    transformation threads ``DT`` through the protocol library).  Sends
    whose payload is an atom (the ``halt`` broadcast convention) are left
    unwrapped; sends with a literal structure payload must have a matching
    dispatch rule or the transformation refuses — an ``rmsg`` nobody
    unwraps would strand the receiver.
    """

    name = "reliable"

    def apply(self, program: Program) -> Program:
        renamed = [rule.rename() for rule in program.rules()]
        wrapped: list[tuple[str, int]] = []
        for rule in renamed:
            msg = _dispatch_shape(rule)
            if msg is not None and msg.indicator not in wrapped:
                wrapped.append(msg.indicator)
        if not wrapped:
            raise TransformError(
                "Reliable motif found no server/1 dispatch rules; compose "
                "it above Rand (Server ∘ Reliable ∘ Rand ∘ …)"
            )
        out = Program(name=program.name)
        covered = set(wrapped)
        for rule in renamed:
            if _dispatch_shape(rule) is not None:
                out.add_rule(rule)
                # A second rename keeps the twin's variables private.
                out.add_rule(_wrapped_rule(rule.rename()))
            else:
                out.add_rule(self._rewrite_sends(rule, covered))
        for indicator in wrapped:
            for helper in _helper_rules(indicator):
                out.add_rule(helper)
        return out

    def _rewrite_sends(self, rule: Rule, covered: set[tuple[str, int]]) -> Rule:
        body: list[Term] = []
        changed = False
        for goal in rule.body:
            inner = deref(goal)
            if type(inner) is Struct and inner.indicator == ("send", 2):
                payload = deref(inner.args[1])
                if type(payload) is Atom:
                    body.append(goal)  # halt-style control atoms stay raw
                    continue
                if type(payload) is Struct and payload.indicator not in covered:
                    raise TransformError(
                        f"send of {payload.indicator[0]}/{payload.indicator[1]} "
                        f"has no server dispatch rule to unwrap its rmsg; "
                        f"Reliable cannot deliver it"
                    )
                body.append(Struct("rsend", inner.args))
                changed = True
            else:
                body.append(goal)
        if not changed:
            return rule
        return Rule(rule.head, rule.guards, body)


def reliable_motif(
    retries: int = 6,
    timeout: float = 30.0,
    backoff: int = 2,
    max_timeout: float = 240.0,
) -> Motif:
    """The Reliable motif.

    ``timeout`` is the first retransmit deadline in virtual time — it must
    exceed a send/ack round trip, or healthy traffic retransmits
    spuriously (harmless, dedup absorbs it, but it inflates the message
    count).  Each retry multiplies the deadline by ``backoff`` up to
    ``max_timeout``; after ``retries`` unanswered posts the destination is
    reported unreachable.  The retry budget must outlast the longest
    partition the deployment should ride through:
    ``sum(min(timeout * backoff^i, max_timeout))`` over the retries is the
    time the protocol keeps trying.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout <= 0 or max_timeout < timeout:
        raise ValueError(
            f"need 0 < timeout <= max_timeout, got {timeout}, {max_timeout}"
        )
    return Motif(
        name="reliable",
        transformation=ReliableTransformation(),
        library=RELIABLE_LIBRARY.format(
            retries=retries, timeout=timeout, backoff=backoff,
            max_timeout=max_timeout,
        ),
    )


def reliable_tree_reduce(
    retries: int = 6,
    timeout: float = 30.0,
    backoff: int = 2,
    max_timeout: float = 240.0,
    supervise: bool = False,
    sup_retries: int = 3,
    sup_timeout: float = 600.0,
    sup_backoff: int = 2,
    fallback: str = "0",
    server_library: str = "ports",
) -> ComposedMotif:
    """``Server ∘ Reliable ∘ Rand ∘ Tree1`` — or, with ``supervise=True``,
    the full ``Server ∘ Reliable ∘ Rand ∘ Supervise ∘ Tree1′`` stack.

    Without supervision the entry message is ``reduce(Tree, Value)`` (sent
    via ``create/2``); Reliable recovers every lost dispatch message by
    retransmission, so the stack completes at drop rates where the bare
    Tree-Reduce-1 deadlocks.  With supervision the entry is
    ``sup_run(Tree, Value)``: Reliable protects the attempt dispatch while
    Supervise re-runs attempts whose *unprotected* dataflow (watch
    requests on the monitor port) was severed — run the engine with
    ``abandon_stragglers=True`` so superseded attempts stranded by message
    loss do not read as a deadlock.
    """
    stack: list[Motif] = []
    if supervise:
        stack.append(
            Motif(
                name="tree1-sup",
                library=TREE1_SUP_LIBRARY.format(retries=sup_retries),
            )
        )
        stack.append(
            supervise_motif(
                outputs={("reduce", 2): 2},
                entry=("reduce", 2),
                timeout=sup_timeout,
                backoff=sup_backoff,
                fallback=fallback,
            )
        )
        stack.append(rand_motif(extra_entries=((SUP_RUN, 2),)))
    else:
        stack.append(tree1_motif())
        stack.append(rand_motif())
    stack.append(reliable_motif(retries, timeout, backoff, max_timeout))
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)
