"""Generic divide-and-conquer motif — §4 future work.

The user supplies four procedures (Strand or foreign):

* ``is_base(P, Flag)``  — ``Flag := true/false``: is the problem trivial?
* ``base(P, R)``        — solve a trivial problem;
* ``split(P, P1, P2)``  — divide;
* ``combine(R1, R2, R)``— conquer.

The motif dispatches one branch of every split to a random processor —
``Tree1`` (§3.4) is exactly this motif specialized to tree structure, which
is why the paper lists divide and conquer among the motif candidates.

A depth bound keeps message grain sensible: below ``Depth`` remaining
levels of parallel splitting, recursion stays local (``ldnc``).
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif

__all__ = ["DNC_LIBRARY", "dnc_motif", "dnc_stack"]

DNC_LIBRARY = """
% dnc(Problem, Result, Depth): parallel divide and conquer with a depth
% bound on remote dispatch.
dnc(P, R, D) :- is_base(P, Flag), dnc1(Flag, P, R, D).
dnc1(true, P, R, _) :- base(P, R).
dnc1(false, P, R, D) :- D > 0 |
    split(P, P1, P2),
    D1 := D - 1,
    dnc(P2, R2, D1) @ random,
    dnc(P1, R1, D1),
    combine(R1, R2, R).
dnc1(false, P, R, 0) :- ldnc(P, R).

% Local (sequential) divide and conquer below the depth bound.
ldnc(P, R) :- is_base(P, Flag), ldnc1(Flag, P, R).
ldnc1(true, P, R) :- base(P, R).
ldnc1(false, P, R) :-
    split(P, P1, P2),
    ldnc(P1, R1),
    ldnc(P2, R2),
    combine(R1, R2, R).
"""


def dnc_motif() -> Motif:
    """Library-only generic divide-and-conquer motif."""
    return Motif(name="dnc", library=DNC_LIBRARY)


def dnc_stack(
    *,
    termination: bool = True,
    server_library: str = "ports",
    foreign_combine: bool = True,
) -> ComposedMotif:
    """``Server ∘ Rand ∘ [ShortCircuit ∘] DnC``.

    With termination, the entry message is ``boot(P, R, Depth, Done)``;
    without, ``dnc(P, R, Depth)``.  ``foreign_combine`` declares the user
    procedures as foreign for the short-circuit sync analysis (set False
    when they are Strand-defined — then they are threaded directly).
    """
    stack: list[Motif] = [dnc_motif()]
    if termination:
        sync = (
            {("combine", 3): 2, ("base", 2): 1}
            if foreign_combine
            else {}
        )
        stack.append(
            short_circuit_motif(entry=("dnc", 3), sync_outputs=sync)
        )
    stack.append(rand_motif())
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)
