"""Parallel tree-search motif — §4 future work; §1's or-parallel Prolog
example ("the user provides logic clauses that specify a search problem and
the system explores the corresponding search tree").

The user supplies two procedures (typically foreign):

* ``expand(Node, Children)`` — the node's children (a list; empty at dead
  ends and full solutions);
* ``sol(Node, S)``           — ``S := 1`` if the node is a solution else 0.

``explore(Node, Count, Depth)`` counts solutions in the subtree; nodes in
the first ``Depth`` levels fan their children out with ``@ random``, below
that exploration stays local (or-parallelism with bounded task grain).
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif

__all__ = [
    "SEARCH_LIBRARY",
    "COLLECT_LIBRARY",
    "search_motif",
    "search_stack",
    "collect_search_stack",
]

SEARCH_LIBRARY = """
% explore(Node, Count, Depth): count solutions in the subtree under Node.
explore(Node, C, D) :- D > 0 |
    expand(Node, Kids),
    sol(Node, S),
    D1 := D - 1,
    explore_list(Kids, C1, D1),
    C := S + C1.
explore(Node, C, 0) :- lexplore(Node, C).

explore_list([K | Ks], C, D) :-
    explore(K, C1, D) @ random,
    explore_list(Ks, C2, D),
    C := C1 + C2.
explore_list([], C, _) :- C := 0.

% Local exploration below the depth bound.
lexplore(Node, C) :-
    expand(Node, Kids),
    sol(Node, S),
    lexplore_list(Kids, C1),
    C := S + C1.
lexplore_list([K | Ks], C) :-
    lexplore(K, C1),
    lexplore_list(Ks, C2),
    C := C1 + C2.
lexplore_list([], C) :- C := 0.
"""


COLLECT_LIBRARY = """
% explore_all(Node, Sols, Tail, Depth): the solutions in Node's subtree as
% a difference list Sols\\Tail — the or-parallel Prolog model of §1, where
% the system returns the actual solutions, not a count.  Subtrees build
% disjoint segments of one shared list, so collection needs no merging.
explore_all(Node, Sols, Tail, D) :- D > 0 |
    expand(Node, Kids),
    sol(Node, S),
    emit_sol(S, Node, Sols, Sols1),
    D1 := D - 1,
    explore_all_list(Kids, Sols1, Tail, D1).
explore_all(Node, Sols, Tail, 0) :- lexplore_all(Node, Sols, Tail).

explore_all_list([K | Ks], Sols, Tail, D) :-
    explore_all(K, Sols, Mid, D) @ random,
    explore_all_list(Ks, Mid, Tail, D).
explore_all_list([], Sols, Tail, _) :- Sols := Tail.

lexplore_all(Node, Sols, Tail) :-
    expand(Node, Kids),
    sol(Node, S),
    emit_sol(S, Node, Sols, Sols1),
    lexplore_all_list(Kids, Sols1, Tail).
lexplore_all_list([K | Ks], Sols, Tail) :-
    lexplore_all(K, Sols, Mid),
    lexplore_all_list(Ks, Mid, Tail).
lexplore_all_list([], Sols, Tail) :- Sols := Tail.

emit_sol(1, Node, Sols, Rest) :- Sols := [Node | Rest].
emit_sol(0, _, Sols, Rest) :- Sols := Rest.
"""


def search_motif() -> Motif:
    """Library-only parallel search motif."""
    return Motif(name="search", library=SEARCH_LIBRARY)


def collect_search_stack(
    *,
    termination: bool = True,
    server_library: str = "ports",
) -> ComposedMotif:
    """``Server ∘ Rand ∘ [ShortCircuit ∘] CollectSearch`` — parallel search
    returning the solutions themselves (difference-list collection).

    Entry message: ``boot(Root, Sols, [], Depth, Done)`` with termination,
    else ``explore_all(Root, Sols, [], Depth)``; ``Sols`` closes to the
    full solution list.
    """
    stack: list[Motif] = [
        Motif(name="collect-search", library=COLLECT_LIBRARY)
    ]
    if termination:
        stack.append(
            short_circuit_motif(
                entry=("explore_all", 4),
                sync_outputs={("expand", 2): 1, ("sol", 2): 1},
            )
        )
    stack.append(rand_motif())
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)


def search_stack(
    *,
    termination: bool = True,
    server_library: str = "ports",
) -> ComposedMotif:
    """``Server ∘ Rand ∘ [ShortCircuit ∘] Search``.

    Entry message: ``boot(Root, Count, Depth, Done)`` with termination,
    else ``explore(Root, Count, Depth)``.
    """
    stack: list[Motif] = [search_motif()]
    if termination:
        stack.append(
            short_circuit_motif(
                entry=("explore", 3),
                sync_outputs={("expand", 2): 1, ("sol", 2): 1},
            )
        )
    stack.append(rand_motif())
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)
