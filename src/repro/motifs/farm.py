"""Task-farm (parallel map) motif — §4 future work ("areas in which motifs
seem appropriate").

A farm applies a user worker procedure ``f(X, Y)`` to every element of a
list, producing results in input order.  Parallelism comes from the paper's
own Random motif: each element's application is annotated ``@ random``, so
``Farm(f) = Server ∘ Rand ∘ FarmLib(f)``.

The library is *generated* around the worker's name — a small example of a
parameterized motif (reuse through modification, mechanized).
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif

__all__ = ["farm_library_source", "farm_motif", "farm_stack"]


def farm_library_source(worker: str = "f") -> str:
    """The farm library specialized to a worker procedure name.

    ``fmap(Xs, Ys)`` maps ``worker/2`` over ``Xs``; each application is
    dispatched to a random processor.
    """
    return f"""
fmap([X | Xs], Ys) :-
    Ys := [Y | Ys1],
    {worker}(X, Y) @ random,
    fmap(Xs, Ys1).
fmap([], Ys) :- Ys := [].
"""


def farm_motif(worker: str = "f") -> Motif:
    """Library-only farm motif over ``worker/2``."""
    return Motif(name=f"farm[{worker}]", library=farm_library_source(worker))


def farm_stack(
    worker: str = "f",
    *,
    termination: bool = True,
    server_library: str = "ports",
) -> ComposedMotif:
    """``Server ∘ Rand ∘ [ShortCircuit ∘] Farm(worker)``.

    Entry message: ``boot(Xs, Ys, Done)`` with termination, else
    ``fmap(Xs, Ys)``.
    """
    stack: list[Motif] = [farm_motif(worker)]
    if termination:
        stack.append(
            short_circuit_motif(
                entry=("fmap", 2),
                sync_outputs={(worker, 2): 1},
            )
        )
    stack.append(rand_motif())
    stack.append(server_motif(server_library))
    return ComposedMotif(stack)
