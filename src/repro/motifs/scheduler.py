"""The scheduler motif — the paper's §1 example of reuse through
modification.

"The Argonne monitor macros and Schedule packages support load-balancing on
shared-memory computers.  A user provides a set of procedures and defines
data dependencies between them; the system schedules their execution
appropriately. ...  a scheduler motif might be adapted to the demands of a
highly parallel computer by introducing additional levels in its
manager/worker hierarchy."

Two library variants share one user interface (the ``@ task`` pragma):

* **flat** — one manager (server 1) holds the task queue and the idle-worker
  list; every submission, dispatch, and completion report passes through it.
* **hierarchical** — the modification the paper describes: server 1 only
  *routes* submissions round-robin to group leaders; each leader runs the
  flat protocol over its worker range, so dispatch and completion traffic
  stay inside the group.  Experiment E11 measures the manager-bottleneck
  relief.

The transformation rewrites ``P @ task`` into ``send(1, task(P))`` and
generates a ``run_task`` dispatch rule per task type (its completion is the
binding of a declared output argument).  Termination reuses the
short-circuit motif: the stack is ``Server ∘ Sched ∘ ShortCircuit``.
"""

from __future__ import annotations

from repro.core.motif import ComposedMotif, Motif
from repro.core.pragmas import TASK
from repro.errors import TransformError
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif
from repro.strand.program import Program, Rule
from repro.strand.terms import Struct, Term, Var, deref
from repro.transform.rewrite import strip_placement
from repro.transform.transformation import Transformation

__all__ = [
    "FLAT_LIBRARY",
    "HIER_LIBRARY",
    "TaskSchedule",
    "scheduler_motif",
    "scheduled_application",
]

FLAT_LIBRARY = """
% Flat manager/worker scheduler.  Server 1 becomes the manager on receipt
% of the minit message; every server (including 1) is a worker.
server(In) :- serve(In, worker).

serve([minit(T) | In], worker) :-
    nodes(N),
    idle_list(N, Idle),
    balance([T], Idle, Q1, I1),
    serve(In, manager(Q1, I1)).
serve([task(T) | In], manager(Q, Idle)) :-
    balance([T | Q], Idle, Q1, I1),
    serve(In, manager(Q1, I1)).
serve([ready(W) | In], manager(Q, Idle)) :-
    balance(Q, [W | Idle], Q1, I1),
    serve(In, manager(Q1, I1)).
serve([run(T, W) | In], St) :-
    run_task(T, W),
    serve(In, St).
serve([halt | _], _).
serve([], _).

% Pair queued tasks with idle workers until one side runs dry.
balance([T | Q], [W | Idle], QOut, IOut) :-
    send(W, run(T, W)),
    balance(Q, Idle, QOut, IOut).
balance([], Idle, QOut, IOut) :- QOut := [], IOut := Idle.
balance([T | Q], [], QOut, IOut) :- QOut := [T | Q], IOut := [].

idle_list(N, Idle) :- N > 0 |
    Idle := [N | Rest],
    N1 := N - 1,
    idle_list(N1, Rest).
idle_list(0, Idle) :- Idle := [].

report(Out, W) :- known(Out) | send(1, ready(W)).
report_now(W) :- send(1, ready(W)).
"""

HIER_LIBRARY = """
% Hierarchical scheduler: server 1 routes tasks round-robin to group
% leaders (servers 2..); each leader runs the flat protocol over its own
% worker range, keeping dispatch and completion traffic local.
server(In) :- serve(In, worker).

% Top bootstrap: hinit(G, T) creates G groups over workers 2..N, then
% routes the first task.  route waits for group setup to finish.
serve([hinit(G, T) | In], worker) :-
    nodes(N),
    spawn_groups(G, G, N, Done),
    route_first(Done, T, G, N, Next),
    serve(In, top(G, N, Next)).
serve([task(T) | In], top(G, N, Next)) :-
    route(T, G, N, Next, Next1),
    serve(In, top(G, N, Next1)).

% Leader bootstrap and the flat protocol within the group.
serve([sinit(Lo, Hi) | In], worker) :-
    idle_range(Lo, Hi, Idle),
    serve(In, leader([], Idle, Lo)).
serve([task(T) | In], leader(Q, Idle, Me)) :-
    balance3([T | Q], Idle, Me, Q1, I1),
    serve(In, leader(Q1, I1, Me)).
serve([ready(W) | In], leader(Q, Idle, Me)) :-
    balance3(Q, [W | Idle], Me, Q1, I1),
    serve(In, leader(Q1, I1, Me)).
serve([run(T, W, L) | In], St) :-
    run_task(T, W, L),
    serve(In, St).
serve([halt | _], _).
serve([], _).

spawn_groups(K, G, N, Done) :- K > 0 |
    W1 := (N - 1) // G,
    Lo := 2 + (K - 1) * W1,
    hi_of(K, G, N, W1, Hi),
    send(Lo, sinit(Lo, Hi)),
    K1 := K - 1,
    spawn_groups(K1, G, N, Done).
spawn_groups(0, _, _, Done) :- Done := done.
hi_of(G, G, N, _, Hi) :- Hi := N.
hi_of(K, G, _, W1, Hi) :- K < G | Hi := 1 + K * W1.

route_first(done, T, G, N, Next) :- route(T, G, N, 1, Next).
route(T, G, N, Next, NextOut) :-
    W1 := (N - 1) // G,
    L := 2 + (Next - 1) * W1,
    send(L, task(T)),
    NextOut := Next mod G + 1.

idle_range(Lo, Hi, Idle) :- Lo =< Hi |
    Idle := [Lo | Rest],
    Lo1 := Lo + 1,
    idle_range(Lo1, Hi, Rest).
idle_range(Lo, Hi, Idle) :- Lo > Hi | Idle := [].

balance3([T | Q], [W | Idle], Me, QOut, IOut) :-
    send(W, run(T, W, Me)),
    balance3(Q, Idle, Me, QOut, IOut).
balance3([], Idle, _, QOut, IOut) :- QOut := [], IOut := Idle.
balance3([T | Q], [], _, QOut, IOut) :- QOut := [T | Q], IOut := [].

report(Out, W, L) :- known(Out) | send(L, ready(W)).
report_now(W, L) :- send(L, ready(W)).
"""


def _gate_name(task_name: str) -> str:
    return f"submit_{task_name}_when_ready"


class TaskSchedule(Transformation):
    """Rewrite ``P @ task`` into a submission to the manager and generate
    ``run_task`` dispatch rules.

    Parameters
    ----------
    outputs:
        ``indicator -> output argument position`` (0-based) for each task
        type: the task counts as finished once that argument is bound.
        Task types found annotated in the program but missing here get
        their **last argument** as the default output.
    hierarchical:
        Generate ``run_task/3`` (worker reports to its group leader)
        instead of ``run_task/2`` (reports to server 1).
    """

    name = "task-schedule"

    def __init__(self, outputs: dict[tuple[str, int], int] | None = None,
                 hierarchical: bool = False,
                 dependencies: dict[tuple[str, int], tuple[int, ...]] | None = None):
        self.outputs = dict(outputs or {})
        self.hierarchical = hierarchical
        # The Schedule-package model (§1, [2,5]): "A user provides a set of
        # procedures and defines data dependencies between them; the system
        # schedules their execution appropriately."  ``dependencies`` maps a
        # task type to the argument positions that are its *inputs*: the
        # task is submitted to the manager only once they are all known, so
        # a dispatched task never occupies a worker waiting for another
        # task's output (which would deadlock small machines).
        self.dependencies = dict(dependencies or {})

    def apply(self, program: Program) -> Program:
        annotated: list[tuple[str, int]] = []
        gated: list[tuple[str, int]] = []
        out = Program(name=program.name)
        for rule in program.rules():
            renamed = rule.rename()
            new_body: list[Term] = []
            for goal in renamed.body:
                inner, where = strip_placement(goal)
                if where is not None and deref(where) is TASK:
                    deps = self.dependencies.get(inner.indicator)
                    if deps:
                        new_body.append(
                            Struct(_gate_name(inner.functor), inner.args)
                        )
                        if inner.indicator not in gated:
                            gated.append(inner.indicator)
                    else:
                        new_body.append(
                            Struct("send", (1, Struct("task", (inner,))))
                        )
                    if inner.indicator not in annotated:
                        annotated.append(inner.indicator)
                else:
                    new_body.append(goal)
            out.add_rule(Rule(renamed.head, renamed.guards, new_body))
        for name, arity in gated:
            out.add_rule(self._gate_rule(name, arity))
        for extra in self.outputs:
            if extra not in annotated:
                annotated.append(extra)
        if not annotated:
            raise TransformError(
                "scheduler motif applied to a program with no '@ task' "
                "pragma and no declared task types"
            )
        for name, arity in annotated:
            position = self.outputs.get((name, arity), arity - 1)
            if position is not None and not 0 <= position < arity:
                raise TransformError(
                    f"task output position {position} out of range for "
                    f"{name}/{arity}"
                )
            out.add_rule(self._run_task_rule(name, arity, position))
        return out

    def _gate_rule(self, name: str, arity: int) -> Rule:
        """``gate_p(V1..Vn) :- known(Vi), ... | send(1, task(p(V1..Vn))).``

        The guard suspends until every declared input is bound, so the task
        reaches the scheduler only when it is runnable — the declared-
        dependency discipline of the Schedule package.
        """
        variables = [Var(f"V{i + 1}") for i in range(arity)]
        deps = self.dependencies[(name, arity)]
        guards: list[Term] = [Struct("known", (variables[i],)) for i in deps]
        task = Struct(name, tuple(variables))
        body: list[Term] = [Struct("send", (1, Struct("task", (task,))))]
        return Rule(Struct(_gate_name(name), tuple(variables)), guards, body)

    def _run_task_rule(self, name: str, arity: int, position: int | None) -> Rule:
        variables = [Var(f"V{i + 1}") for i in range(arity)]
        task = Struct(name, tuple(variables))
        w = Var("W")
        if self.hierarchical:
            leader = Var("Leader")
            head = Struct("run_task", (task, w, leader))
            if position is None:
                done: Term = Struct("report_now", (w, leader))
            else:
                done = Struct("report", (variables[position], w, leader))
            body: list[Term] = [task, done]
        else:
            head = Struct("run_task", (task, w))
            if position is None:
                done = Struct("report_now", (w,))
            else:
                done = Struct("report", (variables[position], w))
            body = [task, done]
        return Rule(head, [], body)


def scheduler_motif(
    outputs: dict[tuple[str, int], int] | None = None,
    hierarchical: bool = False,
    dependencies: dict[tuple[str, int], tuple[int, ...]] | None = None,
) -> Motif:
    """The scheduler motif: ``TaskSchedule`` + the flat or hierarchical
    library.  ``serve/3`` is its (post-Server) service loop."""
    return Motif(
        name="scheduler[hier]" if hierarchical else "scheduler[flat]",
        transformation=TaskSchedule(outputs, hierarchical, dependencies),
        library=HIER_LIBRARY if hierarchical else FLAT_LIBRARY,
        services={("serve", 3)},
    )


def scheduled_application(
    entry: tuple[str, int],
    *,
    hierarchical: bool = False,
    outputs: dict[tuple[str, int], int] | None = None,
    sync_outputs: dict[tuple[str, int], int] | None = None,
    dependencies: dict[tuple[str, int], tuple[int, ...]] | None = None,
    server_library: str = "ports",
) -> ComposedMotif:
    """The full stack ``Server ∘ Sched ∘ ShortCircuit``.

    The initial message is ``minit(boot(Args…, Done))`` (flat) or
    ``hinit(G, boot(Args…, Done))`` (hierarchical); ``boot``'s completion
    variable doubles as the boot task's output.
    """
    boot_indicator = ("boot", entry[1] + 1)
    task_outputs = dict(outputs or {})
    # boot drives the whole computation; holding its worker until its
    # Done variable binds would deadlock small machines, so it reports
    # ready immediately (None = report_now).
    task_outputs.setdefault(boot_indicator, None)
    return ComposedMotif(
        [
            short_circuit_motif(
                entry=entry, sync_outputs=sync_outputs, add_server_rule=False
            ),
            scheduler_motif(task_outputs, hierarchical, dependencies),
            server_motif(server_library),
        ]
    )
