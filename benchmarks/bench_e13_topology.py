"""E13 — ablation: interconnect sensitivity of the virtual-time model.

DESIGN.md §2/§4 substitutes 1990 MIMD hardware with a topology-aware
latency model; this ablation shows the model is *live* — the same program
produces topology-dependent schedules — and quantifies how much the
paper's motifs care about the interconnect (Strand ran "on shared-memory
computers, hypercubes, mesh machines, transputer surfaces").

Series: Tree-Reduce-1 virtual time and message hop counts across
topologies at P=16, and its sensitivity to the per-message startup cost.
Shape expected: makespan orders with topology diameter
(crossbar ≤ hypercube ≤ mesh ≤ ring); higher startup stretches every
topology but hurts high-diameter ones most in total hops.
"""

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.machine import Machine

P = 16
LEAVES = 96


def run(topology: str, startup: float = 2.0, strategy: str = "tr1"):
    tree = arithmetic_tree(LEAVES, seed=21)
    machine = Machine(P, topology=topology, seed=4, startup_latency=startup)
    return reduce_tree(tree, eval_arith_node, processors=P, strategy=strategy,
                       seed=4, eval_cost=30.0, machine=machine).metrics


def test_e13_topology_sensitivity(emit, benchmark):
    table = Table(
        f"E13  Tree-Reduce-1 across interconnects (P={P}, {LEAVES} leaves)",
        ["topology", "diameter", "virtual time", "messages", "total hops",
         "hops/message"],
    )
    from repro.machine.topology import topology_by_name

    times = {}
    for topology in ("full", "hypercube", "mesh", "ring", "tree"):
        metrics = run(topology)
        diameter = topology_by_name(topology, P).diameter
        times[topology] = metrics.makespan
        table.add(topology, diameter, metrics.makespan, metrics.messages,
                  metrics.hops, metrics.hops / max(1, metrics.messages))
    table.note("same program, same seed: only the interconnect changes; "
               "hop volume follows the diameter")
    emit(table)

    assert times["full"] <= times["ring"]
    assert times["hypercube"] <= times["ring"]

    # The latency sweep uses Tree-Reduce-2: its node placement is fixed by
    # the preprocessing labeler, so only delivery times change with the
    # startup cost (TR-1's random placement shifts with message timing,
    # which would confound the sweep).
    table2 = Table(
        "E13  sensitivity to per-message startup cost (hypercube, TR-2)",
        ["startup", "virtual time", "efficiency"],
    )
    series = []
    for startup in (0.0, 2.0, 8.0, 32.0):
        metrics = run("hypercube", startup=startup, strategy="tr2")
        series.append(metrics.makespan)
        table2.add(startup, metrics.makespan, metrics.efficiency)
    table2.note("fixed placement: higher startup cost stretches the "
                "schedule (arrival-order jitter allows small local dips)")
    emit(table2)
    # Trend: the expensive-network end is strictly slower than the free one
    # (value pairing order can jitter interior points slightly).
    assert series[-1] > series[0]
    assert max(series) == series[-1]

    benchmark(lambda: run("hypercube"))
