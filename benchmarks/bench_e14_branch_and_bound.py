"""E14 — branch-and-bound: a specialized search motif (§3.6, §4).

§3.6: "We suspect that many applications will benefit from specialized
motifs tailored to their particular requirements."  Branch-and-bound is
the canonical specialization of parallel search: an incumbent-broadcast
protocol prunes subtrees whose optimistic bound cannot beat the best
solution found anywhere on the machine.

Measured: exact optimality (vs dynamic programming) at every machine
size, and the pruning ablation — explored nodes with the real bound vs a
never-prune bound, as the instance grows.
"""

from repro.analysis import Table
from repro.apps.knapsack import (
    random_knapsack,
    register_knapsack,
    root_node,
    solve_reference,
)
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.bnb import bnb_stack
from repro.strand.foreign import from_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Var, deref


def run_bnb(problem, processors=4, seed=1, prune=True):
    applied = bnb_stack().apply(Program(name="knapsack"))
    applied.foreign_setup.append(
        lambda reg: register_knapsack(reg, problem, prune=prune)
    )
    applied.user_names.update({"bound_bb", "leaf_bb", "value_bb", "expand_bb"})
    sol = Var("Sol")
    goal = Struct("create", (processors,
                             Struct("binit", (from_python(root_node()), sol))))
    _, metrics = run_applied(applied, goal, Machine(processors, seed=seed),
                             watched=[("step", 5)])
    return deref(sol), metrics


def test_e14_branch_and_bound(emit, benchmark):
    table = Table(
        "E14  distributed branch-and-bound on 0/1 knapsack (P=4)",
        ["items", "optimum (DP)", "B&B result", "nodes explored",
         "nodes without pruning", "pruned away"],
    )
    for items in (8, 10, 12):
        problem = random_knapsack(items, seed=items)
        optimum = solve_reference(problem)
        best, pruned = run_bnb(problem, prune=True)
        _, full = run_bnb(problem, prune=False)
        assert best == optimum
        assert pruned.tasks_started < full.tasks_started
        saved = 1.0 - pruned.tasks_started / full.tasks_started
        table.add(items, optimum, best, pruned.tasks_started,
                  full.tasks_started, f"{saved:.0%}")
    table.note("the incumbent broadcast keeps every server's bound fresh "
               "enough to prune; stale incumbents cost pruning, never "
               "correctness")
    emit(table)

    scale = Table(
        "E14  B&B across machine sizes (12 items)",
        ["P", "result", "virtual time", "messages"],
    )
    problem = random_knapsack(12, seed=12)
    optimum = solve_reference(problem)
    for processors in (1, 2, 4, 8):
        best, metrics = run_bnb(problem, processors=processors, seed=3)
        assert best == optimum
        scale.add(processors, best, metrics.makespan, metrics.messages)
    emit(scale)

    benchmark(lambda: run_bnb(random_knapsack(9, seed=1)))
