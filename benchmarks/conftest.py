"""Shared helpers for the experiment benchmarks.

Every experiment (DESIGN.md §5) prints its table through ``emit`` so the
rows appear on the terminal even under pytest's capture, and are appended
to ``benchmarks/results.txt`` for the record.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def emit(capsys):
    """Print a table (or text) to the real terminal and the results file."""

    def _emit(table) -> None:
        text = table if isinstance(table, str) else table.render()
        with capsys.disabled():
            print()
            print(text)
        with RESULTS_PATH.open("a") as fh:
            fh.write(text + "\n\n")

    return _emit
