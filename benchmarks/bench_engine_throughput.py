"""Engine throughput — infrastructure benchmark (not a paper experiment).

Tracks the runtime's reductions-per-second on four canonical shapes —
the Figure-1 rendezvous (suspension-heavy), the Eratosthenes sieve
(process-chain-heavy), a multi-processor tree reduction (scheduler- and
message-heavy), and a 64-way multi-rule dispatch loop (rule-selection-heavy,
run both with first-argument indexing and with the linear-scan ablation) —
so engine regressions show up in CI.  The dispatch comparison is written to
``benchmarks/BENCH_engine_throughput.json`` for the record.
"""

import json
import time
from pathlib import Path

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.machine import Machine
from repro.strand import parse_program, run_query

JSON_PATH = Path(__file__).parent / "BENCH_engine_throughput.json"

FIGURE1 = parse_program("""
go(N) :- producer(N, Xs, sync), consumer(Xs).
producer(N, Xs, _Sync) :- N > 0 |
    Xs := [X | Xs1], N1 := N - 1, producer(N1, Xs1, X).
producer(0, Xs, _) :- Xs := [].
consumer([X | Xs]) :- X := sync, consumer(Xs).
consumer([]).
""", name="figure1")

SIEVE = parse_program(
    (Path(__file__).parent.parent / "examples" / "strand" / "sieve.str").read_text(),
    name="sieve",
)


def run_figure1():
    return run_query(FIGURE1, "go(1500)", machine=Machine(1)).metrics


def run_sieve():
    return run_query(SIEVE, "primes(400, _Ps)", machine=Machine(1)).metrics


def run_tree():
    tree = arithmetic_tree(128, seed=1)
    return reduce_tree(tree, eval_arith_node, processors=8, strategy="tr1",
                       seed=1).metrics


# 64-way dispatch: every reduction of loop/2 must select among 64 rules
# whose first arguments are distinct integer keys — the workload where
# first-argument indexing pays and a linear rule scan is O(rules).
_DISPATCH_K = 64
DISPATCH = parse_program(
    "\n".join(
        f"loop({i}, N) :- N > 0 | N1 := N - 1, K := N1 mod {_DISPATCH_K}, "
        f"loop(K, N1)."
        for i in range(_DISPATCH_K)
    )
    + "\nloop(_, 0)."
    + f"\ngo(N) :- K := N mod {_DISPATCH_K}, loop(K, N).",
    name="dispatch",
)


def run_dispatch(indexing: bool):
    return run_query(DISPATCH, "go(10000)", machine=Machine(1),
                     indexing=indexing).metrics


def _timed(runner, *args):
    t0 = time.perf_counter()
    metrics = runner(*args)
    dt = time.perf_counter() - t0
    return metrics, dt


def test_engine_throughput(emit, benchmark):
    table = Table(
        "engine throughput (wall clock, informational)",
        ["workload", "reductions", "seconds", "reductions/s"],
    )
    for name, runner in (("figure1 rendezvous", run_figure1),
                         ("sieve of Eratosthenes", run_sieve),
                         ("tree-reduce-1 P=8", run_tree)):
        metrics, dt = _timed(runner)
        table.add(name, metrics.reductions, dt, metrics.reductions / dt)
        # Guard against catastrophic interpreter regressions.
        assert metrics.reductions / dt > 5_000
    emit(table)

    benchmark(run_sieve)


def test_dispatch_indexing_speedup(emit):
    """First-argument indexing vs. the linear-scan ablation on the 64-way
    dispatch loop; results recorded in BENCH_engine_throughput.json."""
    # Warm up both compile-cache slots so neither run pays compilation.
    run_dispatch(True)
    run_dispatch(False)

    rates = {}
    reductions = {}
    table = Table(
        f"multi-rule dispatch (K={_DISPATCH_K}, indexed vs linear)",
        ["rule selection", "reductions", "seconds", "reductions/s"],
    )
    for label, indexing in (("indexed", True), ("linear", False)):
        best = 0.0
        for _ in range(3):
            metrics, dt = _timed(run_dispatch, indexing)
            best = max(best, metrics.reductions / dt)
            reductions[label] = metrics.reductions
        rates[label] = best
        table.add(label, reductions[label],
                  reductions[label] / best, best)
    speedup = rates["indexed"] / rates["linear"]
    table.add("speedup", "", "", f"{speedup:.2f}x")
    emit(table)

    # Identical semantics: the ablation changes time, never the reductions.
    assert reductions["indexed"] == reductions["linear"]

    JSON_PATH.write_text(json.dumps({
        "benchmark": "engine_throughput.dispatch",
        "workload": f"go(10000), K={_DISPATCH_K} dispatch rules",
        "reductions": reductions["indexed"],
        "indexed_reductions_per_sec": round(rates["indexed"], 1),
        "linear_reductions_per_sec": round(rates["linear"], 1),
        "speedup": round(speedup, 3),
    }, indent=2) + "\n")

    # The acceptance bar for this optimisation is 1.5x over the seed's
    # linear interpreter; measured headroom is well above this conservative
    # in-tree guard (which only compares against the compiled linear scan).
    assert speedup > 1.2, f"indexing speedup collapsed: {speedup:.2f}x"
