"""Engine throughput — infrastructure benchmark (not a paper experiment).

Tracks the interpreter's reductions-per-second on three canonical shapes —
the Figure-1 rendezvous (suspension-heavy), the Eratosthenes sieve
(process-chain-heavy), and a multi-processor tree reduction (scheduler- and
message-heavy) — so engine regressions show up in CI.
"""

from pathlib import Path

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.machine import Machine
from repro.strand import parse_program, run_query

FIGURE1 = parse_program("""
go(N) :- producer(N, Xs, sync), consumer(Xs).
producer(N, Xs, _Sync) :- N > 0 |
    Xs := [X | Xs1], N1 := N - 1, producer(N1, Xs1, X).
producer(0, Xs, _) :- Xs := [].
consumer([X | Xs]) :- X := sync, consumer(Xs).
consumer([]).
""", name="figure1")

SIEVE = parse_program(
    (Path(__file__).parent.parent / "examples" / "strand" / "sieve.str").read_text(),
    name="sieve",
)


def run_figure1():
    return run_query(FIGURE1, "go(1500)", machine=Machine(1)).metrics


def run_sieve():
    return run_query(SIEVE, "primes(400, _Ps)", machine=Machine(1)).metrics


def run_tree():
    tree = arithmetic_tree(128, seed=1)
    return reduce_tree(tree, eval_arith_node, processors=8, strategy="tr1",
                       seed=1).metrics


def test_engine_throughput(emit, benchmark):
    import time

    table = Table(
        "engine throughput (wall clock, informational)",
        ["workload", "reductions", "seconds", "reductions/s"],
    )
    for name, runner in (("figure1 rendezvous", run_figure1),
                         ("sieve of Eratosthenes", run_sieve),
                         ("tree-reduce-1 P=8", run_tree)):
        t0 = time.perf_counter()
        metrics = runner()
        dt = time.perf_counter() - t0
        table.add(name, metrics.reductions, dt, metrics.reductions / dt)
        # Guard against catastrophic interpreter regressions.
        assert metrics.reductions / dt > 5_000
    emit(table)

    benchmark(run_sieve)
