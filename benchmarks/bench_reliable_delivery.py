"""Reliable delivery under message loss and partitions — delivered fraction
and protocol overhead, with and without the Reliable motif.

Two sweeps over the same tree-reduction workload, each run both *bare*
(``Server ∘ Rand ∘ Tree1``, no delivery protocol) and *reliable*
(``Server ∘ Reliable ∘ Rand ∘ Tree1``):

* **drop sweep** — per-message drop probability; the bare stack deadlocks
  as soon as one dispatch message is lost, the Reliable stack retransmits.
* **partition sweep** — a link cut severing processors {3, 4} at t=30 for
  a growing window; the Reliable stack rides through the heal.

A run *delivers* when it terminates with a bound result, and is *correct*
when that result equals the fault-free answer.  Overheads are same-seed
ratios against the mode's own fault-free baseline, so the protocol's
fixed cost (acks, sequence bookkeeping) is separated from its recovery
cost (retransmissions).  The Reliable column can itself fall short of
1.0 at high drop rates: the bootstrap spawns predate the protocol and
are unprotected (see ``docs/MOTIFS.md``) — the JSON reports that
honestly rather than cherry-picking seeds.

Results go to ``benchmarks/BENCH_reliable_delivery.json``.  Run
standalone with ``python benchmarks/bench_reliable_delivery.py
[--smoke]`` or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree, reliable_reduce_tree
from repro.errors import ReproError, StrandError
from repro.machine import FaultPlan, Machine, Partition

JSON_PATH = Path(__file__).parent / "BENCH_reliable_delivery.json"

PROCESSORS = 4
CUT_GROUP = frozenset({3, 4})
CUT_START = 30.0  # after the server network bootstraps

FULL = {"leaves": 32, "tree_seed": 3, "seeds": range(5),
        "drop_rates": (0.0, 0.1, 0.2, 0.3),
        "durations": (0.0, 60.0, 120.0)}
SMOKE = {"leaves": 16, "tree_seed": 3, "seeds": range(2),
         "drop_rates": (0.0, 0.2),
         "durations": (0.0, 90.0)}


def run_once(tree, seed: int, faults: FaultPlan | None, reliable: bool):
    """One run; returns (value | None, metrics)."""
    machine = Machine(PROCESSORS, seed=seed, faults=faults)
    try:
        if reliable:
            result = reliable_reduce_tree(
                tree, eval_arith_node, machine=machine,
                max_reductions=2_000_000,
            )
        else:
            result = reduce_tree(
                tree, eval_arith_node, machine=machine, termination=False,
                max_reductions=2_000_000,
            )
    except (ReproError, StrandError):
        # Deadlock on a lost message, or a blown reduction budget: the
        # result was never delivered.
        return None, machine.metrics()
    return result.value, result.metrics


def _sweep_axis(tree, config, axis: str, conditions) -> tuple[list, int]:
    """Run every (axis value, fault plan) condition in both modes.

    Returns the result rows plus the fault-free expected value.  The first
    condition must be the fault-free one — it fixes the expected answer
    and the per-(mode, seed) makespan/message baselines for the overhead
    ratios.
    """
    expected = None
    baselines: dict[tuple[bool, int], tuple[float, int]] = {}
    rows = []
    for value, faults in conditions:
        for reliable in (False, True):
            delivered = correct = 0
            makespan_ratios, message_ratios = [], []
            retransmits = acks = unreachable = lost = 0
            for seed in config["seeds"]:
                result, metrics = run_once(tree, seed, faults, reliable)
                if faults is None:
                    baselines[(reliable, seed)] = (
                        metrics.makespan, metrics.messages,
                    )
                    if not reliable:
                        expected = result if expected is None else expected
                if result is not None:
                    delivered += 1
                    if result == expected:
                        correct += 1
                    base = baselines.get((reliable, seed))
                    if base and base[0]:
                        makespan_ratios.append(metrics.makespan / base[0])
                    if base and base[1]:
                        message_ratios.append(metrics.messages / base[1])
                retransmits += metrics.rel_retransmits
                acks += metrics.rel_acks
                unreachable += metrics.rel_unreachable
                lost += metrics.messages_dropped + metrics.partition_dropped
            n = len(list(config["seeds"]))
            rows.append({
                axis: value,
                "mode": "reliable" if reliable else "bare",
                "runs": n,
                "delivered_fraction": round(delivered / n, 3),
                "correct_fraction": round(correct / n, 3),
                "mean_makespan_overhead": (
                    round(sum(makespan_ratios) / len(makespan_ratios), 3)
                    if makespan_ratios else None
                ),
                "mean_message_overhead": (
                    round(sum(message_ratios) / len(message_ratios), 3)
                    if message_ratios else None
                ),
                "messages_lost": lost,
                "rel_retransmits": retransmits,
                "rel_acks": acks,
                "rel_unreachable": unreachable,
            })
    return rows, expected


def sweep(config) -> dict:
    tree = arithmetic_tree(config["leaves"], seed=config["tree_seed"])
    drop_conditions = [
        (rate, FaultPlan(drop_rate=rate) if rate > 0.0 else None)
        for rate in config["drop_rates"]
    ]
    partition_conditions = [
        (
            duration,
            FaultPlan(partitions=(
                Partition(CUT_GROUP, CUT_START, CUT_START + duration),
            )) if duration > 0.0 else None,
        )
        for duration in config["durations"]
    ]
    drop_rows, expected = _sweep_axis(tree, config, "drop_rate", drop_conditions)
    partition_rows, _ = _sweep_axis(
        tree, config, "partition_duration", partition_conditions
    )
    return {
        "benchmark": "reliable_delivery",
        "workload": (
            f"tree-reduce, {config['leaves']} leaves, P={PROCESSORS}, "
            f"bare (Server∘Rand∘Tree1) vs reliable "
            f"(Server∘Reliable∘Rand∘Tree1, default retry policy)"
        ),
        "expected_value": expected,
        "drop_sweep": drop_rows,
        "partition_sweep": partition_rows,
    }


def render(payload: dict) -> str:
    lines = [payload["workload"]]
    for axis, key in (("drop_sweep", "drop_rate"),
                      ("partition_sweep", "partition_duration")):
        lines.append(
            f"{key:>18} {'mode':>9} {'delivered':>10} {'correct':>8} "
            f"{'t-ovhd':>7} {'msg-ovhd':>9} {'lost':>5} {'retx':>5}"
        )
        for row in payload[axis]:
            t_ovhd = row["mean_makespan_overhead"]
            m_ovhd = row["mean_message_overhead"]
            lines.append(
                f"{row[key]:>18} {row['mode']:>9} "
                f"{row['delivered_fraction']:>10} "
                f"{row['correct_fraction']:>8} "
                f"{t_ovhd if t_ovhd is not None else '-':>7} "
                f"{m_ovhd if m_ovhd is not None else '-':>9} "
                f"{row['messages_lost']:>5} {row['rel_retransmits']:>5}"
            )
    return "\n".join(lines)


def run_bench(config) -> dict:
    payload = sweep(config)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Invariants regardless of scale: fault-free rows are perfect in both
    # modes, and Reliable never delivers less often than bare.
    for axis in ("drop_sweep", "partition_sweep"):
        rows = payload[axis]
        for row in rows[:2]:
            assert row["delivered_fraction"] == 1.0
            assert row["correct_fraction"] == 1.0
        by_value: dict = {}
        for row in rows:
            by_value.setdefault(list(row.values())[0], {})[row["mode"]] = row
        for pair in by_value.values():
            assert (
                pair["reliable"]["delivered_fraction"]
                >= pair["bare"]["delivered_fraction"]
            )
    assert payload["expected_value"] is not None
    return payload


def test_reliable_delivery(emit):
    payload = run_bench(SMOKE)
    emit(render(payload))


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI")
    args = parser.parse_args()
    payload = run_bench(SMOKE if args.smoke else FULL)
    print(render(payload))
    print(f"\nwrote {JSON_PATH}")
