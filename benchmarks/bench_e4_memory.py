"""E4 — memory behaviour of Tree-Reduce-2 (paper §3.5).

Reproduces: "At each processor, computation is sequenced so that only a
single node evaluation is active at any given time.  This reduces memory
consumption."

Series: per-processor peak of simultaneously live node evaluations
(spawned-but-unfinished ``eval/4`` processes — each holds its operand
profiles alive) for Tree-Reduce-1 vs Tree-Reduce-2, as the tree grows;
plus TR-2's pending-value queue high-water.  Shape expected: TR-1's peak
grows with the tree; TR-2's is pinned at 1.
"""

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree

P = 4


def run(strategy: str, leaves: int):
    tree = arithmetic_tree(leaves, seed=leaves + 7)
    return reduce_tree(tree, eval_arith_node, processors=P, strategy=strategy,
                       seed=3, eval_cost=30.0)


def test_e4_memory_bound(emit, benchmark):
    table = Table(
        "E4  peak live node evaluations per processor (P=4)",
        ["leaves", "TR-1 peak live evals", "TR-2 peak live evals",
         "TR-2 peak queued values", "ratio TR-1/TR-2"],
    )
    growth = []
    for leaves in (8, 16, 32, 64, 128):
        tr1 = run("tr1", leaves).metrics
        tr2 = run("tr2", leaves).metrics
        growth.append((leaves, tr1.max_peak_live_tasks))
        table.add(
            leaves,
            tr1.max_peak_live_tasks,
            tr2.max_peak_live_tasks,
            tr2.max_peak_live_values,
            tr1.max_peak_live_tasks / max(1, tr2.max_peak_live_tasks),
        )
        # The §3.5 invariant, at every size:
        assert tr2.max_peak_live_tasks == 1
    table.note('paper: "only a single node evaluation is active at any '
               'given time.  This reduces memory consumption."')
    emit(table)

    # Shape: TR-1's footprint grows with the tree.
    assert growth[-1][1] > growth[0][1]

    benchmark(lambda: run("tr2", 32))
