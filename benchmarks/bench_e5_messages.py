"""E5 — communication bound of Tree-Reduce-2's labeling (paper §3.5).

Reproduces: "the labeling used here ensures that an interprocessor
communication is required for at most one of each node's offspring values."

Measured: cross-processor reduction-phase ``value`` messages (leaf
dispatches and the table broadcast travel under other tags) against the
internal-node count, across tree sizes and machine sizes; compared with
Tree-Reduce-1's task+result traffic.
"""

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.machine import Machine


def run_traced(strategy: str, leaves: int, processors: int, seed: int):
    tree = arithmetic_tree(leaves, seed=leaves)
    machine = Machine(processors, seed=seed, trace=True)
    return reduce_tree(tree, eval_arith_node, processors=processors,
                       strategy=strategy, seed=seed, machine=machine)


def value_messages(result) -> int:
    return sum(
        1
        for e in result.engine.machine.trace.of_kind("send")
        if e.detail.startswith("port:value->")
    )


def test_e5_message_bound(emit, benchmark):
    table = Table(
        "E5  cross-processor offspring-value messages (TR-2 labeling)",
        ["leaves", "P", "internal nodes", "TR-2 value msgs",
         "bound respected", "TR-2 total msgs", "TR-1 total msgs"],
    )
    for leaves, processors in [(16, 4), (32, 4), (64, 4), (64, 8), (128, 8)]:
        internal = leaves - 1
        tr2 = run_traced("tr2", leaves, processors, seed=5)
        tr1 = run_traced("tr1", leaves, processors, seed=5)
        v = value_messages(tr2)
        table.add(leaves, processors, internal, v, v <= internal,
                  tr2.metrics.messages, tr1.metrics.messages)
        assert v <= internal
    table.note('paper: "an interprocessor communication is required for at '
               'most one of each node\'s offspring values"')
    emit(table)

    benchmark(lambda: run_traced("tr2", 32, 4, 5))
