"""E2 — composition correctness (paper Figures 2, 5, 6; §3.1–3.4).

Reproduces: the four-line annotated program pushed through
Tree1 → Rand → Server equals (a) the hand-written Figure-2-style program
and (b) the sequential fold, on random expression trees; and the staged
outputs have the Figure-5 structure.  Also benchmarks motif application
(the "automatically applied transformations can speed the parallel program
development process" claim — compilation is milliseconds).
"""

from repro.analysis import Table, measure
from repro.apps.arithmetic import EVAL_SOURCE, arithmetic_tree, eval_arith_node
from repro.apps.trees import sequential_reduce, tree_term
from repro.core.api import run_applied
from repro.core.motif import ComposedMotif
from repro.machine import Machine
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.tree_reduce1 import tree1_motif
from repro.strand.parser import parse_program
from repro.strand.terms import Struct, Var, deref

# Hand-written analogue of Figure 2 (parts A-D collapsed onto the port
# library's create): what a programmer would write *without* motifs.
HAND_WRITTEN = """
eval(add, L, R, Value) :- Value := L + R.
eval(mul, L, R, Value) :- Value := L * R.

reduce(tree(V, L, R), Value, DT) :-
    length(DT, N),
    rand_num(N, O),
    distribute(O, reduce(R, RV), DT),
    reduce(L, LV, DT),
    eval(V, LV, RV, Value).
reduce(leaf(X), Value, _) :- Value := X.

server([reduce(T, V) | In], DT) :- reduce(T, V, DT), server(In, DT).
server([halt | _], _).
server([], _).

create(N, Msg) :-
    make_tuple(N, DT),
    spawn_servers(N, DT),
    distribute(1, Msg, DT).
spawn_servers(N, DT) :- N > 0 |
    server_init(N, DT) @ N,
    N1 := N - 1,
    spawn_servers(N1, DT).
spawn_servers(0, _).
server_init(N, DT) :-
    open_port(Port, Stream),
    put_arg(N, DT, Port),
    server(Stream, DT).
"""


def run_hand_written(tree, processors, seed):
    program = parse_program(HAND_WRITTEN, name="figure2")
    from repro.strand.engine import StrandEngine

    machine = Machine(processors, seed=seed)
    engine = StrandEngine(program, machine=machine, services={("server", 2)})
    value = Var("Value")
    engine.spawn(Struct("create", (processors,
                                   Struct("reduce", (tree_term(tree), value)))))
    metrics = engine.run()
    return deref(value), metrics


def run_composed(tree, processors, seed):
    motif = ComposedMotif([tree1_motif(), rand_motif(), server_motif()])
    applied = motif.apply(parse_program(EVAL_SOURCE, name="eval"))
    machine = Machine(processors, seed=seed)
    value = Var("Value")
    goal = Struct("create", (processors,
                             Struct("reduce", (tree_term(tree), value))))
    run_applied(applied, goal, machine)
    return deref(value)


def test_e2_composition_equivalence(emit, benchmark):
    table = Table(
        "E2  composed Tree-Reduce-1 vs hand-written Figure 2 vs sequential fold",
        ["leaves", "P", "sequential", "hand-written", "composed", "agree"],
    )
    for leaves, processors, seed in [(8, 2, 1), (16, 4, 2), (32, 4, 3),
                                     (64, 8, 4), (128, 8, 5)]:
        tree = arithmetic_tree(leaves, seed=seed)
        expected = sequential_reduce(tree, eval_arith_node)
        hand, _ = run_hand_written(tree, processors, seed)
        composed = run_composed(tree, processors, seed)
        table.add(leaves, processors, expected, hand, composed,
                  expected == hand == composed)
        assert expected == hand == composed
    table.note("the 4-line program + motifs ≡ the page of hand-written code "
               "(paper: 'he would only need to provide the four-line program')")
    emit(table)

    # Figure-5 staged structure.
    motif = ComposedMotif([tree1_motif(), rand_motif(), server_motif()])
    stages = motif.apply_staged(parse_program(EVAL_SOURCE, name="eval"))
    stage_table = Table(
        "E2  Figure-5 staging (program size after each motif)",
        ["stage", "procedures", "rules", "goals", "lines"],
    )
    for m, applied in zip(motif.stages(), stages):
        size = measure(applied.program)
        stage_table.add(m.name, size.procedures, size.rules, size.goals,
                        size.lines)
    assert ("reduce", 2) in stages[0].program
    assert ("server", 1) in stages[1].program
    assert ("reduce", 3) in stages[2].program and ("server", 2) in stages[2].program
    emit(stage_table)

    # Benchmark: motif application (source-to-source compile) time.
    application = parse_program(EVAL_SOURCE, name="eval")
    benchmark(lambda: motif.apply(application))
