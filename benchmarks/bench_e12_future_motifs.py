"""E12 — generality: the §4 future-work motifs.

Reproduces: "In the future, we plan to develop new motifs ...  Areas in
which motifs seem appropriate include search, sorting, grid problems,
divide and conquer, and various graph theory problems."

One correctness + virtual-speedup series per motif: parallel search
(N-queens), parallel mergesort, and Jacobi grid relaxation — all built by
composing the paper's own Server/Rand motifs (search, sort) or the stream
machinery (grid).
"""

import numpy as np

from repro.analysis import Table
from repro.apps.gridapp import (
    jacobi_reference,
    join_strips,
    make_grid,
    register_grid,
    split_strips,
)
from repro.apps.queens import KNOWN_COUNTS, register_queens, root_node
from repro.apps.sorting import random_list, register_sorting
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.grid import grid_goals, grid_motif
from repro.motifs.search import search_stack
from repro.motifs.sort import sort_stack
from repro.strand.foreign import from_python, to_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Var, deref


def run_queens(n: int, processors: int, depth: int = 2, seed: int = 3):
    applied = search_stack().apply(Program(name="queens"))
    applied.foreign_setup.append(register_queens)
    applied.user_names.update({"expand", "sol"})
    count = Var("C")
    goal = Struct(
        "create",
        (processors,
         Struct("boot", (from_python(root_node(n)), count, depth, Var("D")))),
    )
    _, metrics = run_applied(applied, goal, Machine(processors, seed=seed))
    return deref(count), metrics


def run_sort(xs, processors: int, depth: int = 3, seed: int = 1):
    applied = sort_stack().apply(Program(name="sorting"))
    applied.foreign_setup.append(register_sorting)
    applied.user_names.update({"halve", "merge_sorted", "sort_seq"})
    out = Var("Out")
    goal = Struct(
        "create",
        (processors, Struct("boot", (from_python(xs), out, depth, Var("D")))),
    )
    _, metrics = run_applied(applied, goal, Machine(processors, seed=seed))
    return to_python(out), metrics


def run_grid(workers: int, rows: int = 24, cols: int = 12, iterations: int = 6):
    applied = grid_motif().apply(Program(name="jacobi"))
    applied.foreign_setup.append(lambda reg: register_grid(reg, unit=0.5))
    applied.user_names.update({"top_row", "bottom_row", "sweep"})
    grid = make_grid(rows, cols)
    strips = [from_python(s) for s in split_strips(grid, workers)]
    goals, results = grid_goals(strips, iterations)
    _, metrics = run_applied(applied, goals, Machine(workers, seed=0))
    final = join_strips([to_python(r) for r in results])
    return grid, final, metrics


def test_e12_search_motif(emit, benchmark):
    n = 7
    table = Table(
        f"E12a  parallel search: {n}-queens (expect {KNOWN_COUNTS[n]})",
        ["P", "solutions", "virtual time", "speedup"],
    )
    base = None
    times = []
    for processors in (1, 2, 4, 8):
        count, metrics = run_queens(n, processors)
        assert count == KNOWN_COUNTS[n]
        if base is None:
            base = metrics.makespan
        times.append(metrics.makespan)
        table.add(processors, count, metrics.makespan, base / metrics.makespan)
    emit(table)
    assert times[-1] < times[0] / 2  # meaningful parallel speedup

    benchmark(lambda: run_queens(6, 4))


def test_e12_sort_motif(emit, benchmark):
    xs = random_list(400, seed=5)
    table = Table(
        "E12b  parallel mergesort (400 keys)",
        ["P", "sorted", "virtual time", "speedup"],
    )
    base = None
    for processors in (1, 2, 4, 8):
        out, metrics = run_sort(xs, processors)
        assert out == sorted(xs)
        if base is None:
            base = metrics.makespan
        table.add(processors, True, metrics.makespan, base / metrics.makespan)
    table.note("speedup saturates: the final merge is inherently serial "
               "(Amdahl), exactly the shape a mergesort motif should show")
    emit(table)

    benchmark(lambda: run_sort(random_list(100, seed=1), 4))


def test_e12_grid_motif(emit, benchmark):
    table = Table(
        "E12c  Jacobi relaxation (24x12, 6 sweeps)",
        ["workers", "matches numpy", "virtual time", "speedup", "messages"],
    )
    base = None
    times = []
    for workers in (1, 2, 4, 8):
        grid, final, metrics = run_grid(workers)
        ok = bool(np.allclose(final, jacobi_reference(grid, 6)))
        assert ok
        if base is None:
            base = metrics.makespan
        times.append(metrics.makespan)
        table.add(workers, ok, metrics.makespan, base / metrics.makespan,
                  metrics.messages)
    emit(table)
    assert times[-1] < times[0] / 2

    benchmark(lambda: run_grid(4))


def test_e12_graph_motif(emit, benchmark):
    from repro.apps.graphs import grid_graph, random_graph, reference_distances, run_sssp

    table = Table(
        "E12d  distributed SSSP (chaotic relaxation) vs NetworkX",
        ["graph", "nodes", "workers", "correct", "virtual time", "messages"],
    )
    workloads = [
        ("grid 6x5", grid_graph(6, 5)),
        ("random n=40", random_graph(40, 0.1, seed=2)),
    ]
    for name, adj in workloads:
        ref = reference_distances(adj, 0)
        for workers in (1, 2, 4):
            got, metrics = run_sssp(adj, 0, workers=workers, seed=1)
            assert got == ref
            table.add(name, len(adj), workers, got == ref,
                      metrics.makespan, metrics.messages)
    table.note("§4: 'various graph theory problems' — asynchronous "
               "relaxation converges to exact BFS distances at quiescence")
    emit(table)

    benchmark(lambda: run_sssp(grid_graph(5, 4), 0, workers=4, seed=1))
