"""E8 — motif run-time overhead (paper §2.1).

Reproduces: "although a motif implementation ... may encapsulate
significant complexity, it is rare that significant time is spent
executing its routines."

Series: fraction of charged virtual time spent in motif-library procedures
(everything the user did not write: servers, dispatch, circuit, ports) as
the node-evaluation cost grows.  Shape expected: the fraction falls
toward zero — motif code is a fixed per-node tax that vanishes against
real work.  Also reports transformation (compile) wall time.
"""

import time

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.motifs.tree_reduce1 import tree_reduce_1
from repro.strand.parser import parse_program


def run(eval_cost: float):
    tree = arithmetic_tree(64, seed=3)
    return reduce_tree(tree, eval_arith_node, processors=4, strategy="tr1",
                       seed=1, eval_cost=eval_cost).metrics


def test_e8_overhead_fraction(emit, benchmark):
    table = Table(
        "E8  motif-library share of virtual time vs node-evaluation cost",
        ["eval cost", "library time", "user time", "library fraction"],
    )
    fractions = []
    for cost in (1.0, 10.0, 100.0, 1000.0):
        metrics = run(cost)
        fractions.append(metrics.library_fraction)
        table.add(cost, metrics.library_cost, metrics.user_cost,
                  metrics.library_fraction)
    table.note('paper: "it is rare that significant time is spent executing '
               '[motif] routines" — the fraction vanishes as real work grows')
    emit(table)

    assert fractions == sorted(fractions, reverse=True)
    assert fractions[-1] < 0.10

    # Compile-time: applying the full motif stack is fast (the paper's
    # "automatically applied transformations can speed the development
    # process").
    application = parse_program(
        "eval(add, L, R, V) :- V := L + R.\neval(mul, L, R, V) :- V := L * R.",
        name="eval",
    )
    motif = tree_reduce_1()
    t0 = time.perf_counter()
    for _ in range(20):
        motif.apply(application)
    per_apply = (time.perf_counter() - t0) / 20
    emit(f"E8  motif stack application (source-to-source compile): "
         f"{per_apply * 1000:.2f} ms per application")
    assert per_apply < 0.5

    benchmark(lambda: motif.apply(application))
