"""E9 — server library ablation: ports vs the Figure-3 merge network.

§3.2 presents the server library of Figure 3, built from N² streams and
explicit binary ``merge`` trees; Strand systems also provided ports
(many-writer streams), which our default library uses.  §3.6: "many
applications will benefit from specialized motifs tailored to their
particular requirements" — this ablation quantifies the trade.

Series: reductions, messages, and virtual time of the same Tree-Reduce-1
workload under each server library, across machine sizes.  Shape expected:
the merge network pays extra reductions per delivered message (the merge
chain), growing with P.
"""

from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree

LEAVES = 48


def run(library: str, processors: int):
    tree = arithmetic_tree(LEAVES, seed=9)
    return reduce_tree(tree, eval_arith_node, processors=processors,
                       strategy="tr1", server_library=library, seed=4,
                       eval_cost=20.0).metrics


def test_e9_port_vs_merge_network(emit, benchmark):
    table = Table(
        "E9  server library ablation (Tree-Reduce-1, 48 leaves)",
        ["P", "library", "reductions", "messages", "virtual time",
         "reductions vs ports"],
    )
    for processors in (2, 4, 8):
        ports = run("ports", processors)
        merge = run("merge", processors)
        table.add(processors, "ports", ports.reductions, ports.messages,
                  ports.makespan, "1.00x")
        table.add(processors, "merge (Fig. 3)", merge.reductions,
                  merge.messages, merge.makespan,
                  f"{merge.reductions / ports.reductions:.2f}x")
        assert merge.reductions > ports.reductions
    table.note("the Figure-3 merge network spends extra reductions moving "
               "every message through a merge chain; the overhead grows "
               "with the machine")
    emit(table)

    benchmark(lambda: run("ports", 4))
