"""E7 — incremental effort of parallelization (paper §3.6).

Reproduces: "The first [tree reduction motif] is implemented with five
lines of code, and the second with a page of library code and a simple
transformation ...  In contrast, the node evaluation code for the sequence
alignment application currently exceeds 2000 lines of Strand and C.
Hence, the use of motifs permits a parallel version of our code to be
developed with only a small incremental effort."

Measured: rules/goals/source-lines of (a) what the user writes, (b) what
each motif stage contributes (library + generated code), for the
arithmetic and the alignment applications; and the user-share ratio.
"""

from repro.analysis import Table, diff_generated, measure
from repro.apps.arithmetic import EVAL_SOURCE
from repro.core.motif import ComposedMotif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.termination import short_circuit_motif
from repro.motifs.tree_reduce1 import tree1_motif
from repro.motifs.tree_reduce2 import tree_reduce_motif
from repro.strand.parser import parse_program
from repro.strand.program import Program


def stack_tr1():
    return ComposedMotif([
        tree1_motif(),
        short_circuit_motif(entry=("reduce", 2), sync_outputs={("eval", 4): 3}),
        rand_motif(),
        server_motif(),
    ])


def stack_tr2():
    return ComposedMotif([tree_reduce_motif(), server_motif()])


def staged_sizes(motif, application):
    rows = []
    previous = application
    for stage, applied in zip(motif.stages(), motif.apply_staged(application)):
        delta = diff_generated(previous, applied.program)
        rows.append((stage.name, delta))
        previous = applied.program
    return rows


def test_e7_incremental_effort(emit, benchmark):
    # The "user code": for arithmetic, four Strand rules; the paper's real
    # align-node was >2000 lines of Strand+C (here a Python foreign module,
    # measured in Python source lines of repro.apps.bio).
    user_arith = parse_program(EVAL_SOURCE, name="user-eval")
    user_size = measure(user_arith)

    import inspect

    import repro.apps.bio as bio

    bio_lines = len([
        ln for ln in inspect.getsource(bio).splitlines()
        if ln.strip() and not ln.strip().startswith("#")
    ])

    table = Table(
        "E7  code contributed at each Tree-Reduce-1 stage (arithmetic app)",
        ["stage", "procedures added/changed", "rules", "goals", "lines"],
    )
    table.add("user eval (input)", user_size.procedures, user_size.rules,
              user_size.goals, user_size.lines)
    total_generated = 0
    for name, delta in staged_sizes(stack_tr1(), user_arith):
        table.add(name, delta.procedures, delta.rules, delta.goals, delta.lines)
        total_generated += delta.lines
    table.note(f"user writes {user_size.lines} lines; motifs supply/generate "
               f"{total_generated} — all reusable across applications")
    emit(table)

    table2 = Table(
        "E7  incremental effort for the alignment application",
        ["component", "lines", "share"],
    )
    tr1_total = sum(d.lines for _, d in staged_sizes(stack_tr1(), user_arith))
    tr2_total = sum(
        d.lines for _, d in staged_sizes(stack_tr2(), Program(name="empty"))
    )
    grand = bio_lines + tr1_total
    table2.add("align-node + bio pipeline (user, Python)", bio_lines,
               f"{bio_lines / grand:.0%}")
    table2.add("Tree-Reduce-1 stack (motifs, Strand)", tr1_total,
               f"{tr1_total / grand:.0%}")
    table2.add("Tree-Reduce-2 stack (motifs, Strand)", tr2_total, "-")
    table2.note('paper: node evaluation "exceeds 2000 lines" vs a five-line '
                "motif — parallelism is a small fraction of total effort")
    emit(table2)

    # Shape: the user's parallel-programming effort (zero extra lines for
    # TR-1: the motif is applied, not written) is small next to the
    # application code.
    assert user_size.rules <= 5
    assert bio_lines > 3 * tr1_total  # the application dominates motif glue

    application = parse_program(EVAL_SOURCE, name="user-eval")
    benchmark(lambda: stack_tr1().apply(application))
