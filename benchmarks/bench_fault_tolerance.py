"""Fault tolerance of the Supervise motif stack — completion rate and
recovery overhead versus injected failure rate.

For each crash rate the supervised tree reduction runs on several machine
seeds; a run *completes correctly* when it returns the fault-free answer,
*degrades* when retries were exhausted and a fallback leaked into the
result, and *fails* when the run deadlocks (e.g. the monitor channel was
severed before supervision could start).  Recovery overhead is the
makespan ratio against the fault-free run on the same seed.

Results go to ``benchmarks/BENCH_fault_tolerance.json``.  Run standalone
with ``python benchmarks/bench_fault_tolerance.py [--smoke]`` or under
pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import supervised_reduce_tree
from repro.errors import ReproError, StrandError
from repro.machine import FaultPlan, Machine

JSON_PATH = Path(__file__).parent / "BENCH_fault_tolerance.json"

PROCESSORS = 4
TIMEOUT = 600.0
RETRIES = 3
# Crashes start after the server network bootstraps (it is up within ~20
# virtual time units on 4 processors) so the sweep measures supervision,
# not boot-time fragility.
CRASH_WINDOW = (25.0, 250.0)

FULL = {"leaves": 32, "tree_seed": 3, "seeds": range(5),
        "rates": (0.0, 0.15, 0.3, 0.5)}
SMOKE = {"leaves": 16, "tree_seed": 3, "seeds": range(2),
         "rates": (0.0, 0.3)}


def run_once(tree, seed: int, crash_rate: float):
    """One supervised run; returns (value | None, metrics | None)."""
    faults = None
    if crash_rate > 0.0:
        faults = FaultPlan(crash_rate=crash_rate, crash_window=CRASH_WINDOW)
    machine = Machine(PROCESSORS, seed=seed, faults=faults)
    try:
        result = supervised_reduce_tree(
            tree, eval_arith_node, machine=machine,
            retries=RETRIES, timeout=TIMEOUT, max_reductions=2_000_000,
        )
    except (ReproError, StrandError):
        # Deadlock (severed supervision channel) or a blown reduction
        # budget both count as a failed run.
        return None, machine.metrics()
    return result.value, result.metrics


def sweep(config) -> dict:
    tree = arithmetic_tree(config["leaves"], seed=config["tree_seed"])
    expected = None
    baselines: dict[int, float] = {}
    rows = []
    for rate in config["rates"]:
        completed = correct = 0
        overheads = []
        retries = degraded = crashes = 0
        for seed in config["seeds"]:
            value, metrics = run_once(tree, seed, rate)
            if rate == 0.0:
                # Fault-free pass fixes the expected answer and the
                # per-seed makespan baselines for the overhead ratio.
                expected = value if expected is None else expected
                baselines[seed] = metrics.makespan
            if value is not None:
                completed += 1
                if value == expected:
                    correct += 1
                base = baselines.get(seed)
                if base:
                    overheads.append(metrics.makespan / base)
            if metrics is not None:
                retries += metrics.sup_retries
                degraded += metrics.sup_degraded
                crashes += metrics.crashes
        n = len(list(config["seeds"]))
        rows.append({
            "crash_rate": rate,
            "runs": n,
            "completion_rate": round(completed / n, 3),
            "correct_rate": round(correct / n, 3),
            "mean_recovery_overhead": (
                round(sum(overheads) / len(overheads), 3) if overheads else None
            ),
            "crashes": crashes,
            "sup_retries": retries,
            "sup_degraded": degraded,
        })
    return {
        "benchmark": "fault_tolerance",
        "workload": (
            f"supervised tree-reduce, {config['leaves']} leaves, "
            f"P={PROCESSORS}, retries={RETRIES}, timeout={TIMEOUT}"
        ),
        "expected_value": expected,
        "rows": rows,
    }


def render(payload: dict) -> str:
    lines = [payload["workload"],
             f"{'crash_rate':>10} {'complete':>9} {'correct':>8} "
             f"{'overhead':>9} {'retries':>8} {'degraded':>9}"]
    for row in payload["rows"]:
        overhead = row["mean_recovery_overhead"]
        lines.append(
            f"{row['crash_rate']:>10} {row['completion_rate']:>9} "
            f"{row['correct_rate']:>8} "
            f"{overhead if overhead is not None else '-':>9} "
            f"{row['sup_retries']:>8} {row['sup_degraded']:>9}"
        )
    return "\n".join(lines)


def run_bench(config) -> dict:
    payload = sweep(config)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Invariants the sweep must uphold regardless of scale: the fault-free
    # column is perfect, and every fault-free run is makespan-baseline 1.0.
    base = payload["rows"][0]
    assert base["crash_rate"] == 0.0
    assert base["completion_rate"] == 1.0
    assert base["correct_rate"] == 1.0
    assert payload["expected_value"] is not None
    return payload


def test_fault_tolerance(emit):
    payload = run_bench(SMOKE)
    emit(render(payload))


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI")
    args = parser.parse_args()
    payload = run_bench(SMOKE if args.smoke else FULL)
    print(render(payload))
    print(f"\nwrote {JSON_PATH}")
