"""E11 — scheduler motif: reuse through modification (paper §1).

Reproduces: "a scheduler motif might be adapted to the demands of a highly
parallel computer by introducing additional levels in its manager/worker
hierarchy."

Series: manager-processor load share under the flat scheduler (every
submission, dispatch, and completion crosses server 1) vs the hierarchical
variant (group leaders own dispatch/completion), as the machine grows.
Shape expected: the flat manager's share stays dominant; the hierarchy
moves most traffic off the top.
"""

from repro.analysis import Table
from repro.apps.taskbag import TASKBAG_SOURCE, expected_sum, register_taskbag
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.scheduler import scheduled_application
from repro.strand.parser import parse_program
from repro.strand.terms import Struct, Var, deref

TASKS = 60
COST = 40.0


def run(processors: int, hierarchical: bool, groups: int = 4, seed: int = 1):
    app = parse_program(TASKBAG_SOURCE, name="taskbag")
    motif = scheduled_application(
        entry=("main", 2),
        hierarchical=hierarchical,
        outputs={("work", 2): 1},
        sync_outputs={("work", 2): 1},
    )
    applied = motif.apply(app)
    applied.foreign_setup.append(lambda reg: register_taskbag(reg, cost=COST))
    applied.user_names.add("work")
    machine = Machine(processors, seed=seed)
    total = Var("Sum")
    boot = Struct("boot", (TASKS, total, Var("Done")))
    if hierarchical:
        goal = Struct("create", (processors, Struct("hinit", (groups, boot))))
    else:
        goal = Struct("create", (processors, Struct("minit", (boot,))))
    _, metrics = run_applied(applied, goal, machine)
    assert deref(total) == expected_sum(TASKS)
    return metrics


def test_e11_flat_vs_hierarchical(emit, benchmark):
    table = Table(
        f"E11  manager bottleneck: flat vs hierarchical scheduler "
        f"({TASKS} tasks)",
        ["P", "variant", "manager busy", "manager share", "makespan",
         "efficiency"],
    )
    shares = {}
    for processors in (5, 9, 13):
        flat = run(processors, hierarchical=False)
        hier = run(processors, hierarchical=True, groups=(processors - 1) // 3)
        for name, metrics in (("flat", flat), ("hierarchical", hier)):
            share = metrics.busy[0] / metrics.total_busy
            shares[(processors, name)] = share
            table.add(processors, name, metrics.busy[0], share,
                      metrics.makespan, metrics.efficiency)
        assert hier.busy[0] < flat.busy[0]
    table.note('paper §1: adapt the scheduler "by introducing additional '
               'levels in its manager/worker hierarchy" — the top manager '
               "sheds dispatch and completion traffic")
    emit(table)

    benchmark(lambda: run(9, hierarchical=True, groups=2))
