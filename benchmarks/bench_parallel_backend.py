"""Parallel backend — sequential-vs-N-workers wall-clock speedup curve.

Infrastructure benchmark (not a paper experiment): the simulator's results
are defined in *virtual* time, but the parallel backend exists to spend
less *wall-clock* time computing them.  This benchmark runs one
embarrassingly parallel workload — every virtual processor crunching an
independent arithmetic loop, so almost every reduction is shard-local and
the epoch protocol barriers only a handful of times — on the sequential
backend and on the parallel backend at 1, 2, and 4 workers, asserting the
results are identical and recording the speedup curve in
``benchmarks/BENCH_parallel_backend.json``.

Wall-clock speedup is bounded by the host's core count: worker processes
multiplex onto the CPUs the container actually has, so on a single-core
runner every parallel configuration *loses* (the epoch protocol and
process startup are pure overhead).  The JSON therefore records
``cpu_count`` next to the curve; read the speedups against it.

Run with ``python benchmarks/bench_parallel_backend.py [--smoke]`` or under
pytest with the rest of the benchmark suite.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import Table
from repro.machine import Machine
from repro.strand import parse_program, run_query

JSON_PATH = Path(__file__).parent / "BENCH_parallel_backend.json"

# Each of N virtual processors runs an independent W-iteration arithmetic
# loop: confluent (no message races), shard-local, reduction-heavy.
CRUNCH = """
go(N, W, Out) :- spread(N, W, Out).
spread(0, _W, Out) :- Out := [].
spread(N, W, Out) :- N > 0 |
    Out := [V | Rest],
    crunch(W, 0, V) @ N,
    N1 := N - 1,
    spread(N1, W, Rest).
crunch(0, Acc, V) :- V := Acc.
crunch(W, Acc, V) :- W > 0 |
    Acc1 := Acc + W,
    W1 := W - 1,
    crunch(W1, Acc1, V).
"""

FULL = {"processors": 8, "work": 4000, "workers": (1, 2, 4), "seed": 11}
SMOKE = {"processors": 4, "work": 400, "workers": (1, 2), "seed": 11}


def run_once(config, backend: str, workers: int | None = None):
    machine = Machine(
        config["processors"], seed=config["seed"], backend=backend,
        workers=workers,
    )
    program = parse_program(CRUNCH, name="crunch")
    query = f"go({config['processors']}, {config['work']}, Out)"
    start = time.perf_counter()
    result = run_query(program, query, machine=machine)
    elapsed = time.perf_counter() - start
    return result.value("Out"), result.metrics, elapsed


def run_bench(config) -> dict:
    seq_value, seq_metrics, seq_elapsed = run_once(config, "sequential")
    rows = [{
        "backend": "sequential", "workers": 0,
        "wall_seconds": round(seq_elapsed, 4), "speedup": 1.0,
        "reductions": seq_metrics.reductions, "equal": True,
    }]
    for workers in config["workers"]:
        value, metrics, elapsed = run_once(config, "parallel", workers)
        equal = value == seq_value
        assert equal, (
            f"parallel backend ({workers} workers) diverged from sequential"
        )
        rows.append({
            "backend": "parallel", "workers": workers,
            "wall_seconds": round(elapsed, 4),
            "speedup": round(seq_elapsed / elapsed, 3),
            "reductions": metrics.reductions, "equal": equal,
        })
    payload = {
        "benchmark": "parallel_backend.speedup",
        "workload": (
            f"go({config['processors']}, {config['work']}, Out) — "
            f"{config['processors']} independent {config['work']}-step "
            "arithmetic loops"
        ),
        "cpu_count": os.cpu_count(),
        "note": (
            "wall-clock speedup is bounded by cpu_count: worker processes "
            "share the host's cores, so speedup > 1.3x at 4 workers "
            "requires a host with at least 4 cores; on fewer cores the "
            "curve records protocol+startup overhead instead"
        ),
        "rows": rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    return payload


def render(payload: dict) -> str:
    table = Table(
        "parallel backend  sequential-vs-N-workers wall-clock "
        f"(host cpu_count={payload['cpu_count']})",
        ["backend", "workers", "wall seconds", "speedup", "reductions",
         "equal results"],
    )
    for row in payload["rows"]:
        table.add(row["backend"], row["workers"] or "-",
                  row["wall_seconds"], row["speedup"], row["reductions"],
                  row["equal"])
    table.note(payload["note"])
    return table.render()


def test_parallel_backend_speedup(emit):
    payload = run_bench(SMOKE)
    emit(render(payload))
    assert all(row["equal"] for row in payload["rows"])


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI")
    args = parser.parse_args()
    payload = run_bench(SMOKE if args.smoke else FULL)
    print(render(payload))
    print(f"\nwrote {JSON_PATH}")
