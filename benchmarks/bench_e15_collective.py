"""E15 — collective reduction across the machine (hypercube heritage).

§2.1 lists hypercubes among Strand's home machines; the hypercube-native
collective is recursive doubling.  This experiment reproduces the classic
``O(log P)`` vs ``O(P)`` separation between the doubling allreduce and a
central fold-then-broadcast, on the virtual hypercube — the kind of
building-block motif the paper's framework is meant to host.
"""

from repro.analysis import Table
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.collective import (
    allreduce_goals,
    central_reduce_goals,
    collective_motif,
)
from repro.strand.program import Program
from repro.strand.terms import deref

COMBINE_COST = 8.0


def run(plan: str, processors: int):
    applied = collective_motif().apply(Program(name="app"))
    applied.foreign_setup.append(
        lambda reg: reg.register("cop", 3, lambda a, b: a + b,
                                 cost=COMBINE_COST)
    )
    applied.user_names.add("cop")
    values = list(range(processors))
    machine = Machine(processors, topology="hypercube")
    if plan == "doubling":
        goals, results = allreduce_goals(values)
        _, metrics = run_applied(applied, goals, machine)
        assert [deref(r) for r in results] == [sum(values)] * processors
    else:
        goals, total, _ = central_reduce_goals(values)
        _, metrics = run_applied(applied, goals, machine)
        assert deref(total) == sum(values)
    return metrics


def test_e15_allreduce(emit, benchmark):
    table = Table(
        "E15  allreduce on the hypercube: recursive doubling vs central fold",
        ["P", "doubling time", "central time", "central/doubling"],
    )
    ratios = []
    for processors in (8, 16, 32, 64):
        doubling = run("doubling", processors).makespan
        central = run("central", processors).makespan
        ratios.append(central / doubling)
        table.add(processors, doubling, central, central / doubling)
    table.note("O(log P) rounds vs an O(P) fold chain — the gap widens "
               "with the machine, the textbook collective-communication "
               "shape")
    emit(table)

    assert ratios == sorted(ratios)
    assert ratios[-1] > 3.0

    benchmark(lambda: run("doubling", 16))
