"""E6 — static partition vs dynamic random mapping (paper §3.1).

Reproduces: "A static partition of the tree is probably ideal in the
simple arithmetic example.  In contrast, our biology application requires
a more dynamic algorithm, as the time required at each node is non-uniform
and cannot easily be predicted."

Matrix: {balanced, irregular(random-split)} trees × {uniform, heavy-tailed}
node costs; virtual makespan of the static partition vs Tree-Reduce-1's
random mapping on 8 processors.  Shape expected: static wins the
regular/uniform corner; the random mapping wins once the tree is
irregular (the phylogeny case), under either cost model.
"""

import itertools

from repro.analysis import Table
from repro.apps.arithmetic import (
    arithmetic_tree,
    eval_arith_node,
    heavy_tailed_cost,
    uniform_cost,
)
from repro.core.api import reduce_tree

P = 8
LEAVES = 128


def cost_model(kind: str):
    if kind == "uniform":
        return uniform_cost(100.0)
    return heavy_tailed_cost(base=40.0, spike=1500.0, spike_probability=0.08,
                             seed=5)


def run(shape: str, kind: str, strategy: str, seed: int = 2):
    tree = arithmetic_tree(LEAVES, seed=13, shape=shape)
    return reduce_tree(tree, eval_arith_node, processors=P, strategy=strategy,
                       seed=seed, eval_cost=cost_model(kind)).metrics


def test_e6_static_vs_dynamic(emit, benchmark):
    table = Table(
        "E6  static partition vs dynamic random mapping (P=8, 128 leaves)",
        ["tree shape", "node costs", "static time", "static imb",
         "dynamic time", "dynamic imb", "winner"],
    )
    results = {}
    for shape, kind in itertools.product(("balanced", "random"),
                                         ("uniform", "heavy")):
        static = run(shape, kind, "static")
        dynamic = run(shape, kind, "tr1")
        winner = "static" if static.makespan < dynamic.makespan else "dynamic"
        results[(shape, kind)] = winner
        table.add(shape, kind, static.makespan, static.imbalance,
                  dynamic.makespan, dynamic.imbalance, winner)
    table.note("crossover: regular trees favour the static split; irregular "
               "(phylogeny-like) trees favour random mapping (§3.1)")
    emit(table)

    # The paper's qualitative claims:
    assert results[("balanced", "uniform")] == "static"
    assert results[("random", "uniform")] == "dynamic"
    assert results[("random", "heavy")] == "dynamic"

    benchmark(lambda: run("random", "uniform", "tr1"))
