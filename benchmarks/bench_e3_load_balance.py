"""E3 — load balance of random mapping (paper §3.1).

Reproduces: "This random mapping should produce a reasonably balanced load
if |Nodes| >> |Processors|."

Series: per-processor busy-time imbalance (max/mean) as the
nodes-per-processor ratio grows, on a fixed 8-processor machine, averaged
over machine seeds.  Shape expected: imbalance falls toward 1.0.
"""

from repro.analysis import Table, load_stats
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree

P = 8
SEEDS = (1, 2, 3)


def run_once(leaves: int, seed: int):
    tree = arithmetic_tree(leaves, seed=leaves)  # tree fixed per size
    return reduce_tree(tree, eval_arith_node, processors=P, strategy="tr1",
                       seed=seed, eval_cost=25.0).metrics


def test_e3_random_mapping_load_balance(emit, benchmark):
    table = Table(
        "E3  load imbalance of random mapping vs nodes/processor (P=8)",
        ["leaves", "nodes/P", "imbalance (max/mean)", "CV", "Jain fairness",
         "efficiency"],
    )
    series = []
    for leaves in (8, 16, 32, 64, 128, 256, 512):
        stats = [load_stats(run_once(leaves, seed)) for seed in SEEDS]
        imb = sum(s.imbalance for s in stats) / len(stats)
        cv = sum(s.cv for s in stats) / len(stats)
        fair = sum(s.fairness for s in stats) / len(stats)
        eff = sum(s.efficiency for s in stats) / len(stats)
        nodes = 2 * leaves - 1
        series.append((nodes / P, imb))
        table.add(leaves, nodes / P, imb, cv, fair, eff)
    table.note('paper: "reasonably balanced load if |Nodes| >> |Processors|"'
               " — imbalance approaches 1.0 as the ratio grows")
    emit(table)

    # Shape: the imbalance at the largest ratio is well below the smallest
    # (processor 1 always carries the bootstrap, so 1.0 is not reachable).
    assert series[-1][1] < 0.65 * series[0][1]
    assert series[-1][1] < 2.0

    benchmark(lambda: run_once(64, 1))
