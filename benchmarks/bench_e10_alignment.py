"""E10 — the end-to-end sequence alignment application (paper §3, abstract).

Reproduces: the motivating application — multiple RNA alignment by guide-
tree reduction with the align-node operator — under both tree-reduction
motifs.  The alignment (and its sum-of-pairs quality) must be identical
under every schedule; virtual speedup and the TR-1/TR-2 memory trade are
reported.
"""

from repro.analysis import Table
from repro.apps.bio import align_cost, align_node, alignment_workload, sum_of_pairs
from repro.apps.trees import sequential_reduce
from repro.core.api import reduce_tree

N_SEQUENCES = 10


def workload():
    return alignment_workload(n_sequences=N_SEQUENCES, root_length=30, seed=6)


def run(tree, strategy: str, processors: int):
    return reduce_tree(tree, align_node, processors=processors,
                       strategy=strategy, seed=2, eval_cost=align_cost)


def test_e10_alignment_end_to_end(emit, benchmark):
    family, tree = workload()
    reference = sequential_reduce(tree, align_node)
    ref_score = sum_of_pairs(reference)

    table = Table(
        f"E10  multiple alignment of {N_SEQUENCES} synthetic RNA sequences",
        ["strategy", "P", "virtual time", "speedup", "messages",
         "peak live aligns", "sum-of-pairs", "identical"],
    )
    base = run(tree, "sequential", 1).metrics.makespan
    table.add("sequential", 1, base, 1.0, 0, "-", ref_score, True)
    for strategy in ("tr1", "tr2"):
        for processors in (2, 4, 8):
            result = run(tree, strategy, processors)
            same = result.value == reference
            table.add(strategy, processors, result.metrics.makespan,
                      base / result.metrics.makespan, result.metrics.messages,
                      result.metrics.max_peak_live_tasks,
                      sum_of_pairs(result.value), same)
            assert same
            if strategy == "tr2":
                assert result.metrics.max_peak_live_tasks == 1
    table.note("identical alignment under every schedule; TR-2 holds one "
               "align-node in flight per processor (its §3.5 design goal)")
    emit(table)

    # Guide-tree quality: how close do UPGMA and neighbor joining get to
    # the generating phylogeny?  (Robinson-Foulds distance; 0 = exact.)
    from repro.apps.bio import (
        guide_tree,
        guide_tree_nj,
        relabel_with_names,
        robinson_foulds,
    )

    quality = Table(
        "E10  guide-tree quality vs the generating phylogeny (RF distance)",
        ["method", "RF distance", "max possible"],
    )
    max_rf = 2 * (N_SEQUENCES - 3)
    for name, builder in (("UPGMA", guide_tree), ("neighbor joining",
                                                  guide_tree_nj)):
        candidate = relabel_with_names(builder(family), family)
        rf = robinson_foulds(candidate, family.true_tree)
        quality.add(name, rf, max_rf)
        assert rf <= max_rf // 2
    quality.note("both distance methods sit close to the true topology on "
                 "this synthetic family — the guide tree the motifs reduce "
                 "is biologically sensible")
    emit(quality)

    benchmark(lambda: run(tree, "tr1", 4))
