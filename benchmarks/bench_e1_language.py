"""E1 — the language substrate (paper Figure 1, §2.1).

Reproduces: Figure 1's producer/consumer runs under our engine with the
described synchronous-rendezvous semantics; engine throughput is reported
so later experiments' virtual-time figures have a wall-clock anchor.

Series: message count N vs reductions and virtual time (both linear — the
rendezvous costs a constant number of reductions per message).
"""

import pytest

from repro.analysis import Table
from repro.machine import Machine
from repro.strand import parse_program, run_query

FIGURE1 = """
go(N) :- producer(N, Xs, sync), consumer(Xs).
producer(N, Xs, _Sync) :- N > 0 |
    Xs := [X | Xs1],
    N1 := N - 1,
    producer(N1, Xs1, X).
producer(0, Xs, _) :- Xs := [].
consumer([X | Xs]) :- X := sync, consumer(Xs).
consumer([]).
"""

PROGRAM = parse_program(FIGURE1, name="figure1")


def run_fig1(n: int):
    return run_query(PROGRAM, f"go({n})", machine=Machine(1))


def test_e1_figure1_rendezvous(emit, benchmark):
    table = Table(
        "E1  Figure 1 producer/consumer (synchronous rendezvous)",
        ["messages N", "reductions", "virtual time", "reductions/message"],
    )
    rows = []
    for n in (10, 50, 100, 200, 400):
        metrics = run_fig1(n).metrics
        rows.append((n, metrics.reductions, metrics.makespan))
        table.add(n, metrics.reductions, metrics.makespan,
                  metrics.reductions / n)
    table.note("paper: 'After sending 4 messages, the two processes "
               "terminate' — cost per message is constant")
    emit(table)

    # Shape: linear in N (constant per-message overhead).
    (n1, r1, _), (n2, r2, _) = rows[0], rows[-1]
    per_msg_small = (r1) / n1
    per_msg_large = (r2) / n2
    assert abs(per_msg_small - per_msg_large) < 1.0

    benchmark(lambda: run_fig1(200))
