"""Observability overhead: what causal tracing and profiling cost.

One fixed workload (TR1 tree-reduce on 4 processors) timed under five
instrumentation modes:

* **off** — tracing disabled, no profile.  This is the default engine
  configuration; the observability fast path is a single ``enabled``
  check per hot-path site.
* **ring** — tracing enabled into a bounded ring buffer (keeps the last
  N events); the steady-state cost of always-on tracing.
* **full** — tracing enabled, unbounded; every event retained.
* **profile** — tracing off, :class:`MotifProfile` attached; the cost of
  per-motif/per-predicate accounting alone.
* **sink** — full tracing streamed to a JSONL :class:`TraceSink`; the
  worst case (every event also serialised to disk).

Because the machine is a *virtual-time* simulator, instrumentation must
never change the computed answer, the schedule, or the makespan — the
bench asserts all three are identical across modes.  Timing uses CPU
time (``process_time``), min-of-N, to suppress scheduler noise.

When the pre-PR baseline commit is reachable (``PRE_PR_REF``), the same
workload is also timed against a detached worktree of the engine *before*
the observability hooks existed.  Both sides run in identical fresh
subprocesses, interleaved in pairs over several rounds.  The headline
overhead is the **floor ratio** — best-of-all-samples current vs
best-of-all-samples baseline — the standard intrinsic-cost estimator,
robust to one-sided load spikes; the median per-pair ratio is reported
alongside for transparency.  Budget: **off-mode overhead ≤ 2%** vs that
baseline (documented in ``docs/OBSERVABILITY.md``; the full-run gate
allows 5% for timing noise).  The baseline comparison is *enforced* only
in the full configuration — the smoke/CI run reports it but gates only
the traced-mode budgets, because sub-100ms A/B timing on shared CI
runners flaps far beyond the margin being tested (and shallow clones may
lack the baseline commit entirely, which is reported as unavailable).

Results go to ``benchmarks/BENCH_observability.json``.  Run standalone
with ``python benchmarks/bench_observability.py [--smoke]`` or under
pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path
from time import process_time

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.machine import Machine, MotifProfile, Trace, TraceSink

JSON_PATH = Path(__file__).parent / "BENCH_observability.json"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Last commit before the observability PR — the engine with no tracing
#: hooks at all.  Used for the off-mode overhead baseline when reachable.
PRE_PR_REF = "7c1827ec7fde42d85292e340b4ab7cb8e5b43168"

PROCESSORS = 4
SEED = 7
RING_LIMIT = 2048

#: Documented budgets (docs/OBSERVABILITY.md).  ``OFF_BUDGET`` is the
#: claim; ``OFF_CI_GATE`` is what CI enforces (headroom for noisy shared
#: runners).  ``TRACED_BUDGET`` caps every traced mode relative to off.
OFF_BUDGET = 0.02
OFF_CI_GATE = 0.05
TRACED_BUDGET = 4.0

FULL = {"leaves": 512, "repeats": 6, "baseline_rounds": 11,
        "gate_baseline": True}
SMOKE = {"leaves": 256, "repeats": 5, "baseline_rounds": 5,
         "gate_baseline": False}

#: Subprocess harness shared by both sides of the baseline comparison —
#: identical code path, only PYTHONPATH differs.  Sticks to API that
#: exists pre-PR (no trace/profile arguments).
_CHILD = """\
import json, sys
from time import process_time
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree
from repro.machine import Machine
leaves, repeats, procs, seed = map(int, sys.argv[1:5])
walls = []
for _ in range(repeats):
    tree = arithmetic_tree(leaves, seed=3)
    machine = Machine(procs, seed=seed)
    start = process_time()
    result = reduce_tree(tree, eval_arith_node, machine=machine,
                         strategy='tr1')
    walls.append(process_time() - start)
print(json.dumps({'min_wall_s': min(walls), 'value': result.value}))
"""


def _run_once(leaves: int, mode: str, sink_path: Path | None = None):
    """One timed run; returns (CPU seconds, result, machine)."""
    tree = arithmetic_tree(leaves, seed=3)
    machine = Machine(PROCESSORS, seed=SEED)
    profile = None
    sink = None
    if mode in ("ring", "full", "sink"):
        machine.trace = Trace(
            enabled=True,
            limit=RING_LIMIT if mode == "ring" else None,
            ring=(mode == "ring"),
        )
    if mode == "profile":
        profile = MotifProfile()
    if mode == "sink":
        sink = TraceSink.open(sink_path, processors=PROCESSORS)
        machine.trace.attach_sink(sink)
    start = process_time()
    result = reduce_tree(
        tree, eval_arith_node, machine=machine, strategy="tr1",
        profile=profile,
    )
    wall = process_time() - start
    if sink is not None:
        sink.close()
    return wall, result, machine


def measure(leaves: int, repeats: int, mode: str) -> dict:
    """min-of-N CPU time for one mode, plus determinism fingerprints."""
    walls = []
    with tempfile.TemporaryDirectory() as tmp:
        sink_path = Path(tmp) / "trace.jsonl"
        for _ in range(repeats):
            wall, result, machine = _run_once(leaves, mode, sink_path)
            walls.append(wall)
    wall = min(walls)
    return {
        "mode": mode,
        "min_wall_s": round(wall, 6),
        "reductions": result.metrics.reductions,
        "reductions_per_s": round(result.metrics.reductions / wall),
        "events": len(machine.trace),
        "events_dropped": machine.trace.dropped,
        "value": result.value,
        "makespan": result.metrics.makespan,
    }


def _child_time(pythonpath: Path, leaves: int, repeats: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pythonpath)
    ran = subprocess.run(
        [sys.executable, "-c", _CHILD, str(leaves), str(repeats),
         str(PROCESSORS), str(SEED)],
        cwd=REPO_ROOT, capture_output=True, text=True, env=env,
    )
    if ran.returncode != 0:
        raise RuntimeError(f"baseline child failed: {ran.stderr.strip()[-300:]}")
    return json.loads(ran.stdout)


def pre_pr_baseline(leaves: int, repeats: int, rounds: int) -> dict:
    """Paired off-vs-pre-PR comparison on a ``PRE_PR_REF`` worktree.

    Returns ``{"available": False, "why": ...}`` when the commit is not
    reachable (shallow clone) or the worktree cannot be created; the
    bench then skips the off-vs-baseline gate rather than fail CI.
    """
    probe = subprocess.run(
        ["git", "rev-parse", "--verify", "--quiet", PRE_PR_REF + "^{commit}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if probe.returncode != 0:
        return {"available": False, "why": "baseline commit not in clone"}
    with tempfile.TemporaryDirectory() as tmp:
        worktree = Path(tmp) / "pre_pr"
        added = subprocess.run(
            ["git", "worktree", "add", "--detach", str(worktree), PRE_PR_REF],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        if added.returncode != 0:
            return {"available": False,
                    "why": f"worktree add failed: {added.stderr.strip()}"}
        try:
            current_times, baseline_times = [], []
            current = baseline = None
            for _ in range(rounds):
                current = _child_time(REPO_ROOT / "src", leaves, repeats)
                baseline = _child_time(worktree / "src", leaves, repeats)
                current_times.append(current["min_wall_s"])
                baseline_times.append(baseline["min_wall_s"])
        except RuntimeError as e:
            return {"available": False, "why": str(e)}
        finally:
            subprocess.run(
                ["git", "worktree", "remove", "--force", str(worktree)],
                cwd=REPO_ROOT, capture_output=True, text=True,
            )
    ratios = [c / b for c, b in zip(current_times, baseline_times)]
    return {
        "available": True,
        "ref": PRE_PR_REF,
        "rounds": rounds,
        "value": baseline["value"],
        "current_value": current["value"],
        "floor_s": {"current": min(current_times),
                    "baseline": min(baseline_times)},
        "pair_ratios": [round(r, 4) for r in ratios],
        "median_pair_overhead": round(statistics.median(ratios) - 1.0, 4),
        "off_overhead": round(
            min(current_times) / min(baseline_times) - 1.0, 4),
    }


def run_bench(config) -> dict:
    leaves, repeats = config["leaves"], config["repeats"]
    # Warm the motif/compile caches so the first timed mode isn't charged
    # for one-time setup.
    _run_once(leaves, "off")

    rows = [measure(leaves, repeats, mode)
            for mode in ("off", "ring", "full", "profile", "sink")]
    off = rows[0]
    for row in rows:
        row["overhead_vs_off"] = round(row["min_wall_s"] / off["min_wall_s"], 3)

    baseline = pre_pr_baseline(leaves, repeats, config["baseline_rounds"])

    payload = {
        "benchmark": "observability",
        "workload": (
            f"tree-reduce (TR1), {leaves} leaves, P={PROCESSORS}, "
            f"seed={SEED}, min of {repeats} runs (CPU time)"
        ),
        "budgets": {
            "off_vs_pre_pr": OFF_BUDGET,
            "off_vs_pre_pr_ci_gate": OFF_CI_GATE,
            "traced_vs_off": TRACED_BUDGET,
        },
        "modes": rows,
        "pre_pr_baseline": baseline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Instrumentation must be invisible in virtual time: same answer,
    # same makespan, in every mode.
    for row in rows[1:]:
        assert row["value"] == off["value"], row
        assert row["makespan"] == off["makespan"], row
    # Off mode records nothing; traced modes record plenty; the ring
    # respects its bound.
    assert off["events"] == 0
    full = next(r for r in rows if r["mode"] == "full")
    ring = next(r for r in rows if r["mode"] == "ring")
    assert full["events"] > 0 and full["events_dropped"] == 0
    assert ring["events"] <= RING_LIMIT
    # Budget gates.
    for row in rows[1:]:
        assert row["overhead_vs_off"] <= TRACED_BUDGET, (
            f"{row['mode']} overhead {row['overhead_vs_off']}x exceeds "
            f"budget {TRACED_BUDGET}x"
        )
    if baseline.get("available"):
        assert baseline["value"] == off["value"]
        if config["gate_baseline"]:
            assert baseline["off_overhead"] <= OFF_CI_GATE, (
                f"tracing-off overhead {baseline['off_overhead']:.1%} vs "
                f"pre-PR engine exceeds the {OFF_CI_GATE:.0%} gate "
                f"(documented budget {OFF_BUDGET:.0%})"
            )
    return payload


def render(payload: dict) -> str:
    lines = [payload["workload"],
             f"{'mode':>8} {'cpu s':>9} {'red/s':>10} {'events':>7} "
             f"{'dropped':>8} {'vs off':>7}"]
    for row in payload["modes"]:
        lines.append(
            f"{row['mode']:>8} {row['min_wall_s']:>9.4f} "
            f"{row['reductions_per_s']:>10,} {row['events']:>7} "
            f"{row['events_dropped']:>8} {row['overhead_vs_off']:>6.2f}x"
        )
    baseline = payload["pre_pr_baseline"]
    if baseline.get("available"):
        lines.append(
            f"pre-PR baseline ({baseline['rounds']} paired rounds): "
            f"tracing-off overhead {baseline['off_overhead']:+.1%} "
            f"(budget {payload['budgets']['off_vs_pre_pr']:.0%})"
        )
    else:
        lines.append(f"pre-PR baseline unavailable: {baseline.get('why')}")
    return "\n".join(lines)


def test_observability_overhead(emit):
    payload = run_bench(SMOKE)
    emit(render(payload))


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI")
    args = parser.parse_args()
    payload = run_bench(SMOKE if args.smoke else FULL)
    print(render(payload))
    print(f"\nwrote {JSON_PATH}")
