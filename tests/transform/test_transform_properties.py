"""Property-based tests over the transformation engine: random programs in,
structural invariants out."""


from hypothesis import given, settings, strategies as st

from repro.motifs.random_map import RandTransformation
from repro.motifs.server import server_transformation
from repro.motifs.termination import ShortCircuit
from repro.strand.parser import parse_program
from repro.strand.pretty import format_program
from repro.strand.program import Program, Rule
from repro.strand.terms import Atom, Struct, Var
from repro.transform.callgraph import CallGraph
from repro.transform.rewrite import goal_indicator, strip_placement

# ---------------------------------------------------------------------------
# Random-program generator: a layered call structure with optional op calls
# and pragmas, guaranteed parseable and acyclic.
# ---------------------------------------------------------------------------

_names = st.sampled_from([f"p{i}" for i in range(8)])


@st.composite
def programs(draw):
    n_procs = draw(st.integers(2, 6))
    names = [f"p{i}" for i in range(n_procs)]
    program = Program(name="random")
    for level, name in enumerate(names):
        n_rules = draw(st.integers(1, 2))
        for _ in range(n_rules):
            arity = draw(st.integers(0, 3))
            head = Struct(name, tuple(Var(f"A{j}") for j in range(arity)))
            body = []
            # Call only procedures later in the list (acyclic, all defined).
            callees = names[level + 1:]
            for _ in range(draw(st.integers(0, 3))):
                if callees and draw(st.booleans()):
                    callee = draw(st.sampled_from(callees))
                    callee_arity = draw(st.integers(0, 2))
                    goal = Struct(callee, tuple(Var(f"B{j}") for j in range(callee_arity)))
                    if draw(st.booleans()):
                        goal = Struct("@", (goal, Atom("random")))
                    body.append(goal)
                elif draw(st.booleans()):
                    body.append(Struct("send", (1, Atom("msg"))))
                else:
                    body.append(Struct(":=", (Var("X"), draw(st.integers(0, 9)))))
            program.add_rule(Rule(head, [], body))
    return program


@given(programs())
@settings(max_examples=40, deadline=None)
def test_server_transformation_invariants(program):
    """ThreadArgument: rule count preserved; exactly the transitive callers
    of ops gain one argument; no op calls survive.  Arity-shift collisions
    (an affected p/k next to an unaffected p/k+1) are refused explicitly."""
    from repro.errors import TransformError

    t = server_transformation()
    before_rules = program.rule_count()
    graph = CallGraph(program)
    affected = graph.callers_of({("send", 2), ("nodes", 1), ("halt", 0)})
    defined = set(program.indicators)
    collision = any(
        (name, arity + 1) in defined and (name, arity + 1) not in affected
        for name, arity in affected
    )
    if collision:
        try:
            t.apply(program)
        except TransformError as e:
            assert "collide" in str(e)
            return
        raise AssertionError("collision not detected")
    out = t.apply(program)
    assert out.rule_count() == before_rules
    for name, arity in program.indicators:
        if (name, arity) in affected:
            assert (name, arity + 1) in out
            # The slot p/k is vacated unless p/k-1 was also affected and
            # shifted into it (the legal chain-shift case).
            if (name, arity - 1) not in affected:
                assert (name, arity) not in out
        else:
            # Unaffected procedures keep their arity (the generated program
            # never defines server/1, so the also_thread clause is moot here).
            assert (name, arity) in out
    for rule in out.rules():
        for goal in rule.body:
            assert goal_indicator(goal) not in {("send", 2), ("nodes", 1), ("halt", 0)}


@given(programs())
@settings(max_examples=40, deadline=None)
def test_server_transformation_output_reparses(program):
    from repro.errors import TransformError

    try:
        out = server_transformation().apply(program)
    except TransformError:
        return  # arity-shift collision: refusal is the contract
    text = format_program(out)
    reparsed = parse_program(text)
    assert format_program(reparsed) == text


@given(programs())
@settings(max_examples=40, deadline=None)
def test_rand_erases_all_pragmas(program):
    from repro.errors import TransformError

    try:
        out = RandTransformation(extra_entries=(("p0", 0),)).apply(program)
    except TransformError:
        return  # no pragma and no entries: rejection is the contract
    for rule in out.rules():
        for goal in rule.body:
            _, where = strip_placement(goal)
            assert where is not Atom("random")


@given(programs())
@settings(max_examples=40, deadline=None)
def test_rand_generates_dispatch_per_annotated_type(program):
    annotated = set()
    for rule in program.rules():
        for goal in rule.body:
            inner, where = strip_placement(goal)
            if where is Atom("random"):
                annotated.add(inner.indicator)
    if not annotated:
        return
    out = RandTransformation().apply(program)
    server = out.procedure("server", 1)
    assert server is not None
    # one rule per annotated type + halt + eos
    assert len(server.rules) == len(annotated) + 2


@given(programs())
@settings(max_examples=30, deadline=None)
def test_short_circuit_adds_two_args_to_reachable(program):
    entry = ("p0", program.procedure("p0", 0).arity if program.procedure("p0", 0) else None)
    # find some defined p0 arity
    arities = [ind[1] for ind in program.indicators if ind[0] == "p0"]
    if not arities:
        return
    entry = ("p0", arities[0])
    from repro.errors import TransformError

    graph = CallGraph(program)
    reachable = graph.reachable_from({entry}) & set(program.indicators)
    try:
        out = ShortCircuit(entry=entry).apply(program)
    except TransformError:
        return  # arity-shift collision: refusal is the contract
    for name, arity in reachable:
        assert (name, arity + 2) in out
        # The slot is vacated unless p/k-2 was also threaded into it.
        if (name, arity - 2) not in reachable:
            assert (name, arity) not in out
