"""Transformation engine tests: rewriting, call graphs, argument threading."""

import pytest

from repro.errors import TransformError
from repro.strand.parser import parse_program, parse_term
from repro.strand.pretty import format_program

from repro.strand.terms import Atom, Struct, Var
from repro.transform import (
    CallGraph,
    Chain,
    FunctionTransformation,
    Identity,
    ThreadArgument,
    goal_indicator,
    map_body_goals,
    map_rules,
    strip_placement,
    with_placement,
)

SAMPLE = """
a(X) :- b(X), c.
b(X) :- X > 0 | send(1, msg(X)).
b(0).
c :- d.
d.
standalone :- d.
"""


class TestRewriteHelpers:
    def test_strip_placement_plain(self):
        goal, where = strip_placement(parse_term("f(X)"))
        assert goal.indicator == ("f", 1)
        assert where is None

    def test_strip_placement_annotated(self):
        goal, where = strip_placement(parse_term("f(X) @ random"))
        assert goal.indicator == ("f", 1)
        assert where is Atom("random")

    def test_strip_nested_placement(self):
        goal, where = strip_placement(parse_term("f(X) @ 1 @ 2"))
        assert goal.indicator == ("f", 1)

    def test_with_placement_roundtrip(self):
        goal, where = strip_placement(parse_term("f(X) @ 3"))
        re = with_placement(goal, where)
        assert re.functor == "@"

    def test_goal_indicator_atom(self):
        assert goal_indicator(Atom("halt")) == ("halt", 0)

    def test_map_body_goals_replacement(self):
        program = parse_program("p :- q, r.")
        out = map_body_goals(
            program,
            lambda g, rule: [] if goal_indicator(g) == ("q", 0) else g,
        )
        rule = next(out.rules())
        assert len(rule.body) == 1

    def test_map_body_goals_pure(self):
        program = parse_program("p :- q.")
        map_body_goals(program, lambda g, rule: [g, g])
        assert next(program.rules()).body and len(next(program.rules()).body) == 1

    def test_map_rules_split(self):
        program = parse_program("p(1).")
        out = map_rules(program, lambda r: [r, r])
        assert out.rule_count() == 2


class TestCallGraph:
    def test_edges(self):
        graph = CallGraph(parse_program(SAMPLE))
        assert ("b", 1) in graph.callees(("a", 1))
        assert ("send", 2) in graph.callees(("b", 1))

    def test_callers_of_transitive(self):
        graph = CallGraph(parse_program(SAMPLE))
        affected = graph.callers_of({("send", 2)})
        assert affected == {("a", 1), ("b", 1)}

    def test_callers_excludes_unrelated(self):
        graph = CallGraph(parse_program(SAMPLE))
        affected = graph.callers_of({("send", 2)})
        assert ("c", 0) not in affected
        assert ("standalone", 0) not in affected

    def test_reachable_from(self):
        graph = CallGraph(parse_program(SAMPLE))
        reach = graph.reachable_from({("a", 1)})
        assert ("d", 0) in reach
        assert ("standalone", 0) not in reach

    def test_placement_looked_through(self):
        graph = CallGraph(parse_program("p :- q @ random.\nq :- send(1, m)."))
        assert graph.callers_of({("send", 2)}) == {("p", 0), ("q", 0)}


class TestTransformationBase:
    def test_identity_copies(self):
        program = parse_program("p.")
        out = Identity().apply(program)
        assert out is not program
        assert format_program(out) == format_program(program)

    def test_chain_order(self):
        log = []
        t1 = FunctionTransformation(lambda p: (log.append(1), p)[1], "one")
        t2 = FunctionTransformation(lambda p: (log.append(2), p)[1], "two")
        Chain([t1, t2]).apply(parse_program("p."))
        assert log == [1, 2]

    def test_then_composition(self):
        log = []
        t1 = FunctionTransformation(lambda p: (log.append(1), p)[1], "one")
        t2 = FunctionTransformation(lambda p: (log.append(2), p)[1], "two")
        t1.then(t2).apply(parse_program("p."))
        assert log == [1, 2]


def _send_rewriter(goal: Struct, dt: Var):
    return [Struct("distribute", (*goal.args, dt))]


class TestThreadArgument:
    def make(self, **kw):
        return ThreadArgument(ops={("send", 2): _send_rewriter}, **kw)

    def test_affected_set(self):
        t = self.make()
        assert t.affected(parse_program(SAMPLE)) == {("a", 1), ("b", 1)}

    def test_heads_gain_argument(self):
        out = self.make().apply(parse_program(SAMPLE))
        assert ("a", 2) in out
        assert ("b", 2) in out
        assert ("a", 1) not in out

    def test_unaffected_untouched(self):
        out = self.make().apply(parse_program(SAMPLE))
        assert ("c", 0) in out
        assert ("d", 0) in out

    def test_call_sites_threaded(self):
        out = self.make().apply(parse_program(SAMPLE))
        a_rule = out.procedure("a", 2).rules[0]
        b_call = a_rule.body[0]
        assert b_call.indicator == ("b", 2)
        # The threaded variable is shared between head and call.
        from repro.strand.terms import deref

        assert deref(a_rule.head.args[-1]) is deref(b_call.args[-1])

    def test_op_rewritten(self):
        out = self.make().apply(parse_program(SAMPLE))
        b_rule = out.procedure("b", 2).rules[0]
        assert b_rule.body[0].indicator == ("distribute", 3)

    def test_fact_threaded(self):
        out = self.make().apply(parse_program(SAMPLE))
        heads = [r.head.arity for r in out.procedure("b", 2).rules]
        assert heads == [2, 2]  # b(0) fact also got the argument

    def test_message_data_untouched(self):
        # send's message argument is data; occurrences of op names inside
        # it must not be rewritten.
        src = "p :- send(1, send(2, x))."
        out = self.make().apply(parse_program(src))
        rule = out.procedure("p", 1).rules[0]
        dist = rule.body[0]
        inner = dist.args[1]
        assert inner.indicator == ("send", 2)  # still data

    def test_no_ops_is_identity(self):
        src = "p :- q.\nq."
        out = self.make().apply(parse_program(src))
        assert format_program(out) == format_program(parse_program(src))

    def test_also_thread(self):
        src = "server(In).\np :- send(1, x)."
        t = self.make(also_thread=(("server", 1),))
        out = t.apply(parse_program(src))
        assert ("server", 2) in out

    def test_defining_op_rejected(self):
        src = "send(A, B) :- whatever.\np :- send(1, 2).\nwhatever."
        with pytest.raises(TransformError):
            self.make().apply(parse_program(src))

    def test_placement_on_op_rejected(self):
        src = "p :- send(1, x) @ 2."
        with pytest.raises(TransformError):
            self.make().apply(parse_program(src))

    def test_placement_on_affected_call_preserved(self):
        src = "p :- q @ 3.\nq :- send(1, x)."
        out = self.make().apply(parse_program(src))
        rule = out.procedure("p", 1).rules[0]
        goal, where = strip_placement(rule.body[0])
        assert goal.indicator == ("q", 1)
        assert where == 3

    def test_idempotent_on_output(self):
        # Applying again finds no remaining ops (they were rewritten), so
        # the program is unchanged.
        out1 = self.make().apply(parse_program(SAMPLE))
        out2 = self.make().apply(out1)
        assert format_program(out2) == format_program(out1)


class TestPruneUnreachable:
    def make(self):
        return parse_program("""
        main :- used.
        used :- helper.
        helper.
        orphan :- also_orphan.
        also_orphan.
        reflective.
        """)

    def test_drops_unreachable(self):
        from repro.transform.optimize import prune_unreachable

        out = prune_unreachable(self.make(), entries=[("main", 0)])
        assert ("main", 0) in out and ("helper", 0) in out
        assert ("orphan", 0) not in out
        assert ("also_orphan", 0) not in out

    def test_keep_preserves_reflective_procs(self):
        from repro.transform.optimize import prune_unreachable

        out = prune_unreachable(self.make(), entries=[("main", 0)],
                                keep=[("reflective", 0)])
        assert ("reflective", 0) in out

    def test_as_transformation_is_pure(self):
        from repro.transform.optimize import PruneUnreachable

        program = self.make()
        PruneUnreachable(entries=[("main", 0)]).apply(program)
        assert ("orphan", 0) in program  # input untouched

    def test_pruned_composed_stack_still_runs(self):
        from repro.apps.arithmetic import EVAL_SOURCE, paper_example_tree
        from repro.apps.trees import tree_term
        from repro.core.api import run_applied
        from repro.core.motif import ComposedMotif
        from repro.machine import Machine
        from repro.motifs.random_map import rand_motif
        from repro.motifs.server import server_motif
        from repro.motifs.tree_reduce1 import tree1_motif
        from repro.strand.terms import Struct as S, Var as V, deref
        from repro.transform.optimize import prune_unreachable

        motif = ComposedMotif([tree1_motif(), rand_motif(), server_motif()])
        applied = motif.apply(parse_program(EVAL_SOURCE, name="eval"))
        before = len(applied.program)
        # server/2 is reached through the library's remote spawn; keep it.
        applied.program = prune_unreachable(
            applied.program, entries=[("create", 2)],
        )
        assert len(applied.program) <= before
        value = V("Value")
        goal = S("create", (3, S("reduce", (tree_term(paper_example_tree()),
                                            value))))
        run_applied(applied, goal, Machine(3, seed=1))
        assert deref(value) == 24
