"""Tests for the smaller application modules: arithmetic, queens, sorting,
grid, taskbag."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.arithmetic import (
    EVAL_SOURCE,
    arithmetic_tree,
    eval_arith_node,
    heavy_tailed_cost,
    make_cost_model,
    paper_example_tree,
    paper_example_value,
    uniform_cost,
)
from repro.apps.gridapp import (
    EDGE_VALUE,
    jacobi_reference,
    join_strips,
    make_grid,
    split_strips,
    sweep,
    top_row,
    bottom_row,
)
from repro.apps.queens import (
    KNOWN_COUNTS,
    count_solutions_sequential,
    expand,
    root_node,
    solution,
)
from repro.apps.sorting import halve, merge_sorted, random_list, sort_seq
from repro.apps.taskbag import expected_sum, skewed_cost, work
from repro.apps.trees import leaf_count, sequential_reduce
from repro.errors import ReproError
from repro.strand.terms import Atom


class TestArithmetic:
    def test_paper_example(self):
        assert sequential_reduce(paper_example_tree(), eval_arith_node) == \
            paper_example_value

    def test_eval_source_parses(self):
        from repro.strand.parser import parse_program

        assert ("eval", 4) in parse_program(EVAL_SOURCE)

    def test_eval_arith_node_ops(self):
        assert eval_arith_node("add", 2, 3) == 5
        assert eval_arith_node("mul", 2, 3) == 6
        assert eval_arith_node("sub", 5, 3) == 2
        assert eval_arith_node("mx", 2, 7) == 7
        assert eval_arith_node(Atom("add"), 1, 1) == 2
        with pytest.raises(ValueError):
            eval_arith_node("frob", 1, 1)

    def test_tree_shapes(self):
        for shape in ("random", "balanced", "skewed"):
            tree = arithmetic_tree(8, seed=1, shape=shape)
            assert leaf_count(tree) >= 8 or shape == "balanced"
        with pytest.raises(ValueError):
            arithmetic_tree(8, shape="mobius")

    def test_uniform_cost(self):
        model = uniform_cost(7.0)
        assert model("add", 1, 2) == 7.0

    def test_heavy_tailed_cost_deterministic_by_inputs(self):
        model = heavy_tailed_cost(seed=3)
        assert model("add", 10, 20) == model("add", 10, 20)

    def test_heavy_tailed_has_both_levels(self):
        model = heavy_tailed_cost(base=1.0, spike=100.0,
                                  spike_probability=0.3, seed=0)
        costs = {model("add", i, i + 1) for i in range(200)}
        assert costs == {1.0, 100.0}

    def test_make_cost_model(self):
        assert make_cost_model("uniform")("a", 1, 2) == 10.0
        assert callable(make_cost_model("heavy"))
        with pytest.raises(ValueError):
            make_cost_model("quadratic")


class TestQueens:
    def test_expand_respects_safety(self):
        children = expand([4])
        assert len(children) == 4  # first row: any column
        children = expand([4, 0])
        # second row cannot use column 0 or 1.
        assert [c[-1] for c in children] == [2, 3]

    def test_expand_full_board_empty(self):
        assert expand([2, 0, 1]) == []  # wait: n=2, 2 cols placed

    def test_solution_flag(self):
        assert solution([2, 0, 1]) == 1  # complete (if unsafe it wouldn't be generated)
        assert solution([4, 0]) == 0

    @pytest.mark.parametrize("n,count", sorted(KNOWN_COUNTS.items())[:8])
    def test_known_counts(self, n, count):
        assert count_solutions_sequential(n) == count

    def test_root_node(self):
        assert root_node(5) == [5]


class TestSorting:
    def test_halve(self):
        assert halve([1, 2, 3, 4, 5]) == ([1, 2], [3, 4, 5])
        assert halve([]) == ([], [])

    @given(st.lists(st.integers(), max_size=50), st.lists(st.integers(), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_merge_sorted_property(self, a, b):
        a, b = sorted(a), sorted(b)
        assert merge_sorted(a, b) == sorted(a + b)

    def test_sort_seq(self):
        xs = random_list(30, seed=2)
        assert sort_seq(xs) == sorted(xs)

    def test_random_list_deterministic(self):
        assert random_list(10, seed=4) == random_list(10, seed=4)


class TestGridApp:
    def test_make_grid_has_hot_patch(self):
        grid = make_grid(9, 9, hot=50.0)
        flat = [v for row in grid for v in row]
        assert max(flat) == 50.0
        assert min(flat) == 0.0

    def test_split_join_roundtrip(self):
        grid = make_grid(10, 4)
        assert join_strips(split_strips(grid, 3)) == grid

    def test_split_sizes_balanced(self):
        strips = split_strips(make_grid(10, 4), 3)
        sizes = [len(s) for s in strips]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_split_too_many_workers(self):
        with pytest.raises(ReproError):
            split_strips(make_grid(3, 3), 5)

    def test_rows(self):
        strip = [[1.0, 2.0], [3.0, 4.0]]
        assert top_row(strip) == [1.0, 2.0]
        assert bottom_row(strip) == [3.0, 4.0]

    def test_sweep_matches_reference_single_strip(self):
        grid = make_grid(6, 5)
        swept = sweep(grid, Atom("edge"), Atom("edge"))
        assert np.allclose(swept, jacobi_reference(grid, 1))

    def test_sweep_uses_neighbour_rows(self):
        strip = [[0.0, 0.0, 0.0]]
        above = [4.0, 4.0, 4.0]
        below = [8.0, 8.0, 8.0]
        swept = sweep(strip, above, below)
        assert swept[0][1] == pytest.approx((4.0 + 8.0 + 0.0 + 0.0) / 4.0)

    def test_reference_converges_toward_boundary(self):
        grid = make_grid(8, 8, hot=100.0)
        late = jacobi_reference(grid, 200)
        assert max(v for row in late for v in row) < 1.0 + EDGE_VALUE


class TestTaskbag:
    def test_work_and_expected_sum(self):
        assert work(4) == 16
        assert expected_sum(3) == 1 + 4 + 9

    def test_skewed_cost_levels(self):
        model = skewed_cost(base=2.0, spike=50.0, spike_probability=0.5, seed=1)
        costs = {model(i) for i in range(100)}
        assert costs == {2.0, 50.0}

    def test_skewed_cost_deterministic(self):
        a = skewed_cost(seed=2)
        b = skewed_cost(seed=2)
        assert [a(i) for i in range(20)] == [b(i) for i in range(20)]
