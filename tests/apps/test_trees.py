"""Tree construction, conversion, and Tree-Reduce-2 labeling tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.trees import (
    Leaf,
    Node,
    balanced_tree,
    label_table,
    leaf_count,
    random_tree,
    sequential_reduce,
    skewed_tree,
    tree_depth,
    tree_from_term,
    tree_size,
    tree_term,
)
from repro.errors import ReproError
from repro.strand.terms import Struct, Tup, deref


def small_tree():
    return Node("add", Leaf(1), Node("mul", Leaf(2), Leaf(3)))


class TestConstruction:
    def test_tree_term_shape(self):
        term = tree_term(small_tree())
        assert isinstance(term, Struct)
        assert term.indicator == ("tree", 3)
        assert deref(term.args[1]).indicator == ("leaf", 1)

    def test_roundtrip(self):
        tree = small_tree()
        assert tree_from_term(tree_term(tree)) == tree

    def test_sizes(self):
        tree = small_tree()
        assert tree_size(tree) == 5
        assert leaf_count(tree) == 3
        assert tree_depth(tree) == 2

    def test_sequential_reduce(self):
        value = sequential_reduce(small_tree(),
                                  lambda op, l, r: l + r if op == "add" else l * r)
        assert value == 7

    def test_sequential_reduce_deep_tree(self):
        # A 3000-leaf left spine would blow the recursion limit if the fold
        # were recursive.
        tree = skewed_tree(3000, lambda r: "add", lambda r: 1)
        assert sequential_reduce(tree, lambda op, l, r: l + r) == 3000


class TestGenerators:
    def test_random_tree_leaf_count(self):
        for n in (1, 2, 7, 30):
            tree = random_tree(n, lambda r: "op", lambda r: 0)
            assert leaf_count(tree) == n

    def test_random_tree_needs_leaf(self):
        with pytest.raises(ReproError):
            random_tree(0, lambda r: "op", lambda r: 0)

    def test_balanced_tree(self):
        tree = balanced_tree(4, lambda r: "op", lambda r: 0)
        assert leaf_count(tree) == 16
        assert tree_depth(tree) == 4

    def test_skewed_tree_depth(self):
        tree = skewed_tree(10, lambda r: "op", lambda r: 0)
        assert leaf_count(tree) == 10
        assert tree_depth(tree) == 9

    def test_determinism(self):
        a = random_tree(9, lambda r: r.choice("ab"), lambda r: r.randint(0, 9),
                        random.Random(5))
        b = random_tree(9, lambda r: r.choice("ab"), lambda r: r.randint(0, 9),
                        random.Random(5))
        assert a == b


class TestLabelTable:
    def entries(self, tree, processors=4, seed=0):
        entries, table = label_table(tree, processors, random.Random(seed))
        return entries, table

    def test_single_leaf_rejected(self):
        with pytest.raises(ReproError):
            label_table(Leaf(1), 4)

    def test_table_covers_all_nodes(self):
        tree = random_tree(8, lambda r: "add", lambda r: 1)
        entries, table = self.entries(tree)
        assert len(entries) == tree_size(tree)
        assert isinstance(table, Tup)
        assert table.arity == tree_size(tree)

    def test_exactly_one_root(self):
        tree = random_tree(6, lambda r: "add", lambda r: 1)
        entries, _ = self.entries(tree)
        roots = [e for e in entries if e.parent == -1]
        assert len(roots) == 1
        assert roots[0].kind == "op"
        assert roots[0].side == "none"

    def test_parent_label_consistency(self):
        # Each entry's parent_label equals its parent's own label.
        tree = random_tree(12, lambda r: "add", lambda r: 1)
        entries, _ = self.entries(tree, seed=3)
        by_id = {i + 1: e for i, e in enumerate(entries)}
        for e in entries:
            if e.parent != -1:
                assert e.parent_label == by_id[e.parent].label

    def test_internal_label_is_left_childs(self):
        tree = random_tree(12, lambda r: "add", lambda r: 1)
        entries, _ = self.entries(tree, seed=7)
        by_id = {i + 1: e for i, e in enumerate(entries)}
        children = {}
        for nid, e in by_id.items():
            if e.parent != -1:
                children.setdefault(e.parent, {})[e.side] = nid
        for parent, kids in children.items():
            assert by_id[parent].label == by_id[kids["left"]].label

    def test_sibling_leaves_share_label(self):
        tree = random_tree(16, lambda r: "add", lambda r: 1)
        entries, _ = self.entries(tree, seed=2)
        by_id = {i + 1: e for i, e in enumerate(entries)}
        pairs = {}
        for nid, e in by_id.items():
            if e.parent != -1:
                pairs.setdefault(e.parent, []).append(nid)
        for kids in pairs.values():
            if all(by_id[k].kind == "leaf" for k in kids):
                labels = {by_id[k].label for k in kids}
                assert len(labels) == 1

    def test_labels_in_processor_range(self):
        tree = random_tree(20, lambda r: "add", lambda r: 1)
        entries, _ = self.entries(tree, processors=3, seed=9)
        assert all(1 <= e.label <= 3 for e in entries)

    @given(
        leaves=st.integers(2, 25),
        processors=st.integers(1, 8),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_labeling_invariants_property(self, leaves, processors, seed):
        tree = random_tree(leaves, lambda r: "add", lambda r: 1,
                           random.Random(seed))
        entries, table = label_table(tree, processors, random.Random(seed))
        by_id = {i + 1: e for i, e in enumerate(entries)}
        assert table.arity == 2 * leaves - 1
        for e in entries:
            assert 1 <= e.label <= processors
            if e.parent == -1:
                assert e.side == "none"
            else:
                parent = by_id[e.parent]
                assert parent.kind == "op"
                assert e.parent_label == parent.label
                assert e.side in ("left", "right")
