"""Bio application tests: NW alignment, distances, UPGMA, align-node."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bio import (
    ALPHABET,
    GAP,
    align_cost,
    align_node,
    alignment_workload,
    distance_matrix,
    generate_family,
    guide_tree,
    jukes_cantor,
    needleman_wunsch,
    pairwise_identity,
    profile_width,
    sum_of_pairs,
    upgma,
)
from repro.apps.trees import Leaf, Node, leaf_count
from repro.errors import ReproError

_seq = st.text(alphabet=ALPHABET, min_size=1, max_size=20)


class TestNeedlemanWunsch:
    def test_identical_sequences(self):
        a, b, score = needleman_wunsch("ACGU", "ACGU")
        assert a == b == "ACGU"
        assert score == 8.0  # 4 matches * 2

    def test_gap_insertion(self):
        a, b, _ = needleman_wunsch("ACGU", "AGU")
        assert len(a) == len(b)
        assert a.replace(GAP, "") == "ACGU"
        assert b.replace(GAP, "") == "AGU"

    def test_empty_vs_sequence(self):
        a, b, score = needleman_wunsch("", "ACG")
        assert a == GAP * 3
        assert b == "ACG"
        assert score == 3 * -2.0

    @given(_seq, _seq)
    @settings(max_examples=40, deadline=None)
    def test_alignment_preserves_sequences(self, x, y):
        a, b, _ = needleman_wunsch(x, y)
        assert len(a) == len(b)
        assert a.replace(GAP, "") == x
        assert b.replace(GAP, "") == y

    @given(_seq, _seq)
    @settings(max_examples=25, deadline=None)
    def test_score_symmetric(self, x, y):
        _, _, s1 = needleman_wunsch(x, y)
        _, _, s2 = needleman_wunsch(y, x)
        assert math.isclose(s1, s2)

    def test_identity_measures(self):
        assert pairwise_identity("ACGU", "ACGU") == 1.0
        assert pairwise_identity("AAAA", "CCCC") == 0.0


class TestDistances:
    def test_jukes_cantor_zero(self):
        assert jukes_cantor(0.0) == 0.0

    def test_jukes_cantor_monotone(self):
        values = [jukes_cantor(p) for p in (0.0, 0.1, 0.3, 0.5, 0.7)]
        assert values == sorted(values)

    def test_jukes_cantor_saturates(self):
        assert math.isfinite(jukes_cantor(0.9))

    def test_matrix_symmetric_zero_diagonal(self):
        seqs = ["ACGUACGU", "ACGAACGU", "UUUGACGG"]
        d = distance_matrix(seqs)
        for i in range(3):
            assert d[i][i] == 0.0
            for j in range(3):
                assert d[i][j] == pytest.approx(d[j][i])

    def test_closer_sequences_smaller_distance(self):
        seqs = ["ACGUACGUACGU", "ACGUACGUACGA", "GGCAUUACCGGA"]
        d = distance_matrix(seqs)
        assert d[0][1] < d[0][2]


class TestUPGMA:
    def test_joins_closest_first(self):
        labels = ["a", "b", "c"]
        d = [[0.0, 0.1, 0.9], [0.1, 0.0, 0.9], [0.9, 0.9, 0.0]]
        tree = upgma(d, labels)
        assert isinstance(tree, Node)
        # a and b cluster first; c joins at the root.
        sub = tree.left if isinstance(tree.left, Node) else tree.right
        leaves = {sub.left.value, sub.right.value}
        assert leaves == {"a", "b"}

    def test_leaf_count_preserved(self):
        n = 7
        d = [[abs(i - j) * 0.1 for j in range(n)] for i in range(n)]
        tree = upgma(d, list(range(n)))
        assert leaf_count(tree) == n

    def test_single_label(self):
        tree = upgma([[0.0]], ["only"])
        assert tree == Leaf("only")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            upgma([[0.0, 1.0]], ["a", "b"])


class TestFamilyGeneration:
    def test_family_shape(self):
        family = generate_family(6, root_length=30, seed=1)
        assert len(family.sequences) == 6
        assert len(family.names) == 6
        assert leaf_count(family.true_tree) == 6

    def test_sequences_are_rna(self):
        family = generate_family(4, root_length=50, seed=2)
        for seq in family.sequences:
            assert seq
            assert set(seq) <= set(ALPHABET)

    def test_determinism(self):
        a = generate_family(5, seed=9).sequences
        b = generate_family(5, seed=9).sequences
        assert a == b

    def test_needs_two(self):
        with pytest.raises(ReproError):
            generate_family(1)

    def test_related_sequences_similar(self):
        family = generate_family(4, root_length=60, mutation_rate=0.03, seed=3)
        # All family members descend from one ancestor: identities well
        # above the ~25% random-baseline.
        for i in range(1, 4):
            assert pairwise_identity(family.sequences[0],
                                     family.sequences[i]) > 0.5


class TestAlignNode:
    def test_merges_profiles(self):
        merged = align_node("align", ["ACGU"], ["ACGA"])
        assert len(merged) == 2
        assert profile_width(merged) >= 4

    def test_rows_preserve_sequences(self):
        left = ["AC-GU", "ACAGU"]
        right = ["AGGU"]
        merged = align_node("align", left, right)
        assert merged[0].replace(GAP, "") == "ACGU"
        assert merged[1].replace(GAP, "") == "ACAGU"
        assert merged[2].replace(GAP, "") == "AGGU"

    def test_result_is_rectangular(self):
        merged = align_node("align", ["ACG"], ["AUUUCG"])
        profile_width(merged)  # raises if ragged

    def test_cost_grows_with_size(self):
        small = align_cost("align", ["ACGU"], ["ACGU"])
        large = align_cost("align", ["ACGU" * 10] * 3, ["ACGU" * 10] * 3)
        assert large > small

    def test_ragged_profile_rejected(self):
        with pytest.raises(ReproError):
            profile_width(["AB", "A"])

    def test_empty_profile_rejected(self):
        with pytest.raises(ReproError):
            profile_width([])


class TestWorkload:
    def test_guide_tree_leaves_are_profiles(self):
        family, tree = alignment_workload(n_sequences=5, root_length=20, seed=4)
        assert leaf_count(tree) == 5
        stack = [tree]
        profiles = []
        while stack:
            node = stack.pop()
            if isinstance(node, Leaf):
                profiles.append(node.value)
            else:
                stack.extend([node.left, node.right])
        flattened = sorted(p[0] for p in profiles)
        assert flattened == sorted(family.sequences)

    def test_sum_of_pairs_scores_alignment(self):
        good = sum_of_pairs(["ACGU", "ACGU"])
        bad = sum_of_pairs(["AAAA", "CCCC"])
        assert good > bad

    def test_guide_tree_reduction_gives_full_alignment(self):
        from repro.apps.bio import align_node
        from repro.apps.trees import sequential_reduce

        family, tree = alignment_workload(n_sequences=6, root_length=25, seed=5)
        alignment = sequential_reduce(tree, align_node)
        assert len(alignment) == 6
        assert sorted(r.replace(GAP, "") for r in alignment) == sorted(
            family.sequences
        )


class TestNeighborJoining:
    def test_single_and_pair(self):
        from repro.apps.bio import neighbor_joining

        assert neighbor_joining([[0.0]], ["a"]) == Leaf("a")
        t = neighbor_joining([[0, 1], [1, 0]], ["a", "b"])
        assert {t.left.value, t.right.value} == {"a", "b"}

    def test_additive_matrix_recovers_topology(self):
        from repro.apps.bio import neighbor_joining, robinson_foulds

        # Tree ((a,b),(c,d)) with branch lengths: path distances are additive.
        #   a-b: 2, a-c: 6, a-d: 7, b-c: 6, b-d: 7, c-d: 3
        d = [
            [0, 2, 6, 7],
            [2, 0, 6, 7],
            [6, 6, 0, 3],
            [7, 7, 3, 0],
        ]
        tree = neighbor_joining(d, ["a", "b", "c", "d"])
        expected = Node("align", Node("align", Leaf("a"), Leaf("b")),
                        Node("align", Leaf("c"), Leaf("d")))
        assert robinson_foulds(tree, expected) == 0

    def test_shape_mismatch_rejected(self):
        from repro.apps.bio import neighbor_joining

        with pytest.raises(ReproError):
            neighbor_joining([[0.0, 1.0]], ["a", "b"])

    def test_nj_guide_tree_has_all_sequences(self):
        from repro.apps.bio import guide_tree_nj

        family = generate_family(6, root_length=30, seed=9)
        tree = guide_tree_nj(family)
        assert leaf_count(tree) == 6


class TestRobinsonFoulds:
    def test_identity_is_zero(self):
        from repro.apps.bio import robinson_foulds

        t = Node("x", Node("x", Leaf("a"), Leaf("b")), Leaf("c"))
        assert robinson_foulds(t, t) == 0

    def test_rooted_rotation_is_zero(self):
        # RF compares unrooted topologies: swapping children changes nothing.
        from repro.apps.bio import robinson_foulds

        t1 = Node("x", Node("x", Leaf("a"), Leaf("b")),
                  Node("x", Leaf("c"), Leaf("d")))
        t2 = Node("x", Node("x", Leaf("d"), Leaf("c")),
                  Node("x", Leaf("b"), Leaf("a")))
        assert robinson_foulds(t1, t2) == 0

    def test_different_topologies_positive(self):
        from repro.apps.bio import robinson_foulds

        t1 = Node("x", Node("x", Leaf("a"), Leaf("b")),
                  Node("x", Leaf("c"), Leaf("d")))
        t2 = Node("x", Node("x", Leaf("a"), Leaf("c")),
                  Node("x", Leaf("b"), Leaf("d")))
        assert robinson_foulds(t1, t2) > 0

    def test_leaf_set_mismatch_rejected(self):
        from repro.apps.bio import robinson_foulds

        with pytest.raises(ReproError):
            robinson_foulds(Leaf("a"), Leaf("b"))

    def test_guide_trees_recover_low_divergence_phylogeny(self):
        """With a gentle mutation rate, both UPGMA and NJ should land close
        to (usually exactly on) the generating topology."""
        from repro.apps.bio import (
            guide_tree,
            guide_tree_nj,
            relabel_with_names,
            robinson_foulds,
        )

        family = generate_family(8, root_length=60, mutation_rate=0.05, seed=4)
        max_rf = 2 * (8 - 3)  # all internal splits differ
        for builder in (guide_tree, guide_tree_nj):
            tree = relabel_with_names(builder(family), family)
            rf = robinson_foulds(tree, family.true_tree)
            assert rf <= max_rf // 2
