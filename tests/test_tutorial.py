"""The docs/TUTORIAL.md walkthrough, executed (docs that lie are worse
than no docs)."""

from repro.core.api import run_applied
from repro.core.motif import ComposedMotif, Motif
from repro.machine import Machine
from repro.motifs import rand_motif, server_motif
from repro.strand import ForeignRegistry, lint_program, parse_program
from repro.strand.terms import Struct, Var, deref

RETRY_LIBRARY = """
retry(X, Out) :- retry_loop(X, 1, Out).

retry_loop(X, K, Out) :-
    op(X, R),
    check(R, X, K, Out).

check(R, _, _, Out) :- R == "ok" | Out := done.
check(R, X, K, Out) :- R \\== "ok" |
    K1 := K + 1,
    retry_loop(X, K1, Out).
"""

RETRY_DISTRIBUTED = RETRY_LIBRARY.replace(
    "    retry_loop(X, K1, Out).",
    "    retry_loop(X, K1, Out) @ random.",
)


def flaky_registry(succeed_after: int):
    attempts = []

    def op(x):
        attempts.append(x)
        return "ok" if len(attempts) >= succeed_after else "nope"

    registry = ForeignRegistry()
    registry.register("op", 2, op)
    return registry, attempts


class TestTutorialSteps:
    def test_step_2_library_lints_clean(self):
        warnings = lint_program(parse_program(RETRY_LIBRARY),
                                foreign=[("op", 2)])
        assert warnings == []

    def test_step_3_retry_until_success(self):
        registry, attempts = flaky_registry(3)
        retry = Motif("retry", library=RETRY_LIBRARY)
        applied = retry.apply(parse_program("", name="my-app"))
        out = Var("Out")
        run_applied(applied, Struct("retry", (1, out)), Machine(1),
                    foreign=registry)
        assert str(deref(out)) == "done"
        assert len(attempts) == 3

    def test_step_4_distributed_composition(self):
        registry, attempts = flaky_registry(4)
        retry = Motif("retry", library=RETRY_DISTRIBUTED)
        stack = ComposedMotif([
            retry,
            rand_motif(extra_entries=(("retry", 2),)),
            server_motif(),
        ])
        applied = stack.apply(parse_program("", name="my-app"))
        out = Var("Out")
        goal = Struct("create", (3, Struct("retry", (1, out))))
        run_applied(applied, goal, Machine(3, seed=5), foreign=registry)
        assert str(deref(out)) == "done"
        assert len(attempts) == 4

    def test_step_4_stages_are_printable(self):
        retry = Motif("retry", library=RETRY_DISTRIBUTED)
        stack = ComposedMotif([
            retry,
            rand_motif(extra_entries=(("retry", 2),)),
            server_motif(),
        ])
        stages = stack.apply_staged(parse_program("", name="a"))
        assert len(stages) == 3
        for stage in stages:
            text = stage.program.pretty()
            assert text.strip()
            parse_program(text)  # every stage is a readable, parseable program
