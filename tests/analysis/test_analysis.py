"""Analysis utilities tests: complexity accounting, reporting, load stats."""

import pytest

from repro.analysis import (
    ProgramSize,
    Table,
    diff_generated,
    format_value,
    load_stats,
    measure,
)
from repro.machine import MachineMetrics, VirtualProcessor
from repro.strand.parser import parse_program


class TestComplexity:
    def test_measure_counts(self):
        program = parse_program("""
        a(X) :- X > 0 | b(X), c.
        a(0).
        b(_).
        c.
        """)
        size = measure(program)
        assert size.procedures == 3
        assert size.rules == 4
        assert size.goals == 3  # 1 guard + 2 body goals
        assert size.lines > 0

    def test_empty_program(self):
        from repro.strand.program import Program

        size = measure(Program())
        assert size.rules == 0
        assert size.lines == 0

    def test_addition(self):
        a = ProgramSize(1, 2, 3, 4)
        b = ProgramSize(10, 20, 30, 40)
        assert a + b == ProgramSize(11, 22, 33, 44)

    def test_diff_generated_detects_new_procs(self):
        before = parse_program("user.")
        after = parse_program("user.\nhelper :- user.")
        diff = diff_generated(before, after)
        assert diff.procedures == 1
        assert diff.rules == 1

    def test_diff_generated_detects_changed_arity(self):
        before = parse_program("p(X) :- q.\nq.")
        after = parse_program("p(X, DT) :- q.\nq.")
        diff = diff_generated(before, after)
        assert diff.procedures == 1

    def test_diff_ignores_unchanged(self):
        program = parse_program("p :- q.\nq.")
        diff = diff_generated(program, program.copy())
        assert diff.rules == 0

    def test_motif_stack_effort_accounting(self):
        """E7's core figure: user code is tiny next to generated code."""
        from repro.apps.arithmetic import EVAL_SOURCE
        from repro.motifs.tree_reduce1 import tree_reduce_1

        user = parse_program(EVAL_SOURCE, name="user")
        applied = tree_reduce_1().apply(user)
        user_size = measure(user)
        total_size = measure(applied.program)
        assert total_size.rules > 4 * user_size.rules


class TestReporting:
    def test_table_render(self):
        table = Table("demo", ["a", "bee"])
        table.add(1, 2.5)
        table.add("x", 1234.0)
        text = table.render()
        assert "demo" in text
        assert "bee" in text
        assert "1,234" in text

    def test_row_arity_checked(self):
        table = Table("t", ["only"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_notes_rendered(self):
        table = Table("t", ["c"])
        table.add(1)
        table.note("shape holds")
        assert "shape holds" in table.render()

    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.142"
        assert format_value(12.345) == "12.3"
        assert format_value(10_000.0) == "10,000"
        assert format_value(True) == "yes"
        assert format_value("s") == "s"


class TestLoadStats:
    def make_metrics(self, busy):
        procs = []
        for i, b in enumerate(busy):
            p = VirtualProcessor(i + 1)
            p.busy = b
            p.clock = max(busy)
            procs.append(p)
        return MachineMetrics.from_processors(procs)

    def test_perfect_balance(self):
        stats = load_stats(self.make_metrics([5.0, 5.0, 5.0]))
        assert stats.imbalance == pytest.approx(1.0)
        assert stats.cv == pytest.approx(0.0)
        assert stats.fairness == pytest.approx(1.0)
        assert stats.efficiency == pytest.approx(1.0)

    def test_skewed(self):
        stats = load_stats(self.make_metrics([9.0, 1.0]))
        assert stats.imbalance == pytest.approx(1.8)
        assert stats.max_busy == 9.0
        assert stats.min_busy == 1.0
        assert stats.efficiency < 1.0
