"""Shared test helpers."""

from __future__ import annotations

from repro.machine import Machine
from repro.strand import parse_program, run_query
from repro.strand.engine import QueryResult

FIGURE1_SOURCE = """
go(N) :- producer(N, Xs, sync), consumer(Xs).
producer(N, Xs, _Sync) :- N > 0 |
    Xs := [X | Xs1],
    N1 := N - 1,
    producer(N1, Xs1, X).
producer(0, Xs, _) :- Xs := [].
consumer([X | Xs]) :- X := sync, consumer(Xs).
consumer([]).
"""

ARITH_EVAL_SOURCE = """
eval(add, L, R, Value) :- Value := L + R.
eval(mul, L, R, Value) :- Value := L * R.
"""

SEQ_REDUCE_SOURCE = (
    ARITH_EVAL_SOURCE
    + """
reduce(tree(V, L, R), Value) :-
    reduce(L, LV),
    reduce(R, RV),
    eval(V, LV, RV, Value).
reduce(leaf(X), Value) :- Value := X.
"""
)


def run(source: str, query: str, processors: int = 1, seed: int = 0,
        **kw) -> QueryResult:
    """Parse + run in one call."""
    program = parse_program(source)
    machine = Machine(processors, seed=seed)
    return run_query(program, query, machine=machine, **kw)
