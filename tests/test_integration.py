"""Cross-module integration tests: whole-paper scenarios end to end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node, heavy_tailed_cost
from repro.apps.bio import align_cost, align_node, alignment_workload, sum_of_pairs
from repro.apps.trees import sequential_reduce
from repro.core.api import reduce_tree
from repro.machine import Machine


class TestAllStrategiesAgree:
    """E2's essence: every parallel strategy equals the sequential fold."""

    @given(
        leaves=st.integers(2, 10),
        tree_seed=st.integers(0, 10**6),
        processors=st.integers(1, 5),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_agreement_property(self, leaves, tree_seed, processors, seed):
        tree = arithmetic_tree(leaves, seed=tree_seed)
        expected = sequential_reduce(tree, eval_arith_node)
        for strategy in ("tr1", "tr2", "static"):
            result = reduce_tree(tree, eval_arith_node, processors=processors,
                                 strategy=strategy, seed=seed)
            assert result.value == expected, strategy


class TestAlignmentPipeline:
    def test_alignment_schedule_independent(self):
        """E10: the alignment (and its quality score) must not depend on
        the parallel schedule."""
        family, tree = alignment_workload(n_sequences=7, root_length=24, seed=8)
        reference = sequential_reduce(tree, align_node)
        ref_score = sum_of_pairs(reference)
        for strategy, processors, seed in [
            ("tr1", 3, 1), ("tr1", 5, 2), ("tr2", 3, 1), ("tr2", 5, 9),
            ("static", 4, 0),
        ]:
            result = reduce_tree(tree, align_node, processors=processors,
                                 strategy=strategy, seed=seed,
                                 eval_cost=align_cost)
            assert result.value == reference, (strategy, processors)
            assert sum_of_pairs(result.value) == ref_score

    def test_alignment_contains_all_sequences(self):
        family, tree = alignment_workload(n_sequences=5, root_length=20, seed=3)
        result = reduce_tree(tree, align_node, processors=4, strategy="tr2",
                             eval_cost=align_cost)
        stripped = sorted(r.replace("-", "") for r in result.value)
        assert stripped == sorted(family.sequences)


class TestTopologiesAndLatencies:
    @pytest.mark.parametrize("topology", ["full", "ring", "mesh", "hypercube"])
    def test_correct_under_every_topology(self, topology):
        tree = arithmetic_tree(16, seed=5)
        expected = sequential_reduce(tree, eval_arith_node)
        machine = Machine(4, topology=topology, seed=2)
        result = reduce_tree(tree, eval_arith_node, processors=4,
                             strategy="tr1", machine=machine)
        assert result.value == expected

    def test_slower_network_longer_makespan(self):
        tree = arithmetic_tree(24, seed=6)
        fast = Machine(4, seed=1, startup_latency=1.0)
        slow = Machine(4, seed=1, startup_latency=50.0)
        r_fast = reduce_tree(tree, eval_arith_node, strategy="tr1", machine=fast)
        r_slow = reduce_tree(tree, eval_arith_node, strategy="tr1", machine=slow)
        assert r_slow.metrics.makespan > r_fast.metrics.makespan
        assert r_fast.value == r_slow.value


class TestHeavyTailedWorkloads:
    def test_all_strategies_correct_under_skewed_costs(self):
        tree = arithmetic_tree(20, seed=7)
        expected = sequential_reduce(tree, eval_arith_node)
        cost = heavy_tailed_cost(seed=4)
        for strategy in ("tr1", "tr2", "static"):
            result = reduce_tree(tree, eval_arith_node, processors=4,
                                 strategy=strategy, seed=3, eval_cost=cost)
            assert result.value == expected, strategy

    def test_dynamic_beats_static_on_irregular_trees(self):
        """E6's crossover, one point each way (the benchmark sweeps it):

        * balanced tree + uniform costs — "a static partition of the tree
          is probably ideal in the simple arithmetic example" (§3.1);
        * irregular (random-split, phylogeny-like) tree — "our biology
          application requires a more dynamic algorithm".
        """
        from repro.apps.arithmetic import uniform_cost

        cost = uniform_cost(100.0)

        balanced = arithmetic_tree(128, seed=13, shape="balanced")
        tr1_b = reduce_tree(balanced, eval_arith_node, processors=8,
                            strategy="tr1", seed=2, eval_cost=cost).metrics
        st_b = reduce_tree(balanced, eval_arith_node, processors=8,
                           strategy="static", seed=2, eval_cost=cost).metrics
        assert st_b.makespan < tr1_b.makespan  # static ideal when regular

        irregular = arithmetic_tree(128, seed=13, shape="random")
        tr1_i = reduce_tree(irregular, eval_arith_node, processors=8,
                            strategy="tr1", seed=2, eval_cost=cost).metrics
        st_i = reduce_tree(irregular, eval_arith_node, processors=8,
                           strategy="static", seed=2, eval_cost=cost).metrics
        assert tr1_i.makespan < st_i.makespan  # dynamic wins when irregular


class TestScaleUp:
    def test_larger_trees_still_correct(self):
        tree = arithmetic_tree(200, seed=17)
        expected = sequential_reduce(tree, eval_arith_node)
        result = reduce_tree(tree, eval_arith_node, processors=8,
                             strategy="tr1", seed=2)
        assert result.value == expected

    def test_tr2_larger_tree(self):
        tree = arithmetic_tree(100, seed=18)
        expected = sequential_reduce(tree, eval_arith_node)
        result = reduce_tree(tree, eval_arith_node, processors=8,
                             strategy="tr2", seed=2)
        assert result.value == expected
        assert result.metrics.max_peak_live_tasks == 1
