"""Compiled-library / applied-motif caching (acceptance: applying a 3-deep
motif composition twice parses and compiles each library exactly once)."""

import pytest

from repro.core.api import as_application
from repro.core.motif import (
    MOTIF_STATS,
    library_from_source,
    reset_motif_stats,
)
from repro.apps.arithmetic import EVAL_SOURCE
from repro.motifs.tree_reduce1 import tree_reduce_1
from repro.strand.compile import COMPILE_STATS, compile_program, reset_compile_stats


@pytest.fixture()
def stack():
    # Server ∘ Rand ∘ Tree1 — a 3-deep composition (no termination stage).
    return tree_reduce_1(termination=False)


class TestThreeDeepComposition:
    def test_second_apply_is_a_pure_cache_hit(self, stack):
        application, _ = as_application(EVAL_SOURCE)
        first = stack.apply(application)
        parses = MOTIF_STATS["library_parses"]
        hits_before = MOTIF_STATS["apply_hits"]
        second = stack.apply(application)
        # Same transformed+linked program object; no re-parse, no re-link.
        assert second.program is first.program
        assert MOTIF_STATS["library_parses"] == parses
        assert MOTIF_STATS["apply_hits"] == hits_before + 1
        assert second.services == first.services
        assert second.user_names == first.user_names

    def test_each_library_compiles_exactly_once(self, stack):
        reset_compile_stats()
        application, _ = as_application(EVAL_SOURCE)
        first = stack.apply(application)
        compiled = compile_program(first.program)
        programs_after_first = COMPILE_STATS["programs"]
        second = stack.apply(application)
        assert compile_program(second.program) is compiled
        assert COMPILE_STATS["programs"] == programs_after_first
        assert COMPILE_STATS["hits"] >= 1

    def test_rebuilding_the_stack_reuses_parsed_libraries(self):
        tree_reduce_1(termination=False)
        parses = MOTIF_STATS["library_parses"]
        hits = MOTIF_STATS["library_hits"]
        tree_reduce_1(termination=False)
        # The second stack construction parses nothing new: every library
        # source is served from the (name, source)-keyed parse cache.
        assert MOTIF_STATS["library_parses"] == parses
        assert MOTIF_STATS["library_hits"] > hits

    def test_forked_results_are_mutation_isolated(self, stack):
        application, _ = as_application(EVAL_SOURCE)
        first = stack.apply(application)
        first.foreign_setup.append(lambda registry: None)
        first.user_names.add("injected")
        second = stack.apply(application)
        assert all(setup is not None for setup in second.foreign_setup)
        assert not any(
            getattr(s, "__name__", "") == "<lambda>" for s in second.foreign_setup
        )
        assert "injected" not in second.user_names

    def test_application_mutation_invalidates(self, stack):
        from repro.strand.parser import parse_program

        application = parse_program(EVAL_SOURCE, name="mutable-app")
        first = stack.apply(application)
        extra = parse_program("extra_proc.").procedure("extra_proc", 0)
        application.add_procedure(extra)
        second = stack.apply(application)
        assert second.program is not first.program
        assert ("extra_proc", 0) in second.program


class TestLibraryParseCache:
    def test_identical_source_shares_program(self):
        source = "lib_only_proc(X, Y) :- Y := X."
        first = library_from_source(source, name="cache-probe")
        hits = MOTIF_STATS["library_hits"]
        second = library_from_source(source, name="cache-probe")
        assert second is first
        assert MOTIF_STATS["library_hits"] == hits + 1

    def test_distinct_names_do_not_collide(self):
        source = "lib_only_proc2(X, Y) :- Y := X."
        first = library_from_source(source, name="probe-a")
        second = library_from_source(source, name="probe-b")
        assert first is not second

    def test_reset_stats_roundtrip(self):
        reset_motif_stats()
        assert all(value == 0 for value in MOTIF_STATS.values())


class TestBoundedApiCaches:
    """The ``core.api`` stack/application factories are lru-bounded; repeated
    high-level calls must still be pure cache hits (regression for the
    unbounded ``maxsize=None`` caches)."""

    def test_stack_caches_are_bounded(self):
        from repro.core import api

        for factory in (
            api._tr1_stack,
            api._tr2_stack,
            api._static_stack,
            api._sequential_stack,
            api._supervised_stack,
        ):
            assert factory.cache_info().maxsize == api._STACK_CACHE_SIZE
        assert (
            api._empty_application.cache_info().maxsize
            == api._APPLICATION_CACHE_SIZE
        )

    def test_repeated_reduce_tree_hits_the_caches(self):
        from repro.core import api
        from repro.apps.arithmetic import eval_arith_node, paper_example_tree

        tree = paper_example_tree()
        api.reduce_tree(tree, eval_arith_node, processors=2, strategy="tr1")
        stack_hits = api._tr1_stack.cache_info().hits
        app_hits = api._empty_application.cache_info().hits
        apply_hits = MOTIF_STATS["apply_hits"]
        parses = MOTIF_STATS["library_parses"]
        api.reduce_tree(tree, eval_arith_node, processors=2, strategy="tr1")
        assert api._tr1_stack.cache_info().hits == stack_hits + 1
        assert api._empty_application.cache_info().hits == app_hits + 1
        assert MOTIF_STATS["apply_hits"] == apply_hits + 1
        assert MOTIF_STATS["library_parses"] == parses

    def test_repeated_supervised_reduce_hits_the_caches(self):
        from repro.core import api
        from repro.apps.arithmetic import eval_arith_node, paper_example_tree

        tree = paper_example_tree()
        api.supervised_reduce_tree(tree, eval_arith_node, processors=2)
        stack_hits = api._supervised_stack.cache_info().hits
        apply_hits = MOTIF_STATS["apply_hits"]
        api.supervised_reduce_tree(tree, eval_arith_node, processors=2)
        assert api._supervised_stack.cache_info().hits == stack_hits + 1
        assert MOTIF_STATS["apply_hits"] == apply_hits + 1
