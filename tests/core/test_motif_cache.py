"""Compiled-library / applied-motif caching (acceptance: applying a 3-deep
motif composition twice parses and compiles each library exactly once)."""

import pytest

from repro.core.api import as_application
from repro.core.motif import (
    MOTIF_STATS,
    library_from_source,
    reset_motif_stats,
)
from repro.apps.arithmetic import EVAL_SOURCE
from repro.motifs.tree_reduce1 import tree_reduce_1
from repro.strand.compile import COMPILE_STATS, compile_program, reset_compile_stats


@pytest.fixture()
def stack():
    # Server ∘ Rand ∘ Tree1 — a 3-deep composition (no termination stage).
    return tree_reduce_1(termination=False)


class TestThreeDeepComposition:
    def test_second_apply_is_a_pure_cache_hit(self, stack):
        application, _ = as_application(EVAL_SOURCE)
        first = stack.apply(application)
        parses = MOTIF_STATS["library_parses"]
        hits_before = MOTIF_STATS["apply_hits"]
        second = stack.apply(application)
        # Same transformed+linked program object; no re-parse, no re-link.
        assert second.program is first.program
        assert MOTIF_STATS["library_parses"] == parses
        assert MOTIF_STATS["apply_hits"] == hits_before + 1
        assert second.services == first.services
        assert second.user_names == first.user_names

    def test_each_library_compiles_exactly_once(self, stack):
        reset_compile_stats()
        application, _ = as_application(EVAL_SOURCE)
        first = stack.apply(application)
        compiled = compile_program(first.program)
        programs_after_first = COMPILE_STATS["programs"]
        second = stack.apply(application)
        assert compile_program(second.program) is compiled
        assert COMPILE_STATS["programs"] == programs_after_first
        assert COMPILE_STATS["hits"] >= 1

    def test_rebuilding_the_stack_reuses_parsed_libraries(self):
        tree_reduce_1(termination=False)
        parses = MOTIF_STATS["library_parses"]
        hits = MOTIF_STATS["library_hits"]
        tree_reduce_1(termination=False)
        # The second stack construction parses nothing new: every library
        # source is served from the (name, source)-keyed parse cache.
        assert MOTIF_STATS["library_parses"] == parses
        assert MOTIF_STATS["library_hits"] > hits

    def test_forked_results_are_mutation_isolated(self, stack):
        application, _ = as_application(EVAL_SOURCE)
        first = stack.apply(application)
        first.foreign_setup.append(lambda registry: None)
        first.user_names.add("injected")
        second = stack.apply(application)
        assert all(setup is not None for setup in second.foreign_setup)
        assert not any(
            getattr(s, "__name__", "") == "<lambda>" for s in second.foreign_setup
        )
        assert "injected" not in second.user_names

    def test_application_mutation_invalidates(self, stack):
        from repro.strand.parser import parse_program

        application = parse_program(EVAL_SOURCE, name="mutable-app")
        first = stack.apply(application)
        extra = parse_program("extra_proc.").procedure("extra_proc", 0)
        application.add_procedure(extra)
        second = stack.apply(application)
        assert second.program is not first.program
        assert ("extra_proc", 0) in second.program


class TestLibraryParseCache:
    def test_identical_source_shares_program(self):
        source = "lib_only_proc(X, Y) :- Y := X."
        first = library_from_source(source, name="cache-probe")
        hits = MOTIF_STATS["library_hits"]
        second = library_from_source(source, name="cache-probe")
        assert second is first
        assert MOTIF_STATS["library_hits"] == hits + 1

    def test_distinct_names_do_not_collide(self):
        source = "lib_only_proc2(X, Y) :- Y := X."
        first = library_from_source(source, name="probe-a")
        second = library_from_source(source, name="probe-b")
        assert first is not second

    def test_reset_stats_roundtrip(self):
        reset_motif_stats()
        assert all(value == 0 for value in MOTIF_STATS.values())
