"""Pragma, registry, and high-level API tests."""

import pytest

from repro.core import (
    RANDOM,
    TASK,
    annotate,
    default_registry,
    get_motif,
    is_pragma_goal,
    pragma_name,
    reduce_tree,
)
from repro.core.api import as_application
from repro.core.registry import MotifRegistry
from repro.errors import MotifError, ReproError
from repro.strand.parser import parse_term
from repro.strand.program import Program
from repro.strand.terms import Struct
from repro.apps.arithmetic import (
    EVAL_SOURCE,
    eval_arith_node,
    paper_example_tree,
    paper_example_value,
)
from repro.apps.trees import Leaf


class TestPragmas:
    def test_annotate(self):
        goal = annotate(Struct("f", (1,)), RANDOM)
        assert is_pragma_goal(goal)
        assert is_pragma_goal(goal, RANDOM)
        assert not is_pragma_goal(goal, TASK)

    def test_plain_goal_not_pragma(self):
        assert not is_pragma_goal(parse_term("f(X)"))

    def test_numeric_placement_not_pragma(self):
        assert not is_pragma_goal(parse_term("f(X) @ 3"))
        assert pragma_name(parse_term("f(X) @ 3")) is None

    def test_pragma_name(self):
        assert pragma_name(parse_term("f(X) @ random")) == "random"
        assert pragma_name(parse_term("f(X) @ task")) == "task"


class TestRegistry:
    def test_default_registry_has_paper_motifs(self):
        names = default_registry().names()
        for expected in ("server", "rand", "random", "tree1",
                         "tree-reduce-1", "tree-reduce-2", "scheduler",
                         "search", "sort", "grid", "farm", "pipeline", "dnc"):
            assert expected in names, expected

    def test_get_motif_with_params(self):
        motif = get_motif("server", library="merge")
        assert "merge" in motif.name

    def test_unknown_motif(self):
        with pytest.raises(MotifError, match="known motifs"):
            get_motif("nonexistent")

    def test_duplicate_registration_rejected(self):
        registry = MotifRegistry()
        from repro.core.motif import Motif

        registry.register("m", lambda: Motif("m"))
        with pytest.raises(MotifError):
            registry.register("m", lambda: Motif("m"))


class TestAsApplication:
    def test_strand_source(self):
        program, setup = as_application(EVAL_SOURCE)
        assert ("eval", 4) in program
        assert setup is None

    def test_program_passthrough_shares(self):
        # Transformations never mutate their input, so the application is
        # passed through by identity — that is what lets the motif-apply
        # and compile caches key on it across repeated runs.
        source = Program(name="orig")
        program, _ = as_application(source)
        assert program is source

    def test_source_parse_is_memoized(self):
        first, _ = as_application(EVAL_SOURCE)
        second, _ = as_application(EVAL_SOURCE)
        assert first is second

    def test_callable_registers_eval(self):
        program, setup = as_application(lambda op, l, r: l + r)
        assert len(program) == 0
        from repro.strand.foreign import ForeignRegistry

        registry = ForeignRegistry()
        setup(registry)
        assert ("eval", 4) in registry

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            as_application(42)


class TestReduceTree:
    def test_paper_example_all_strategies(self):
        tree = paper_example_tree()
        for strategy in ("sequential", "static", "tr1", "tr2"):
            result = reduce_tree(tree, eval_arith_node, processors=4,
                                 strategy=strategy, seed=3)
            assert result.value == paper_example_value, strategy

    def test_strand_evaluator(self):
        result = reduce_tree(paper_example_tree(), EVAL_SOURCE,
                             processors=2, strategy="tr1")
        assert result.value == paper_example_value

    def test_tr1_without_termination_uses_quiescence(self):
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=2, strategy="tr1", termination=False)
        assert result.value == paper_example_value

    def test_single_leaf_shortcut(self):
        result = reduce_tree(Leaf(7), eval_arith_node, strategy="tr2")
        assert result.value == 7

    def test_unknown_strategy(self):
        with pytest.raises(ReproError):
            reduce_tree(paper_example_tree(), eval_arith_node, strategy="bogus")

    def test_metrics_populated(self):
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=4, strategy="tr1")
        assert result.metrics.processors == 4
        assert result.metrics.reductions > 0

    def test_eval_cost_scales_virtual_time(self):
        cheap = reduce_tree(paper_example_tree(), eval_arith_node,
                            strategy="sequential", eval_cost=1.0)
        costly = reduce_tree(paper_example_tree(), eval_arith_node,
                             strategy="sequential", eval_cost=100.0)
        assert costly.metrics.makespan > cheap.metrics.makespan

    def test_topology_option(self):
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=8, strategy="tr1", topology="hypercube")
        assert result.value == paper_example_value
