"""Motif abstraction tests: M(A) = T(A) ∪ L, composition, metadata."""

import pytest

from repro.core.motif import ComposedMotif, Motif
from repro.errors import MotifError
from repro.strand.foreign import ForeignRegistry
from repro.strand.parser import parse_program
from repro.transform.transformation import FunctionTransformation


def renaming(name):
    """A transformation that tags every procedure by prefixing its name."""

    def fn(program):
        from repro.strand.program import Program, Rule
        from repro.strand.terms import Struct

        out = Program(name=program.name)
        for rule in program.rules():
            head = Struct(f"{name}_{rule.head.functor}", rule.head.args)
            out.add_rule(Rule(head, rule.guards, rule.body))
        return out

    return FunctionTransformation(fn, name)


class TestApply:
    def test_library_only(self):
        motif = Motif("lib", library="helper(1).")
        applied = motif.apply(parse_program("user.", name="A"))
        assert ("helper", 1) in applied.program
        assert ("user", 0) in applied.program

    def test_transformation_only(self):
        motif = Motif("t", transformation=renaming("x"))
        applied = motif.apply(parse_program("user."))
        assert ("x_user", 0) in applied.program
        assert ("user", 0) not in applied.program

    def test_application_not_mutated(self):
        app = parse_program("user.")
        Motif("lib", library="helper.").apply(app)
        assert ("helper", 0) not in app

    def test_collision_raises(self):
        motif = Motif("lib", library="user.")
        with pytest.raises(MotifError, match="lib"):
            motif.apply(parse_program("user."))

    def test_user_names_tracked(self):
        applied = Motif("lib", library="helper.").apply(parse_program("user."))
        assert applied.user_names == {"user"}
        assert ("helper", 0) in applied.library_indicators
        assert ("user", 0) not in applied.library_indicators

    def test_user_names_survive_arity_changes(self):
        # A transformation that changes a user procedure's arity keeps it
        # classified as user code (classification is by name).
        from repro.transform.argthread import ThreadArgument
        from repro.strand.terms import Struct

        motif = Motif(
            "srv",
            transformation=ThreadArgument(
                ops={("send", 2): lambda g, dt: [Struct("distribute", (*g.args, dt))]}
            ),
        )
        applied = motif.apply(parse_program("user(X) :- send(1, X)."))
        assert ("user", 2) in applied.program
        assert ("user", 2) not in applied.library_indicators

    def test_services_accumulate(self):
        m1 = Motif("a", services={("s", 1)})
        m2 = Motif("b", services={("t", 2)})
        applied = m2.apply(m1.apply(parse_program("user.")))
        assert applied.services == {("s", 1), ("t", 2)}

    def test_foreign_setup_chain(self):
        def setup(reg):
            reg.register("f", 1, lambda: 1, inputs=(), outputs=(0,))

        motif = Motif("with-foreign", foreign_setup=setup)
        applied = motif.apply(parse_program("user."))
        registry = applied.make_foreign()
        assert ("f", 1) in registry

    def test_make_foreign_does_not_mutate_base(self):
        def setup(reg):
            reg.register("f", 1, lambda: 1, inputs=(), outputs=(0,))

        base = ForeignRegistry()
        applied = Motif("m", foreign_setup=setup).apply(parse_program("user."))
        applied.make_foreign(base)
        assert ("f", 1) not in base


class TestCompose:
    def test_inner_applied_first(self):
        inner = Motif("inner", transformation=renaming("i"))
        outer = Motif("outer", transformation=renaming("o"))
        composed = outer.compose(inner)
        applied = composed.apply(parse_program("user."))
        assert ("o_i_user", 0) in applied.program

    def test_matmul_spelling(self):
        inner = Motif("inner", transformation=renaming("i"))
        outer = Motif("outer", transformation=renaming("o"))
        applied = (outer @ inner).apply(parse_program("user."))
        assert ("o_i_user", 0) in applied.program

    def test_outer_transformation_sees_inner_library(self):
        # The defining property: T2 applies to T1(A) ∪ L1.
        inner = Motif("inner", library="from_inner.")
        outer = Motif("outer", transformation=renaming("o"))
        applied = (outer @ inner).apply(parse_program("user."))
        assert ("o_from_inner", 0) in applied.program

    def test_composition_is_associative(self):
        a = Motif("a", transformation=renaming("a"))
        b = Motif("b", transformation=renaming("b"))
        c = Motif("c", transformation=renaming("c"))
        left = (c @ b) @ a
        right = c @ (b @ a)
        from repro.strand.pretty import format_program

        pa = left.apply(parse_program("user.")).program
        pb = right.apply(parse_program("user.")).program
        assert format_program(pa) == format_program(pb)

    def test_stages_flattened(self):
        a, b, c = Motif("a"), Motif("b"), Motif("c")
        composed = c @ (b @ a)
        assert [m.name for m in composed.stages()] == ["a", "b", "c"]

    def test_apply_staged_returns_intermediates(self):
        inner = Motif("inner", library="step_one.")
        outer = Motif("outer", library="step_two.")
        stages = (outer @ inner).apply_staged(parse_program("user."))
        assert len(stages) == 2
        assert ("step_one", 0) in stages[0].program
        assert ("step_two", 0) not in stages[0].program
        assert ("step_two", 0) in stages[1].program

    def test_empty_composition_rejected(self):
        with pytest.raises(MotifError):
            ComposedMotif([])

    def test_name_reads_outermost_first(self):
        a = Motif("a")
        b = Motif("b")
        assert (b @ a).name == "b ∘ a"
