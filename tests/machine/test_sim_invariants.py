"""Simulation invariants, property-tested over random workloads.

These are the statements that make virtual-time measurements trustworthy:
if any of them breaks, every benchmark number is suspect.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.apps.trees import sequential_reduce
from repro.core.api import reduce_tree
from repro.machine import Machine

_TOPOLOGIES = ["full", "ring", "mesh", "torus", "hypercube", "tree"]


def run(leaves, processors, topology, seed, strategy="tr1"):
    tree = arithmetic_tree(leaves, seed=seed)
    machine = Machine(processors, topology=topology, seed=seed)
    return reduce_tree(tree, eval_arith_node, processors=processors,
                       strategy=strategy, seed=seed, machine=machine,
                       eval_cost=7.0)


@given(
    leaves=st.integers(2, 12),
    log_p=st.integers(0, 3),
    topology=st.sampled_from(_TOPOLOGIES),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=25, deadline=None)
def test_accounting_invariants(leaves, log_p, topology, seed):
    processors = 1 << log_p  # power of two satisfies every topology
    result = run(leaves, processors, topology, seed)
    m = result.metrics
    procs = result.engine.machine.procs

    # 1. Per-processor busy time never exceeds its clock; the makespan is
    #    the max clock.
    for p in procs:
        assert p.busy <= p.clock + 1e-9
    assert m.makespan == max(p.clock for p in procs)

    # 2. Efficiency and fairness live in (0, 1].
    assert 0.0 < m.efficiency <= 1.0 + 1e-9
    assert 0.0 < m.fairness <= 1.0 + 1e-9
    assert m.imbalance >= 1.0 - 1e-9

    # 3. Aggregates equal per-processor sums.
    assert m.reductions == sum(p.reductions for p in procs)
    assert m.total_busy == sum(p.busy for p in procs)
    assert m.sends == sum(p.sends for p in procs)

    # 4. Cost attribution partitions the total charged work.
    assert abs((m.library_cost + m.user_cost) - m.total_busy) < 1e-6

    # 5. Every hop was carried by a message, and single-processor machines
    #    never communicate.
    if processors == 1:
        assert m.messages == 0 and m.hops == 0
    else:
        assert m.hops >= m.sends  # at least one hop per explicit send

    # 6. One node evaluation per internal node — never more, never fewer.
    assert m.tasks_started == (2 * leaves - 1) - leaves

    # 7. And, of course, the answer is the fold.
    tree = arithmetic_tree(leaves, seed=seed)
    assert result.value == sequential_reduce(tree, eval_arith_node)


@given(
    leaves=st.integers(2, 10),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=15, deadline=None)
def test_sequential_machine_fully_busy(leaves, seed):
    result = run(leaves, 1, "full", seed, strategy="sequential")
    m = result.metrics
    # A single processor with no waiting has no idle time at all.
    assert m.efficiency == 1.0


@given(
    leaves=st.integers(4, 12),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=15, deadline=None)
def test_makespan_never_below_critical_work(leaves, seed):
    """The parallel run can never beat the heaviest single evaluation plus
    its mandatory predecessors — a weak but universal lower bound: the
    makespan is at least the cost of one eval."""
    result = run(leaves, 8, "full", seed)
    assert result.metrics.makespan >= 7.0
