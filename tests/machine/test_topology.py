"""Topology tests, including metric-space properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.machine.topology import (
    BinaryTreeTopology,
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    SharedMemory,
    topology_by_name,
)

ALL_KINDS = ["full", "ring", "mesh", "torus", "hypercube", "tree"]


def make(kind: str, size: int):
    if kind == "hypercube":
        size = 1 << max(0, size - 1).bit_length() if size & (size - 1) else size
    return topology_by_name(kind, size)


class TestBasics:
    def test_self_distance_zero(self):
        for kind in ALL_KINDS:
            topo = topology_by_name(kind, 8)
            assert topo.hops(3, 3) == 0

    def test_fully_connected_one_hop(self):
        topo = FullyConnected(6)
        assert all(topo.hops(a, b) == 1 for a in range(1, 7) for b in range(1, 7) if a != b)
        assert topo.diameter == 1

    def test_shared_memory_alias(self):
        assert SharedMemory(4).hops(1, 4) == 1

    def test_ring_wraps(self):
        topo = Ring(8)
        assert topo.hops(1, 2) == 1
        assert topo.hops(1, 8) == 1  # around the back
        assert topo.hops(1, 5) == 4
        assert topo.diameter == 4

    def test_mesh_manhattan(self):
        topo = Mesh2D(3, 4)  # rows x cols
        # processor 1 at (0,0); processor 12 at (2,3)
        assert topo.hops(1, 12) == 5
        assert topo.hops(1, 2) == 1
        assert topo.hops(1, 5) == 1  # down one row

    def test_mesh_square_factory(self):
        topo = Mesh2D.square(12)
        assert topo.size == 12
        assert topo.rows * topo.cols == 12

    def test_hypercube_hamming(self):
        topo = Hypercube(8)
        assert topo.dimension == 3
        assert topo.hops(1, 2) == 1  # 000 vs 001
        assert topo.hops(1, 8) == 3  # 000 vs 111
        assert topo.diameter == 3

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(TopologyError):
            Hypercube(6)

    def test_tree_distance(self):
        topo = BinaryTreeTopology(7)
        assert topo.hops(2, 3) == 2  # siblings via root
        assert topo.hops(1, 4) == 2  # root to grandchild
        assert topo.hops(4, 5) == 2  # siblings
        assert topo.hops(4, 7) == 4

    def test_invalid_processor(self):
        topo = Ring(4)
        with pytest.raises(TopologyError):
            topo.hops(0, 1)
        with pytest.raises(TopologyError):
            topo.hops(1, 5)

    def test_unknown_name(self):
        with pytest.raises(TopologyError):
            topology_by_name("klein-bottle", 4)

    def test_size_one(self):
        for kind in ALL_KINDS:
            topo = topology_by_name(kind, 1)
            assert topo.hops(1, 1) == 0


@given(
    st.sampled_from(ALL_KINDS),
    st.integers(min_value=2, max_value=5),
    st.data(),
)
def test_metric_properties(kind, log_size, data):
    """hops is a metric: symmetric, zero iff equal, triangle inequality."""
    size = 1 << log_size  # power of two suits every topology
    topo = topology_by_name(kind, size)
    a = data.draw(st.integers(1, size))
    b = data.draw(st.integers(1, size))
    c = data.draw(st.integers(1, size))
    assert topo.hops(a, b) == topo.hops(b, a)
    assert (topo.hops(a, b) == 0) == (a == b)
    assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)


class TestTorus:
    def test_wraparound_both_axes(self):
        from repro.machine.topology import Torus2D

        torus = Torus2D(4, 4)
        assert torus.hops(1, 4) == 1   # column wrap
        assert torus.hops(1, 13) == 1  # row wrap
        assert torus.hops(1, 16) == 2  # both wraps
        assert torus.diameter == 4     # vs 6 for the open mesh

    def test_factory(self):
        from repro.machine.topology import Torus2D, topology_by_name

        topo = topology_by_name("torus", 16)
        assert isinstance(topo, Torus2D)

    def test_torus_never_exceeds_mesh(self):
        from repro.machine.topology import Mesh2D, Torus2D

        mesh, torus = Mesh2D(3, 5), Torus2D(3, 5)
        for a in range(1, 16):
            for b in range(1, 16):
                assert torus.hops(a, b) <= mesh.hops(a, b)
