"""Parallel backend: equivalence with the sequential backend, determinism,
and the pinned NotImplementedError surface.

Equivalence here means *result values*: for confluent programs (answers
independent of message-arrival races) the parallel backend must compute
exactly what the sequential backend computes for the same seed and program.
Virtual-time metrics and trace interleavings are allowed to differ — the
shards advance their clocks independently between epoch barriers.
"""

import pytest

from repro.errors import (
    DeadlockError,
    DoubleAssignmentError,
    MachineError,
)
from repro.machine import Machine
from repro.machine.faults import FaultPlan
from repro.machine.parallel import shard_of
from repro.machine.profile import MotifProfile
from repro.strand import parse_program, run_query

SPREAD = """
go(N, Out) :- spread(N, Out).
spread(0, Out) :- Out := [].
spread(N, Out) :- N > 0 |
    Out := [V | Rest],
    work(N, V) @ N,
    N1 := N - 1,
    spread(N1, Rest).
work(N, V) :- V := N * N.
"""

FAN = """
go(N, Out) :- open_port(P, S), collect(S, Out), fan(N, P).
fan(0, _P).
fan(N, P) :- N > 0 |
    send_port(P, v(N)) @ N,
    N1 := N - 1,
    fan(N1, P).
collect([v(X) | Rest], Out) :- Out := [X | Out1], collect(Rest, Out1).
collect([], Out) :- Out := [].
"""

SERVICES = (("collect", 2),)


def run_spread(machine, n=12):
    return run_query(parse_program(SPREAD), f"go({n}, Out)", machine=machine)


def run_fan(machine, n=9):
    return run_query(parse_program(FAN), f"go({n}, Out)", machine=machine,
                     services=SERVICES)


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_dataflow_matches_sequential(self, workers):
        seq = run_spread(Machine(4, seed=7))
        par = run_spread(Machine(4, seed=7, backend="parallel",
                                 workers=workers))
        assert par.value("Out") == seq.value("Out")
        assert par.metrics.reductions == seq.metrics.reductions

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_seed_sweep(self, seed):
        seq = run_spread(Machine(5, seed=seed), n=15)
        par = run_spread(Machine(5, seed=seed, backend="parallel", workers=2),
                         n=15)
        assert par.value("Out") == seq.value("Out")

    def test_ports_match_sequential(self):
        # Cross-shard port sends land in deterministic but shard-dependent
        # splice order, so compare as multisets.
        seq = run_fan(Machine(3, seed=1))
        par = run_fan(Machine(3, seed=1, backend="parallel", workers=3))
        assert sorted(par.value("Out")) == sorted(seq.value("Out"))

    def test_epoch_window_mode(self):
        seq = run_fan(Machine(3, seed=1))
        par = run_fan(Machine(3, seed=1, backend="parallel", workers=2,
                              epoch_window=2.0))
        assert sorted(par.value("Out")) == sorted(seq.value("Out"))

    def test_reduce_tree_parallel_backend(self):
        from repro.apps.trees import balanced_tree, sequential_reduce
        from repro.core.api import reduce_tree

        tree = balanced_tree(4, lambda rng: "add",
                             lambda rng: rng.randint(1, 9))
        expected = sequential_reduce(tree, lambda op, lv, rv: lv + rv)
        evaluator = "eval(add, L, R, V) :- V := L + R."
        seq = reduce_tree(tree, evaluator, processors=4, seed=2)
        par = reduce_tree(tree, evaluator, processors=4, seed=2,
                          backend="parallel", workers=2)
        assert seq.value == expected
        assert par.value == expected


class TestDeterminism:
    def test_repeated_runs_identical(self):
        results = [
            run_fan(Machine(3, seed=5, backend="parallel", workers=3))
            for _ in range(2)
        ]
        assert results[0].value("Out") == results[1].value("Out")
        assert (results[0].metrics.reductions
                == results[1].metrics.reductions)
        assert results[0].metrics.sends == results[1].metrics.sends

    def test_trace_merge_is_ordered(self):
        machine = Machine(3, seed=1, backend="parallel", workers=2,
                          trace=True)
        run_fan(machine, n=6)
        eids = [ev.eid for ev in machine.trace.events]
        assert eids == sorted(eids)
        assert len(set(eids)) == len(eids)
        times = [ev.time for ev in machine.trace.events]
        assert times == sorted(times)


class TestErrors:
    def test_deadlock_reported_across_shards(self):
        src = "go(Out) :- wait(X, Out).\nwait(done, Out) :- Out := yes."
        with pytest.raises(DeadlockError, match="1 suspended"):
            run_query(parse_program(src), "go(Out)",
                      machine=Machine(2, seed=0, backend="parallel",
                                      workers=2))

    def test_cross_shard_double_assignment(self):
        src = """
        go(X) :- a(X) @ 1, b(X) @ 2.
        a(X) :- X := 1.
        b(X) :- X := 2.
        """
        with pytest.raises(DoubleAssignmentError):
            run_query(parse_program(src), "go(X)",
                      machine=Machine(2, seed=0, backend="parallel",
                                      workers=2))


class TestUnsupportedLayers:
    def test_faults_raise_not_implemented(self):
        with pytest.raises(
            NotImplementedError,
            match="fault injection is not supported on the parallel backend",
        ):
            Machine(4, backend="parallel", workers=2,
                    faults=FaultPlan(crash_rate=0.5))

    def test_profile_raises_not_implemented(self):
        with pytest.raises(
            NotImplementedError,
            match="per-motif profiling is not supported on the parallel "
                  "backend",
        ):
            run_query(parse_program(SPREAD), "go(4, Out)",
                      machine=Machine(2, backend="parallel", workers=2),
                      profile=MotifProfile())

    def test_python_foreign_raises_not_implemented(self):
        # Python-callable evaluators register closures in the foreign
        # registry; closures cannot be shipped to worker processes.
        from repro.apps.trees import balanced_tree
        from repro.core.api import reduce_tree

        tree = balanced_tree(2, lambda rng: "add", lambda rng: 1)
        with pytest.raises(NotImplementedError, match="not picklable"):
            reduce_tree(tree, lambda op, lv, rv: lv + rv,
                        processors=4, backend="parallel", workers=2)


class TestConfiguration:
    def test_unknown_backend_rejected(self):
        with pytest.raises(MachineError, match="unknown backend"):
            Machine(2, backend="threads")

    def test_workers_require_parallel_backend(self):
        with pytest.raises(MachineError, match="workers="):
            Machine(2, workers=2)

    def test_workers_capped_at_processors(self):
        machine = Machine(3, backend="parallel", workers=8)
        assert machine.workers == 3

    def test_epoch_window_must_be_positive(self):
        with pytest.raises(MachineError, match="epoch_window"):
            Machine(2, backend="parallel", epoch_window=-1.0)

    def test_shard_mapping_round_robin(self):
        owners = [shard_of(p, 3) for p in range(1, 8)]
        assert owners == [0, 1, 2, 0, 1, 2, 0]

    def test_sequential_machine_has_no_workers(self):
        assert Machine(4).workers is None


class TestCli:
    def test_run_backend_parallel(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "spread.str"
        source.write_text(SPREAD)
        code = main(["run", str(source), "go(6, Out)", "-P", "3",
                     "--backend", "parallel", "--workers", "2", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Out = [36, 25, 16, 9, 4, 1]" == out.strip().splitlines()[-1]
