"""MotifProfile: bucket accounting, attribution through a real motif
stack, and the rendered cost table."""

import pytest

from repro.apps.arithmetic import eval_arith_node, paper_example_tree
from repro.core.api import reduce_tree
from repro.machine import Machine, MotifProfile
from repro.machine.profile import USER_TAG


class TestBuckets:
    def test_counters_accumulate_in_the_current_context(self):
        profile = MotifProfile()
        profile.begin("tree1", ("reduce", 2))
        profile.reduction(1.0)
        profile.reduction(2.0)
        profile.suspension()
        profile.message()
        row = profile.rows[("tree1", "reduce/2")]
        assert row == [2, 1, 1, 3.0]

    def test_none_motif_profiles_under_user(self):
        profile = MotifProfile()
        profile.begin(None, ("go", 1))
        profile.reduction(1.0)
        assert (USER_TAG, "go/1") in profile.rows

    def test_by_motif_collapses_predicates(self):
        profile = MotifProfile()
        profile.begin("m", ("a", 1))
        profile.reduction(1.0)
        profile.begin("m", ("b", 2))
        profile.reduction(2.0)
        profile.suspension()
        assert profile.by_motif() == {"m": [2, 1, 0, 3.0]}
        assert profile.total_busy == 3.0

    def test_as_dict_sorts_by_busy_descending(self):
        profile = MotifProfile()
        profile.begin("m", ("cheap", 1))
        profile.reduction(1.0)
        profile.begin("m", ("dear", 1))
        profile.reduction(10.0)
        keys = list(profile.as_dict())
        assert keys == ["m:dear/1", "m:cheap/1"]


class TestAttribution:
    def run_profiled(self):
        profile = MotifProfile()
        machine = Machine(4, seed=0)
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             machine=machine, strategy="tr1",
                             profile=profile)
        return profile, result

    def test_tr1_stack_splits_server_and_user_costs(self):
        profile, result = self.run_profiled()
        assert result.value == 24
        motifs = set(profile.by_motif())
        assert "server[ports]" in motifs
        assert USER_TAG in motifs

    def test_profiled_busy_matches_machine_busy(self):
        profile, result = self.run_profiled()
        assert profile.total_busy == pytest.approx(
            result.metrics.total_busy)

    def test_profiled_reductions_match_machine_reductions(self):
        profile, result = self.run_profiled()
        total = sum(row[0] for row in profile.rows.values())
        assert total == result.metrics.reductions

    def test_profiling_does_not_perturb_the_computation(self):
        _, profiled = self.run_profiled()
        plain = reduce_tree(paper_example_tree(), eval_arith_node,
                            machine=Machine(4, seed=0), strategy="tr1")
        assert profiled.value == plain.value
        assert profiled.metrics.makespan == plain.metrics.makespan


class TestRendering:
    def test_table_has_rows_and_per_motif_subtotals(self):
        profile = MotifProfile()
        profile.begin("server[ports]", ("server", 2))
        profile.reduction(4.0)
        profile.begin(None, ("go", 1))
        profile.reduction(1.0)
        text = profile.render()
        assert "per-motif / per-predicate profile" in text
        assert "server/2" in text
        assert "go/1" in text
        assert "server[ports]:" in text  # subtotal note
        assert "user:" in text
