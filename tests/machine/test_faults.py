"""Fault-injection machinery: FaultPlan resolution, message fates, trace
hygiene, and the fault counters' path into MachineMetrics."""

import random

import pytest

from repro.machine import FaultPlan, FaultStats, Machine, Partition, Trace
from repro.strand.engine import run_query
from repro.strand.parser import parse_program
from repro.strand.terms import Var, deref


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.6, delay_rate=0.6)

    def test_lossy_only_with_message_rates(self):
        assert not FaultPlan().lossy
        assert not FaultPlan(crash={2: 10.0}, crash_rate=0.5).lossy
        assert FaultPlan(drop_rate=0.1).lossy
        assert FaultPlan(delay_rate=0.1).lossy

    def test_explicit_schedule_beats_random_and_immortality(self):
        plan = FaultPlan(crash={1: 30.0, 3: 5}, crash_rate=0.0)
        schedule = plan.resolve_crashes(4, random.Random(0))
        # Processor 1 is immortal by default, but an explicit entry wins;
        # times are normalized to float.
        assert schedule == {1: 30.0, 3: 5.0}

    def test_random_schedule_is_seed_deterministic(self):
        plan = FaultPlan(crash_rate=0.5)
        a = plan.resolve_crashes(8, random.Random(42))
        b = plan.resolve_crashes(8, random.Random(42))
        assert a == b
        assert 1 not in a  # immortal
        lo, hi = plan.crash_window
        assert all(lo <= t <= hi for t in a.values())

    def test_immortal_set_respected(self):
        plan = FaultPlan(crash_rate=1.0, immortal=frozenset({1, 2}))
        schedule = plan.resolve_crashes(4, random.Random(7))
        assert set(schedule) == {3, 4}


class TestMachineFaultIntegration:
    def test_crash_schedule_fixed_at_construction(self):
        plan = FaultPlan(crash_rate=0.7)
        m1 = Machine(8, seed=11, faults=plan)
        m2 = Machine(8, seed=11, faults=plan)
        assert m1.crash_schedule == m2.crash_schedule

    def test_reset_reproduces_the_schedule(self):
        m = Machine(8, seed=11, faults=FaultPlan(crash_rate=0.7))
        schedule = dict(m.crash_schedule)
        m.rand_proc()  # perturb the RNG mid-run
        m.fault_stats.crashes = 3
        m.reset()
        assert m.crash_schedule == schedule
        assert m.fault_stats.crashes == 0
        assert all(p.alive for p in m.procs)

    def test_zero_rate_plan_leaves_rng_sequence_unchanged(self):
        # A fault plan with no random components must not perturb rand_num
        # draws relative to a machine with no plan at all.
        bare = Machine(4, seed=3)
        planned = Machine(4, seed=3, faults=FaultPlan(crash={2: 50.0}))
        draws_bare = [bare.rand_proc() for _ in range(16)]
        planned.message_fate(1, 3, now=0.0)  # deliver path, no draw
        draws_planned = [planned.rand_proc() for _ in range(16)]
        assert draws_bare == draws_planned


class TestMessageFate:
    def test_no_faults_always_delivers(self):
        m = Machine(4, seed=0)
        fate, latency = m.message_fate(1, 3, now=0.0)
        assert fate == "deliver"
        assert latency == m.latency(1, 3)

    def test_dead_destination_drops_without_rng_draw(self):
        m = Machine(4, seed=0, faults=FaultPlan(crash={3: 10.0}, drop_rate=0.5))
        state = m.rng.getstate()
        # Arrival time (now + latency) is past the crash: deterministic loss.
        fate, _ = m.message_fate(1, 3, now=9.0)
        assert fate == "drop"
        assert m.rng.getstate() == state
        assert m.fault_stats.messages_dropped == 1

    def test_arrival_before_crash_is_subject_to_rates_only(self):
        m = Machine(4, seed=0, faults=FaultPlan(crash={3: 1000.0}))
        fate, _ = m.message_fate(1, 3, now=0.0)
        assert fate == "deliver"

    def test_certain_drop(self):
        m = Machine(4, seed=0, faults=FaultPlan(drop_rate=1.0))
        assert m.message_fate(1, 2, now=0.0)[0] == "drop"
        assert m.fault_stats.messages_dropped == 1

    def test_certain_delay_scales_latency(self):
        plan = FaultPlan(delay_rate=1.0, delay_factor=4.0)
        m = Machine(4, seed=0, faults=plan)
        base = m.latency(1, 2)
        fate, latency = m.message_fate(1, 2, now=0.0)
        assert fate == "delay"
        assert latency == base * 5.0
        assert m.fault_stats.messages_delayed == 1

    def test_local_sends_never_crash_dropped_on_live_processor(self):
        m = Machine(4, seed=0, faults=FaultPlan(crash={3: 50.0}))
        assert m.message_fate(3, 3, now=0.0)[0] == "deliver"


class TestPartition:
    def test_group_and_window_validated(self):
        with pytest.raises(ValueError):
            Partition(frozenset(), 0.0, 10.0)
        with pytest.raises(ValueError):
            Partition(frozenset({2}), 10.0, 5.0)

    def test_severs_only_across_the_cut_inside_the_window(self):
        cut = Partition(frozenset({3, 4}), 30.0, 120.0)
        assert cut.severs(1, 3, 50.0)
        assert cut.severs(3, 1, 50.0)  # both directions
        assert not cut.severs(3, 4, 50.0)  # within the cut-off side
        assert not cut.severs(1, 2, 50.0)  # within the majority side
        assert not cut.severs(1, 3, 10.0)  # before the window opens
        assert not cut.severs(1, 3, 120.0)  # healed (end-exclusive)

    def test_partition_drop_without_rng_draw(self):
        plan = FaultPlan(
            partitions=(Partition(frozenset({3}), 0.0, 100.0),), drop_rate=0.5
        )
        m = Machine(4, seed=0, faults=plan)
        state = m.rng.getstate()
        fate, _ = m.message_fate(1, 3, now=50.0)
        assert fate == "drop"
        assert m.rng.getstate() == state
        assert m.fault_stats.partition_dropped == 1
        assert m.fault_stats.messages_dropped == 0

    def test_delivery_resumes_after_healing(self):
        plan = FaultPlan(partitions=(Partition(frozenset({3}), 0.0, 100.0),))
        m = Machine(4, seed=0, faults=plan)
        assert m.message_fate(1, 3, now=100.0)[0] == "deliver"
        assert m.message_fate(3, 1, now=150.0)[0] == "deliver"

    def test_random_partition_is_seed_deterministic(self):
        plan = FaultPlan(partition_rate=1.0, partition_duration=40.0)
        a = Machine(8, seed=5, faults=plan).partitions
        b = Machine(8, seed=5, faults=plan).partitions
        assert a == b
        (cut,) = a
        assert 1 not in cut.group  # immortal processors stay connected
        assert cut.end - cut.start == 40.0
        lo, hi = plan.partition_window
        assert lo <= cut.start <= hi

    def test_zero_rate_partition_fields_leave_rng_untouched(self):
        bare = Machine(4, seed=3)
        cut = Partition(frozenset({2}), 10.0, 20.0)
        planned = Machine(4, seed=3, faults=FaultPlan(partitions=(cut,)))
        assert planned.partitions == (cut,)
        assert [bare.rand_proc() for _ in range(16)] == [
            planned.rand_proc() for _ in range(16)
        ]


class TestDuplicateFate:
    def test_certain_duplicate_for_port_sends(self):
        m = Machine(4, seed=0, faults=FaultPlan(duplicate_rate=1.0))
        fate, latency = m.message_fate(1, 2, now=0.0)
        assert fate == "duplicate"
        assert latency == m.latency(1, 2)
        assert m.fault_stats.messages_duplicated == 1

    def test_spawns_resolve_duplicate_to_delivery_but_keep_the_draw(self):
        a = Machine(4, seed=9, faults=FaultPlan(duplicate_rate=1.0))
        b = Machine(4, seed=9, faults=FaultPlan(duplicate_rate=1.0))
        fate, _ = a.message_fate(1, 2, now=0.0, duplicable=False)
        assert fate == "deliver"
        assert a.fault_stats.messages_duplicated == 0
        b.message_fate(1, 2, now=0.0)
        # Both paths consumed the same number of draws, so everything
        # downstream of the shared RNG stays identical across message kinds.
        assert a.rng.getstate() == b.rng.getstate()


class TestMachineReset:
    def test_reset_reproduces_partitions_and_clears_counters(self):
        plan = FaultPlan(partition_rate=1.0, drop_rate=0.3)
        m = Machine(8, seed=11, faults=plan)
        cuts = m.partitions
        assert cuts
        for i in range(6):
            m.message_fate(2, 3, now=float(i))
        m.reset()
        assert m.partitions == cuts
        assert not m.fault_stats.any_faults

    def test_back_to_back_runs_replay_the_same_fate_sequence(self):
        plan = FaultPlan(drop_rate=0.3, delay_rate=0.1, duplicate_rate=0.2)
        m = Machine(4, seed=7, faults=plan)

        def episode():
            fates = [
                m.message_fate(1 + i % 3, 1 + (i + 1) % 4, now=float(i))[0]
                for i in range(24)
            ]
            stats = m.fault_stats
            return fates, (
                stats.messages_dropped,
                stats.messages_delayed,
                stats.messages_duplicated,
            )

        first = episode()
        m.reset()
        # Counters are per-run, not cumulative, and the fate sequence replays.
        assert episode() == first


class TestDeadProcessorTimers:
    def test_timer_armed_on_crashed_processor_never_fires(self):
        # The spawn lands on processor 2 long before its crash at t=50; the
        # timer it armed matures at t≈200, by which point the processor is
        # dead — fail-stop means the timeout must not fire.
        program = parse_program("arm(P) :- after(200, P) @ 2.")
        machine = Machine(4, seed=0, faults=FaultPlan(crash={2: 50.0}))
        result = run_query(program, "arm(P)", machine=machine)
        assert type(deref(result["P"])) is Var
        assert machine.fault_stats.sup_timeouts == 0

    def test_same_timer_fires_when_the_processor_survives(self):
        program = parse_program("arm(P) :- after(200, P) @ 2.")
        machine = Machine(4, seed=0, faults=FaultPlan(crash={3: 50.0}))
        result = run_query(program, "arm(P)", machine=machine)
        assert str(deref(result["P"])) == "timeout"
        assert machine.fault_stats.sup_timeouts == 1


class TestFaultStats:
    def test_clear_and_any_faults(self):
        stats = FaultStats()
        assert not stats.any_faults
        stats.crashes = 2
        stats.sup_retries = 5
        assert stats.any_faults
        stats.clear()
        assert stats.crashes == 0 and stats.sup_retries == 0
        assert not stats.any_faults

    def test_supervision_counters_alone_are_not_faults(self):
        stats = FaultStats(sup_retries=3, sup_timeouts=2)
        assert not stats.any_faults


class TestTraceHygiene:
    def test_truncated_and_clear(self):
        trace = Trace(enabled=True, limit=2)
        for i in range(5):
            trace.record(float(i), 1, "reduce", "x")
        assert len(trace) == 2
        assert trace.dropped == 3
        assert trace.truncated
        assert "3 events dropped" in trace.format()
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0
        assert not trace.truncated

    def test_machine_reset_keeps_trace_limit(self):
        m = Machine(2, trace=True)
        m.trace.limit = 7
        m.trace.record(0.0, 1, "reduce", "x")
        m.reset()
        assert len(m.trace) == 0
        assert m.trace.limit == 7


class TestMetricsSurface:
    def test_fault_counters_reach_metrics(self):
        m = Machine(4, seed=0, faults=FaultPlan(drop_rate=1.0))
        m.message_fate(1, 2, now=0.0)
        m.fault_stats.crashes = 1
        m.fault_stats.orphaned_suspensions = 2
        metrics = m.metrics()
        assert metrics.crashes == 1
        assert metrics.messages_dropped == 1
        assert metrics.orphaned_suspensions == 2
        assert metrics.faults_injected == 2
        summary = metrics.summary()
        assert "faults(" in summary
        assert "crashes=1" in summary

    def test_partition_and_duplicate_counters_reach_metrics(self):
        m = Machine(4, seed=0, faults=FaultPlan(duplicate_rate=1.0))
        m.message_fate(1, 2, now=0.0)
        m.fault_stats.partition_dropped = 2
        metrics = m.metrics()
        assert metrics.messages_duplicated == 1
        assert metrics.partition_dropped == 2
        assert metrics.faults_injected == 3
        summary = metrics.summary()
        assert "duplicated=1" in summary
        assert "partition_dropped=2" in summary

    def test_reliability_counters_reach_metrics(self):
        m = Machine(4, seed=0)
        m.fault_stats.rel_retransmits = 3
        m.fault_stats.rel_acks = 15
        m.fault_stats.rel_duplicates_suppressed = 2
        m.fault_stats.rel_unreachable = 1
        metrics = m.metrics()
        assert metrics.reliability_events == 21
        # Protocol activity is not an injected fault.
        assert metrics.faults_injected == 0
        summary = metrics.summary()
        assert "reliable(retransmits=3, acks=15" in summary
        assert "dup_suppressed=2" in summary
        assert "unreachable=1" in summary

    def test_fault_free_metrics_stay_quiet(self):
        metrics = Machine(4).metrics()
        assert metrics.faults_injected == 0
        assert "faults(" not in metrics.summary()
        assert metrics.trace_dropped == 0

    def test_trace_dropped_reaches_metrics(self):
        m = Machine(2, trace=True)
        m.trace.limit = 1
        m.trace.record(0.0, 1, "reduce", "a")
        m.trace.record(1.0, 1, "reduce", "b")
        assert m.metrics().trace_dropped == 1
