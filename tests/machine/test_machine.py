"""Machine, network, processor, metrics, and trace tests."""

import pytest

from repro.errors import MachineError
from repro.machine import (
    Machine,
    MachineMetrics,
    Network,
    Ring,
    Trace,
    VirtualProcessor,
    coefficient_of_variation,
    imbalance,
    jain_fairness,
)


class TestNetwork:
    def test_local_delivery_free(self):
        net = Network(Ring(4))
        assert net.latency(2, 2) == 0.0

    def test_linear_model(self):
        net = Network(Ring(8), startup=2.0, per_hop=1.5)
        assert net.latency(1, 2) == 2.0 + 1.5
        assert net.latency(1, 5) == 2.0 + 4 * 1.5

    def test_uniform_factory(self):
        net = Network.uniform(4, latency=7.0)
        assert net.latency(1, 3) == 7.0
        assert net.latency(1, 1) == 0.0


class TestMachine:
    def test_default_single_processor(self):
        m = Machine()
        assert m.size == 1

    def test_topology_by_name(self):
        m = Machine(8, topology="hypercube")
        assert m.hops(1, 8) == 3

    def test_topology_size_mismatch(self):
        with pytest.raises(MachineError):
            Machine(4, topology=Ring(8))

    def test_needs_processor(self):
        with pytest.raises(MachineError):
            Machine(0)

    def test_proc_lookup_one_based(self):
        m = Machine(4)
        assert m.proc(1).number == 1
        assert m.proc(4).number == 4
        with pytest.raises(MachineError):
            m.proc(0)
        with pytest.raises(MachineError):
            m.proc(5)

    def test_normalize_wraps(self):
        m = Machine(4)
        assert m.normalize(1) == 1
        assert m.normalize(4) == 4
        assert m.normalize(5) == 1
        assert m.normalize(0) == 4
        assert m.normalize(-1) == 3

    def test_rand_proc_range_and_determinism(self):
        a = Machine(8, seed=3)
        b = Machine(8, seed=3)
        seq_a = [a.rand_proc() for _ in range(20)]
        seq_b = [b.rand_proc() for _ in range(20)]
        assert seq_a == seq_b
        assert all(1 <= p <= 8 for p in seq_a)

    def test_reset_clears_state(self):
        m = Machine(2, seed=1)
        m.proc(1).busy = 10
        m.rand_proc()
        m.reset()
        assert m.proc(1).busy == 0
        n = Machine(2, seed=1)
        assert m.rand_proc() == n.rand_proc()


class TestProcessorCounters:
    def test_task_high_water(self):
        p = VirtualProcessor(1)
        p.task_spawned()
        p.task_spawned()
        p.task_finished()
        p.task_spawned()
        assert p.peak_live_tasks == 2
        assert p.live_tasks == 2
        assert p.tasks_started == 3

    def test_value_high_water(self):
        p = VirtualProcessor(1)
        for _ in range(3):
            p.value_produced()
        p.value_consumed()
        assert p.peak_live_values == 3
        assert p.live_values == 2


class TestLoadFormulas:
    def test_imbalance(self):
        assert imbalance([1, 1, 1, 1]) == 1.0
        assert imbalance([4, 0, 0, 0]) == 4.0
        assert imbalance([]) == 1.0
        assert imbalance([0, 0]) == 1.0

    def test_jain(self):
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_fairness([]) == 1.0

    def test_cv(self):
        assert coefficient_of_variation([3, 3, 3]) == 0.0
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([0, 2]) == pytest.approx(1.0)


class TestMetrics:
    def make(self):
        procs = [VirtualProcessor(1), VirtualProcessor(2)]
        procs[0].clock, procs[0].busy, procs[0].reductions = 10.0, 8.0, 8
        procs[1].clock, procs[1].busy, procs[1].reductions = 6.0, 6.0, 6
        procs[0].sends, procs[1].remote_bindings = 3, 2
        procs[0].peak_live_tasks = 4
        return MachineMetrics.from_processors(procs, library_cost=4.0, user_cost=12.0)

    def test_aggregates(self):
        m = self.make()
        assert m.makespan == 10.0
        assert m.total_busy == 14.0
        assert m.reductions == 14
        assert m.messages == 5
        assert m.max_peak_live_tasks == 4

    def test_efficiency(self):
        m = self.make()
        assert m.efficiency == pytest.approx(14.0 / 20.0)

    def test_library_fraction(self):
        m = self.make()
        assert m.library_fraction == pytest.approx(0.25)

    def test_speedup(self):
        m = self.make()
        assert m.speedup_against(30.0) == pytest.approx(3.0)

    def test_summary_mentions_key_figures(self):
        text = self.make().summary()
        assert "P=2" in text and "makespan=10.0" in text


class TestTrace:
    def test_disabled_records_nothing(self):
        t = Trace(enabled=False)
        t.record(1.0, 1, "reduce", "p")
        assert len(t) == 0

    def test_enabled_records(self):
        t = Trace(enabled=True)
        t.record(1.0, 1, "reduce", "p")
        t.record(2.0, 2, "send", "q")
        assert len(t) == 2
        assert len(t.of_kind("reduce")) == 1
        assert len(t.on_processor(2)) == 1

    def test_limit(self):
        t = Trace(enabled=True, limit=2)
        for i in range(5):
            t.record(float(i), 1, "x", "d")
        assert len(t) == 2
        assert t.dropped == 3
        assert "dropped" in t.format()

    def test_format_ordering(self):
        t = Trace(enabled=True)
        t.record(2.0, 1, "b", "later")
        t.record(1.0, 1, "a", "earlier")
        out = t.format()
        assert out.index("earlier") < out.index("later")

    def test_engine_trace_integration(self):
        from repro.strand import parse_program, run_query

        m = Machine(1, trace=True)
        run_query(parse_program("p :- q.\nq."), "p", machine=m)
        kinds = {e.kind for e in m.trace}
        assert "spawn" in kinds and "reduce" in kinds
