"""Uniform counter surfaces: ``MachineMetrics.counters()``, the extended
``summary()`` fault section, the shared ``metrics_table`` report, and the
gantt's truncation warning."""

from repro.analysis.reporting import metrics_table
from repro.apps.arithmetic import eval_arith_node, paper_example_tree
from repro.core.api import reduce_tree, supervised_reduce_tree
from repro.machine import FaultPlan, Machine, Trace
from repro.machine.gantt import render_gantt


def crash_run():
    machine = Machine(4, seed=11, trace=True,
                      faults=FaultPlan(crash={3: 25.0}))
    result = supervised_reduce_tree(paper_example_tree(), eval_arith_node,
                                    machine=machine)
    return result.metrics, machine


class TestCounters:
    def test_counters_cover_every_fault_family(self):
        metrics, _ = crash_run()
        counters = metrics.counters()
        for family in ("crashes", "messages_dropped", "processes_abandoned",
                       "processes_migrated", "orphaned_suspensions",
                       "sup_timeouts", "sup_retries", "rel_retransmits",
                       "rel_acks", "trace_dropped"):
            assert family in counters
        assert counters["crashes"] == 1

    def test_counters_match_the_attribute_values(self):
        metrics, _ = crash_run()
        for name, value in metrics.counters().items():
            assert getattr(metrics, name) == value

    def test_summary_reports_migrations_and_timeouts(self):
        machine = Machine(4, seed=11,
                          faults=FaultPlan(crash={3: 25.0}, migrate=True))
        result = supervised_reduce_tree(paper_example_tree(),
                                        eval_arith_node, machine=machine)
        text = result.metrics.summary()
        assert "migrated=" in text
        assert "timeouts=" in text

    def test_summary_flags_a_truncated_trace(self):
        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=16)
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             machine=machine, strategy="tr1")
        assert "trace_dropped=" in result.metrics.summary()
        assert "trace truncated" in result.metrics.summary()


class TestMetricsTable:
    def test_table_includes_headline_and_counter_rows(self):
        metrics, _ = crash_run()
        text = metrics_table(metrics).render()
        assert "machine metrics" in text
        assert "makespan" in text
        assert "crashes" in text
        assert "rel_acks" in text

    def test_truncation_note_appears_only_when_dropped(self):
        metrics, _ = crash_run()
        assert "trace truncated" not in metrics_table(metrics).render()
        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=16)
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             machine=machine, strategy="tr1")
        assert "trace truncated" in metrics_table(result.metrics).render()


class TestGanttTruncationWarning:
    def test_truncated_trace_warns(self):
        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=16)
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             machine=machine, strategy="tr1")
        text = render_gantt(machine.trace, 4, result.metrics.makespan)
        assert "WARNING: trace truncated" in text
        assert str(machine.trace.dropped) in text

    def test_complete_trace_does_not_warn(self):
        machine = Machine(4, seed=0, trace=True)
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             machine=machine, strategy="tr1")
        text = render_gantt(machine.trace, 4, result.metrics.makespan)
        assert "WARNING" not in text
