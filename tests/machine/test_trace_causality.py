"""Causal-trace invariants: every event's cause exists and precedes it,
chains terminate at roots, and tracing never perturbs the computation —
across fault-free, crash, partition, and duplicate runs."""

import pytest

from repro.apps.arithmetic import eval_arith_node, paper_example_tree
from repro.core.api import (
    reduce_tree,
    reliable_reduce_tree,
    supervised_reduce_tree,
)
from repro.machine import FaultPlan, Machine, Partition, write_jsonl
from repro.strand import parse_program, run_query
from repro.strand.terms import deref


def assert_causally_sound(trace):
    """The satellite property: every non-root event's cause id exists in
    the trace, was recorded earlier (smaller eid), and did not happen
    later in virtual time.  Holes are only legal when events were
    dropped."""
    index = trace.by_id()
    for event in trace:
        if not event.cause:
            continue
        cause = index.get(event.cause)
        if cause is None:
            assert trace.dropped > 0, (
                f"event {event.eid} links to missing cause {event.cause} "
                "in a complete trace"
            )
            continue
        assert cause.eid < event.eid
        assert cause.time <= event.time, (event, cause)


def assert_chains_reach_roots(trace):
    index = trace.by_id()
    for event in trace:
        chain = trace.chain(event.eid)
        assert chain[-1].eid == event.eid
        root = chain[0]
        # A chain stops at a true root unless the walk hit a dropped hole.
        if root.cause and trace.dropped == 0:
            assert root.cause in index


class TestFaultFree:
    def test_tr1_trace_is_causally_sound(self):
        machine = Machine(4, seed=0, trace=True)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        assert len(machine.trace) > 0
        assert_causally_sound(machine.trace)
        assert_chains_reach_roots(machine.trace)

    def test_spawn_chain_walks_back_to_root_goal(self):
        machine = Machine(4, seed=0, trace=True)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        reduces = machine.trace.of_kind("reduce")
        chain = machine.trace.chain(reduces[-1].eid)
        assert chain[0].cause == 0
        assert chain[0].kind == "spawn"

    def test_send_bind_wake_chain_on_multiprocessor_run(self):
        machine = Machine(4, seed=0, trace=True)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        index = machine.trace.by_id()
        linked = [
            e for e in machine.trace.of_kind("wake")
            if e.cause and index[e.cause].kind == "bind"
        ]
        assert linked, "no wake event links back to a bind"
        # At least one of those binds was itself caused by a send or a
        # reduction context — i.e. the chain keeps going.
        assert any(index[e.cause].cause for e in linked)

    def test_timeout_links_to_arming_context(self):
        program = parse_program("arm(P) :- after(200, P) @ 2.")
        machine = Machine(4, seed=0, trace=True)
        result = run_query(program, "arm(P)", machine=machine)
        assert str(deref(result["P"])) == "timeout"
        (timeout,) = machine.trace.of_kind("timeout")
        index = machine.trace.by_id()
        assert timeout.cause in index
        # The probe binding is caused by the timeout event.
        caused = [e for e in machine.trace.of_kind("bind")
                  if e.cause == timeout.eid]
        assert caused
        assert_causally_sound(machine.trace)


class TestUnderFaults:
    def test_crash_is_a_root_and_its_faults_link_to_it(self):
        machine = Machine(4, seed=11, trace=True,
                          faults=FaultPlan(crash={3: 25.0}))
        result = supervised_reduce_tree(paper_example_tree(),
                                        eval_arith_node, machine=machine)
        assert result.value == 24
        (crash,) = machine.trace.of_kind("crash")
        assert crash.cause == 0
        victims = [e for e in machine.trace.of_kind("fault")
                   if e.cause == crash.eid]
        assert victims, "crash abandoned/orphaned nothing it could tag"
        assert all(e.detail.split(":")[0] in ("abandon", "orphan", "migrate")
                   for e in victims)
        assert_causally_sound(machine.trace)

    def test_partition_run_is_causally_sound(self):
        machine = Machine(
            4, seed=1, trace=True,
            faults=FaultPlan(partitions=(
                Partition(frozenset({3, 4}), 30.0, 90.0),
            )),
        )
        result = reliable_reduce_tree(paper_example_tree(),
                                      eval_arith_node, machine=machine)
        assert result.value == 24
        assert_causally_sound(machine.trace)
        assert_chains_reach_roots(machine.trace)

    def test_duplicate_run_is_causally_sound(self):
        machine = Machine(4, seed=2, trace=True,
                          faults=FaultPlan(duplicate_rate=0.3))
        result = reliable_reduce_tree(paper_example_tree(),
                                      eval_arith_node, machine=machine)
        assert result.value == 24
        assert_causally_sound(machine.trace)

    def test_migration_faults_link_to_the_crash(self):
        machine = Machine(4, seed=11, trace=True,
                          faults=FaultPlan(crash={3: 25.0}, migrate=True))
        supervised_reduce_tree(paper_example_tree(), eval_arith_node,
                               machine=machine)
        (crash,) = machine.trace.of_kind("crash")
        migrations = [e for e in machine.trace.of_kind("fault")
                      if e.detail.startswith("migrate:")]
        assert all(e.cause == crash.eid for e in migrations)
        assert_causally_sound(machine.trace)


class TestDeterminism:
    def _traced_run(self):
        machine = Machine(4, seed=5, trace=True)
        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             machine=machine, strategy="tr1")
        return result, machine

    def test_same_seed_traces_are_byte_identical(self, tmp_path):
        _, m1 = self._traced_run()
        _, m2 = self._traced_run()
        assert m1.trace.format() == m2.trace.format()
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(m1.trace, p1, seed=5)
        write_jsonl(m2.trace, p2, seed=5)
        assert p1.read_bytes() == p2.read_bytes()

    def test_eids_are_monotonic_and_unique(self):
        _, machine = self._traced_run()
        eids = [e.eid for e in machine.trace]
        assert eids == sorted(eids)
        assert len(eids) == len(set(eids))

    def test_tracing_does_not_perturb_the_computation(self):
        traced, m_on = self._traced_run()
        m_off = Machine(4, seed=5)
        plain = reduce_tree(paper_example_tree(), eval_arith_node,
                            machine=m_off, strategy="tr1")
        assert traced.value == plain.value
        assert traced.metrics.makespan == plain.metrics.makespan
        assert traced.metrics.reductions == plain.metrics.reductions
        assert len(m_off.trace) == 0

    def test_faulty_same_seed_traces_are_identical(self):
        def go():
            machine = Machine(4, seed=11, trace=True,
                              faults=FaultPlan(crash={3: 25.0}))
            supervised_reduce_tree(paper_example_tree(), eval_arith_node,
                                   machine=machine)
            return machine.trace.format()

        assert go() == go()


class TestRingMode:
    def test_ring_keeps_the_suffix_and_counts_evictions(self):
        from repro.machine import Trace

        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=64, ring=True)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        trace = machine.trace
        assert len(trace) == 64
        assert trace.dropped > 0
        assert trace.truncated
        # The retained window is the latest events, ids still monotonic.
        eids = [e.eid for e in trace]
        assert eids == sorted(eids)
        assert eids[-1] == trace.dropped + 64
        # chain() tolerates links into the evicted prefix.
        for event in trace:
            trace.chain(event.eid)

    def test_full_mode_keeps_the_prefix(self):
        from repro.machine import Trace

        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=64, ring=False)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        trace = machine.trace
        assert len(trace) == 64
        assert [e.eid for e in trace] == list(range(1, 65))
        assert trace.dropped > 0
