"""Trace export formats: JSONL round-trips losslessly, Chrome trace_event
output is valid and flow-balanced, and a TraceSink streams the full
history even when the in-memory trace is a bounded ring."""

import json

from repro.apps.arithmetic import eval_arith_node, paper_example_tree
from repro.core.api import reduce_tree
from repro.machine import Machine, Trace, TraceSink, read_jsonl, to_chrome, write_chrome, write_jsonl
from repro.machine.trace import TraceEvent
from repro.machine.tracefile import event_from_dict, event_to_dict


def traced_run(seed=0):
    machine = Machine(4, seed=seed, trace=True)
    reduce_tree(paper_example_tree(), eval_arith_node,
                machine=machine, strategy="tr1")
    return machine


class TestEventCodec:
    def test_round_trip_preserves_every_field(self):
        event = TraceEvent(12.5, 3, "reduce", "go", eid=7, cause=2,
                           motif="server[ports]", dur=1.0)
        assert event_from_dict(event_to_dict(event)) == event

    def test_defaults_are_omitted_for_compactness(self):
        event = TraceEvent(1.0, 1, "spawn", "go", eid=1)
        data = event_to_dict(event)
        assert "cause" not in data
        assert "motif" not in data
        assert "dur" not in data
        assert event_from_dict(data) == event


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        machine = traced_run()
        path = tmp_path / "run.jsonl"
        count = write_jsonl(machine.trace, path, processors=4, seed=0,
                            query="go")
        assert count == len(machine.trace)
        loaded, meta = read_jsonl(path)
        assert list(loaded) == list(machine.trace)
        assert loaded.format() == machine.trace.format()
        assert meta["processors"] == 4
        assert meta["query"] == "go"
        assert meta["format"] == "repro-trace"

    def test_dropped_count_survives_the_round_trip(self, tmp_path):
        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=32)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        assert machine.trace.dropped > 0
        path = tmp_path / "truncated.jsonl"
        write_jsonl(machine.trace, path)
        loaded, meta = read_jsonl(path)
        assert loaded.dropped == machine.trace.dropped
        assert loaded.truncated

    def test_header_is_first_line_and_events_are_one_per_line(self, tmp_path):
        machine = traced_run()
        path = tmp_path / "run.jsonl"
        write_jsonl(machine.trace, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-trace"
        assert len(lines) == 1 + len(machine.trace)
        for line in lines[1:]:
            json.loads(line)


class TestChrome:
    def test_output_is_valid_and_complete(self, tmp_path):
        machine = traced_run()
        path = tmp_path / "run.chrome.json"
        write_chrome(list(machine.trace), path, processors=4)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        # Process + per-thread metadata rows.
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert sum(e["name"] == "thread_name" for e in meta) == 4
        # Every reduce is a complete slice carrying its virtual duration.
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(machine.trace.of_kind("reduce"))
        assert all("dur" in e for e in slices)
        # Non-reduce machine events are instants.
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(machine.trace) - len(slices)

    def test_flow_arrows_come_in_balanced_pairs(self):
        machine = traced_run()
        doc = to_chrome(list(machine.trace), processors=4)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert starts, "expected causal flow arrows on a traced run"
        assert sorted(e["id"] for e in starts) == \
            sorted(e["id"] for e in finishes)

    def test_motif_tags_become_categories(self):
        machine = traced_run()
        doc = to_chrome(list(machine.trace), processors=4)
        cats = {e.get("cat") for e in doc["traceEvents"] if "cat" in e}
        assert "server[ports]" in cats
        assert "user" in cats


class TestSink:
    def test_sink_streams_full_history_past_a_ring_window(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        machine = Machine(4, seed=0)
        machine.trace = Trace(enabled=True, limit=64, ring=True)
        sink = TraceSink.open(path, processors=4)
        machine.trace.attach_sink(sink)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        sink.close()
        assert len(machine.trace) == 64  # memory holds only the suffix
        loaded, _ = read_jsonl(path)
        assert len(loaded) == sink.count
        assert len(loaded) == 64 + machine.trace.dropped
        # The streamed file is the complete, gap-free history.
        assert [e.eid for e in loaded] == list(range(1, sink.count + 1))

    def test_sink_context_manager_closes_the_stream(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        with TraceSink.open(path, processors=1) as sink:
            sink.write(TraceEvent(0.0, 1, "spawn", "go", eid=1))
        assert sink.stream.closed
        loaded, meta = read_jsonl(path)
        assert len(loaded) == 1
        assert meta["processors"] == 1
