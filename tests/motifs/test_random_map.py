"""Rand/Random motif tests (§3.3), including the Figure-5 staging."""

import pytest


from repro.errors import TransformError
from repro.motifs.random_map import RandTransformation, rand_motif, random_motif
from repro.motifs.tree_reduce1 import tree1_motif
from repro.strand.parser import parse_program
from repro.strand.terms import Atom, Cons, NIL, deref
from repro.transform.rewrite import goal_indicator, strip_placement

ANNOTATED = """
reduce(tree(V, L, R), Value) :-
    reduce(R, RV) @ random,
    reduce(L, LV),
    eval(V, LV, RV, Value).
reduce(leaf(X), Value) :- Value := X.
"""


class TestRandTransformation:
    def test_pragma_rewritten(self):
        out = RandTransformation().apply(parse_program(ANNOTATED))
        rule = out.procedure("reduce", 2).rules[0]
        goals = [goal_indicator(g) for g in rule.body]
        # The paper's exact expansion: nodes(N), rand_num(N,R), send(R,P).
        assert goals[:3] == [("nodes", 1), ("rand_num", 2), ("send", 2)]

    def test_no_pragma_left(self):
        out = RandTransformation().apply(parse_program(ANNOTATED))
        for rule in out.rules():
            for goal in rule.body:
                _, where = strip_placement(goal)
                assert where is None or deref(where) is not Atom("random")

    def test_message_is_original_goal(self):
        out = RandTransformation().apply(parse_program(ANNOTATED))
        rule = out.procedure("reduce", 2).rules[0]
        send = rule.body[2]
        message = send.args[1]
        assert deref(message).indicator == ("reduce", 2)

    def test_server_rules_generated(self):
        out = RandTransformation().apply(parse_program(ANNOTATED))
        server = out.procedure("server", 1)
        assert server is not None
        # dispatch rule for reduce/2 + halt + end-of-stream
        assert len(server.rules) == 3

    def test_dispatch_rule_shape(self):
        out = RandTransformation().apply(parse_program(ANNOTATED))
        dispatch = out.procedure("server", 1).rules[0]
        pattern = deref(dispatch.head.args[0])
        assert isinstance(pattern, Cons)
        assert deref(pattern.head).indicator == ("reduce", 2)
        body_calls = [goal_indicator(g) for g in dispatch.body]
        assert body_calls == [("reduce", 2), ("server", 1)]

    def test_halt_and_eos_rules(self):
        out = RandTransformation().apply(parse_program(ANNOTATED))
        heads = [deref(r.head.args[0]) for r in out.procedure("server", 1).rules]
        assert any(isinstance(h, Cons) and deref(h.head) is Atom("halt") for h in heads)
        assert any(h is NIL for h in heads)

    def test_extra_entries(self):
        out = RandTransformation(extra_entries=(("boot", 2),)).apply(
            parse_program(ANNOTATED)
        )
        patterns = [
            deref(r.head.args[0]) for r in out.procedure("server", 1).rules
        ]
        indicators = [
            deref(p.head).indicator
            for p in patterns
            if isinstance(p, Cons) and not isinstance(deref(p.head), Atom)
        ]
        assert ("boot", 2) in indicators

    def test_no_pragma_no_entries_rejected(self):
        with pytest.raises(TransformError):
            RandTransformation().apply(parse_program("p :- q.\nq."))

    def test_annotated_twice_single_dispatch_rule(self):
        src = """
        p :- q(1) @ random, q(2) @ random.
        q(_).
        """
        out = RandTransformation().apply(parse_program(src))
        dispatch_rules = [
            r for r in out.procedure("server", 1).rules
            if isinstance(deref(r.head.args[0]), Cons)
            and not isinstance(deref(deref(r.head.args[0]).head), Atom)
        ]
        assert len(dispatch_rules) == 1


class TestFigure5Staging:
    """The three staged outputs of Tree-Reduce-1 (Figure 5/6)."""

    def stages(self):
        from repro.core.motif import ComposedMotif
        from repro.motifs.server import server_motif

        eval_program = parse_program(
            "eval(add, L, R, V) :- V := L + R.", name="eval"
        )
        motif = ComposedMotif([tree1_motif(), rand_motif(), server_motif()])
        return motif.apply_staged(eval_program)

    def test_stage1_tree1_output(self):
        stage1 = self.stages()[0].program
        # The 4-line annotated reduce plus the user's eval.
        assert ("reduce", 2) in stage1
        assert ("eval", 4) in stage1
        rule = stage1.procedure("reduce", 2).rules[0]
        _, where = strip_placement(rule.body[0])
        assert deref(where) is Atom("random")

    def test_stage2_rand_output(self):
        stage2 = self.stages()[1].program
        assert ("server", 1) in stage2
        rule = stage2.procedure("reduce", 2).rules[0]
        goals = [goal_indicator(g) for g in rule.body]
        assert ("send", 2) in goals

    def test_stage3_server_output(self):
        stage3 = self.stages()[2].program
        # Figure 5's final section: reduce/3, server/2, library code.
        assert ("reduce", 3) in stage3
        assert ("server", 2) in stage3
        assert ("create", 2) in stage3
        rule = stage3.procedure("reduce", 3).rules[0]
        goals = [goal_indicator(g) for g in rule.body]
        assert ("length", 2) in goals
        assert ("distribute", 3) in goals

    def test_stage3_server_rule_matches_figure5(self):
        stage3 = self.stages()[2].program
        dispatch = stage3.procedure("server", 2).rules[0]
        # server([reduce(T,V) | In], DT) :- reduce(T,V,DT), server(In,DT).
        pattern = deref(dispatch.head.args[0])
        assert deref(pattern.head).indicator == ("reduce", 2)
        body_calls = [goal_indicator(g) for g in dispatch.body]
        assert body_calls == [("reduce", 3), ("server", 2)]


class TestRandomComposition:
    def test_random_is_server_compose_rand(self):
        motif = random_motif()
        names = [m.name for m in motif.stages()]
        assert names[0] == "rand"
        assert names[1].startswith("server")

    def test_rand_motif_has_empty_library(self):
        assert len(rand_motif().library) == 0
