"""Tree-Reduce-1 and static-partition tests (§3.1, §3.4), with the central
correctness property: every strategy computes the sequential fold."""

from hypothesis import given, settings, strategies as st

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.apps.trees import sequential_reduce, tree_size
from repro.core.api import reduce_tree
from repro.motifs.tree_reduce1 import TREE1_LIBRARY, tree_reduce_1
from repro.strand.parser import parse_program


class TestTree1Library:
    def test_is_the_paper_five_liner(self):
        program = parse_program(TREE1_LIBRARY)
        reduce = program.procedure("reduce", 2)
        assert len(reduce.rules) == 2
        assert program.rule_count() == 2

    def test_stack_composition_order(self):
        motif = tree_reduce_1()
        names = [m.name for m in motif.stages()]
        assert names[0] == "tree1"
        assert names[1] == "termination"
        assert names[2] == "rand"
        assert names[3].startswith("server")

    def test_stack_without_termination(self):
        names = [m.name for m in tree_reduce_1(termination=False).stages()]
        assert "termination" not in names


class TestCorrectnessFixed:
    def test_various_shapes(self):
        for shape in ("random", "balanced", "skewed"):
            tree = arithmetic_tree(12, seed=4, shape=shape)
            expected = sequential_reduce(tree, eval_arith_node)
            got = reduce_tree(tree, eval_arith_node, processors=4,
                              strategy="tr1", seed=1).value
            assert got == expected, shape

    def test_two_leaves(self):
        tree = arithmetic_tree(2, seed=0)
        expected = sequential_reduce(tree, eval_arith_node)
        assert reduce_tree(tree, eval_arith_node, processors=2,
                           strategy="tr1").value == expected

    def test_more_processors_than_nodes(self):
        tree = arithmetic_tree(3, seed=1)
        expected = sequential_reduce(tree, eval_arith_node)
        assert reduce_tree(tree, eval_arith_node, processors=16,
                           strategy="tr1").value == expected

    def test_merge_server_library_variant(self):
        tree = arithmetic_tree(8, seed=2)
        expected = sequential_reduce(tree, eval_arith_node)
        got = reduce_tree(tree, eval_arith_node, processors=3,
                          strategy="tr1", server_library="merge").value
        assert got == expected

    def test_static_strategy(self):
        for shape in ("random", "balanced", "skewed"):
            tree = arithmetic_tree(10, seed=7, shape=shape)
            expected = sequential_reduce(tree, eval_arith_node)
            got = reduce_tree(tree, eval_arith_node, processors=4,
                              strategy="static").value
            assert got == expected, shape

    def test_static_single_processor(self):
        tree = arithmetic_tree(6, seed=3)
        expected = sequential_reduce(tree, eval_arith_node)
        assert reduce_tree(tree, eval_arith_node, processors=1,
                           strategy="static").value == expected


# The central property (experiment E2's backbone): for random trees, any
# processor count, any seed, any topology — parallel reduction equals the
# sequential fold.
@given(
    leaves=st.integers(min_value=2, max_value=14),
    tree_seed=st.integers(min_value=0, max_value=10**6),
    processors=st.integers(min_value=1, max_value=8),
    machine_seed=st.integers(min_value=0, max_value=10**6),
    strategy=st.sampled_from(["tr1", "static"]),
)
@settings(max_examples=30, deadline=None)
def test_reduction_equals_fold_property(leaves, tree_seed, processors,
                                        machine_seed, strategy):
    tree = arithmetic_tree(leaves, seed=tree_seed)
    expected = sequential_reduce(tree, eval_arith_node)
    result = reduce_tree(tree, eval_arith_node, processors=processors,
                         strategy=strategy, seed=machine_seed)
    assert result.value == expected


class TestSchedulingBehaviour:
    def test_work_spreads_across_processors(self):
        tree = arithmetic_tree(64, seed=5)
        result = reduce_tree(tree, eval_arith_node, processors=4,
                             strategy="tr1", seed=2)
        busy_procs = sum(1 for b in result.metrics.busy if b > 0)
        assert busy_procs == 4

    def test_eval_runs_once_per_internal_node(self):
        tree = arithmetic_tree(20, seed=6)
        internal = tree_size(tree) - 20
        result = reduce_tree(tree, eval_arith_node, processors=4,
                             strategy="tr1", seed=0)
        assert result.metrics.tasks_started == internal

    def test_different_seeds_different_schedules(self):
        tree = arithmetic_tree(32, seed=8)
        a = reduce_tree(tree, eval_arith_node, processors=4,
                        strategy="tr1", seed=1).metrics
        b = reduce_tree(tree, eval_arith_node, processors=4,
                        strategy="tr1", seed=2).metrics
        assert a.busy != b.busy  # random mapping differs

    def test_same_seed_reproducible(self):
        tree = arithmetic_tree(32, seed=8)
        a = reduce_tree(tree, eval_arith_node, processors=4,
                        strategy="tr1", seed=3).metrics
        b = reduce_tree(tree, eval_arith_node, processors=4,
                        strategy="tr1", seed=3).metrics
        assert a.busy == b.busy
        assert a.makespan == b.makespan
