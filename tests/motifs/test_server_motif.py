"""Server motif tests (§3.2): transformation steps and both libraries."""

import pytest

from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.server import (
    MERGE_LIBRARY,
    PORT_LIBRARY,
    server_motif,
    server_transformation,
)
from repro.strand.parser import parse_program
from repro.strand.terms import Struct, deref
from repro.transform.rewrite import goal_indicator

# A user server that echoes stamped messages back onto a collector variable
# owned by the sender, then halts after a fixed count.
ECHO_SERVER = """
server([hello(From, Reply) | In]) :-
    Reply := hi(From),
    server(In).
server([fanout(K) | In]) :-
    spread(K),
    server(In).
server([halt | _]).
server([]).

spread(K) :- K > 0 |
    nodes(N),
    W := K mod N + 1,
    send(W, hello(K, _)),
    K1 := K - 1,
    spread(K1).
spread(0) :- halt.
"""


class TestServerTransformation:
    def test_threads_server_and_handlers(self):
        out = server_transformation().apply(parse_program(ECHO_SERVER))
        assert ("server", 2) in out
        assert ("spread", 2) in out

    def test_send_becomes_distribute(self):
        out = server_transformation().apply(parse_program(ECHO_SERVER))
        goals = [
            goal_indicator(g)
            for rule in out.rules()
            for g in rule.body
        ]
        assert ("distribute", 3) in goals
        assert ("send", 2) not in goals

    def test_nodes_becomes_length(self):
        out = server_transformation().apply(parse_program(ECHO_SERVER))
        goals = [goal_indicator(g) for r in out.rules() for g in r.body]
        assert ("length", 2) in goals
        assert ("nodes", 1) not in goals

    def test_halt_becomes_broadcast(self):
        out = server_transformation().apply(parse_program(ECHO_SERVER))
        goals = [goal_indicator(g) for r in out.rules() for g in r.body]
        assert ("broadcast", 2) in goals
        assert ("halt", 0) not in goals

    def test_server_threaded_even_without_ops(self):
        # A server that uses no operations still becomes server/2 so the
        # library can invoke it.
        out = server_transformation().apply(parse_program("server([])."))
        assert ("server", 2) in out

    def test_message_patterns_untouched(self):
        out = server_transformation().apply(parse_program(ECHO_SERVER))
        rule = out.procedure("server", 2).rules[0]
        message = deref(rule.head.args[0]).head  # hello(From, Reply)
        assert deref(message).indicator == ("hello", 2)


def run_echo(library: str, processors: int, count: int, seed: int = 0):
    motif = server_motif(library)
    applied = motif.apply(parse_program(ECHO_SERVER, name="echo"))
    machine = Machine(processors, seed=seed)
    goal = Struct("create", (processors, Struct("fanout", (count,))))
    return run_applied(applied, goal, machine)


class TestPortLibrary:
    def test_runs_and_halts(self):
        engine, metrics = run_echo("ports", 4, 10)
        assert metrics.reductions > 0

    def test_messages_cross_processors(self):
        _, metrics = run_echo("ports", 4, 12)
        assert metrics.sends > 0

    def test_single_server(self):
        run_echo("ports", 1, 5)

    def test_library_source_is_strand(self):
        program = parse_program(PORT_LIBRARY)
        assert ("create", 2) in program
        assert ("broadcast", 2) in program


class TestMergeLibrary:
    def test_runs_and_halts(self):
        engine, metrics = run_echo("merge", 4, 10)
        assert metrics.reductions > 0

    def test_same_behaviour_as_ports(self):
        # Both libraries implement the same abstraction; the echo workload
        # completes under each.
        for lib in ("ports", "merge"):
            engine, metrics = run_echo(lib, 3, 9, seed=2)
            assert metrics.reductions > 0

    def test_merge_network_costs_more_reductions(self):
        _, ports = run_echo("ports", 4, 12, seed=1)
        _, merge = run_echo("merge", 4, 12, seed=1)
        assert merge.reductions > ports.reductions

    def test_library_source_is_strand(self):
        program = parse_program(MERGE_LIBRARY)
        assert ("create", 2) in program
        assert ("merge_all", 2) in program

    def test_unknown_library_rejected(self):
        with pytest.raises(ValueError):
            server_motif("carrier-pigeon")
