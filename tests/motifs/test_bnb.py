"""Branch-and-bound motif tests (knapsack)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.knapsack import (
    KnapsackProblem,
    random_knapsack,
    register_knapsack,
    root_node,
    solve_reference,
)
from repro.core.api import run_applied
from repro.errors import ReproError
from repro.machine import Machine
from repro.motifs.bnb import bnb_stack
from repro.strand.foreign import from_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Var, deref


def run_bnb(problem, processors=4, seed=1, prune=True):
    applied = bnb_stack().apply(Program(name="knapsack"))
    applied.foreign_setup.append(
        lambda reg: register_knapsack(reg, problem, prune=prune)
    )
    applied.user_names.update({"bound_bb", "leaf_bb", "value_bb", "expand_bb"})
    sol = Var("Sol")
    goal = Struct("create", (processors,
                             Struct("binit", (from_python(root_node()), sol))))
    _, metrics = run_applied(applied, goal, Machine(processors, seed=seed),
                             watched=[("step", 5)])
    return deref(sol), metrics


class TestKnapsackApp:
    def test_reference_solver(self):
        problem = KnapsackProblem((6, 5, 4), (3, 2, 4), 5)
        assert solve_reference(problem) == 11  # items 0+1

    def test_reference_zero_capacity_items(self):
        problem = KnapsackProblem((10,), (20,), 5)
        assert solve_reference(problem) == 0

    def test_random_instances_sorted_by_density(self):
        problem = random_knapsack(10, seed=3)
        densities = [v / w for v, w in zip(problem.values, problem.weights)]
        assert densities == sorted(densities, reverse=True)

    def test_invalid_instances_rejected(self):
        with pytest.raises(ReproError):
            KnapsackProblem((1, 2), (1,), 5)
        with pytest.raises(ReproError):
            KnapsackProblem((1,), (0,), 5)


class TestBranchAndBound:
    def test_finds_optimum(self):
        problem = random_knapsack(10, seed=2)
        best, _ = run_bnb(problem)
        assert best == solve_reference(problem)

    def test_single_processor(self):
        problem = random_knapsack(8, seed=5)
        best, _ = run_bnb(problem, processors=1)
        assert best == solve_reference(problem)

    def test_no_prune_ablation_also_correct(self):
        problem = random_knapsack(8, seed=7)
        best, _ = run_bnb(problem, prune=False)
        assert best == solve_reference(problem)

    def test_pruning_reduces_explored_nodes(self):
        problem = random_knapsack(11, seed=4)
        _, pruned = run_bnb(problem, prune=True)
        _, full = run_bnb(problem, prune=False)
        assert pruned.tasks_started < full.tasks_started

    @given(items=st.integers(3, 9), seed=st.integers(0, 500),
           processors=st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_optimum_property(self, items, seed, processors):
        problem = random_knapsack(items, seed=seed)
        best, _ = run_bnb(problem, processors=processors, seed=seed)
        assert best == solve_reference(problem)
