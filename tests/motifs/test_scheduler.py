"""Scheduler motif tests (§1): flat and hierarchical manager/worker."""

import pytest

from repro.apps.taskbag import TASKBAG_SOURCE, expected_sum, register_taskbag, skewed_cost
from repro.core.api import run_applied
from repro.errors import TransformError
from repro.machine import Machine
from repro.motifs.scheduler import TaskSchedule, scheduled_application
from repro.strand.parser import parse_program
from repro.strand.terms import Struct, Var, deref
from repro.transform.rewrite import goal_indicator


def run_taskbag(tasks: int, processors: int, *, hierarchical=False,
                groups=2, seed=0, cost=10.0):
    app = parse_program(TASKBAG_SOURCE, name="taskbag")
    motif = scheduled_application(
        entry=("main", 2),
        hierarchical=hierarchical,
        outputs={("work", 2): 1},
        # The circuit must wait for each (foreign) task's output, or the
        # watch process halts the scheduler before queued tasks dispatch.
        sync_outputs={("work", 2): 1},
    )
    applied = motif.apply(app)
    applied.foreign_setup.append(lambda reg: register_taskbag(reg, cost=cost))
    applied.user_names.add("work")
    machine = Machine(processors, seed=seed)
    sum_var = Var("Sum")
    boot = Struct("boot", (tasks, sum_var, Var("Done")))
    if hierarchical:
        goal = Struct("create", (processors, Struct("hinit", (groups, boot))))
    else:
        goal = Struct("create", (processors, Struct("minit", (boot,))))
    engine, metrics = run_applied(applied, goal, machine)
    return deref(sum_var), metrics


class TestTaskScheduleTransformation:
    def test_task_pragma_rewritten(self):
        out = TaskSchedule(outputs={("work", 2): 1}).apply(
            parse_program(TASKBAG_SOURCE)
        )
        gen = out.procedure("gen", 2).rules[0]
        goals = [goal_indicator(g) for g in gen.body]
        assert ("send", 2) in goals

    def test_run_task_rules_generated(self):
        out = TaskSchedule(outputs={("work", 2): 1}).apply(
            parse_program(TASKBAG_SOURCE)
        )
        assert ("run_task", 2) in out

    def test_hierarchical_run_task_arity(self):
        out = TaskSchedule(outputs={("work", 2): 1}, hierarchical=True).apply(
            parse_program(TASKBAG_SOURCE)
        )
        assert ("run_task", 3) in out

    def test_no_tasks_rejected(self):
        with pytest.raises(TransformError):
            TaskSchedule().apply(parse_program("p :- q.\nq."))

    def test_bad_output_position(self):
        with pytest.raises(TransformError):
            TaskSchedule(outputs={("work", 2): 9}).apply(
                parse_program(TASKBAG_SOURCE)
            )


class TestFlatScheduler:
    def test_correct_sum(self):
        value, _ = run_taskbag(12, 4)
        assert value == expected_sum(12)

    def test_single_processor(self):
        value, _ = run_taskbag(6, 1)
        assert value == expected_sum(6)

    def test_more_tasks_than_workers(self):
        value, _ = run_taskbag(30, 3)
        assert value == expected_sum(30)

    def test_work_distributed(self):
        _, metrics = run_taskbag(24, 4, cost=50.0)
        workers_used = sum(1 for b in metrics.busy if b > 40)
        assert workers_used >= 3

    def test_skewed_costs_still_correct(self):
        value, _ = run_taskbag(16, 4, cost=skewed_cost(seed=3))
        assert value == expected_sum(16)


class TestHierarchicalScheduler:
    def test_correct_sum(self):
        value, _ = run_taskbag(12, 8, hierarchical=True, groups=2)
        assert value == expected_sum(12)

    def test_various_group_counts(self):
        for groups in (1, 2, 3):
            value, _ = run_taskbag(10, 7, hierarchical=True, groups=groups)
            assert value == expected_sum(10), groups

    def test_manager_relief(self):
        """The paper's point: extra hierarchy levels relieve the manager.

        Compare server 1's share of scheduling messages (sends) under the
        flat and hierarchical schedulers for the same workload.
        """
        tasks, procs = 40, 9
        _, flat = run_taskbag(tasks, procs, cost=30.0)
        _, hier = run_taskbag(tasks, procs, hierarchical=True, groups=4,
                              cost=30.0)
        # Messages handled *by* the manager processor (sent from it):
        flat_mgr = flat.busy[0]
        hier_mgr = hier.busy[0]
        assert hier_mgr < flat_mgr


class TestDependencyScheduling:
    """The Schedule-package discipline (§1): tasks declare their data
    dependencies; a task is submitted only when its inputs are known, so
    dependent tasks never deadlock the worker pool."""

    APP = """
    tsum(leaf(X), Out) :- Out := X.
    tsum(tree(L, R), Out) :-
        combine(O1, O2, Out) @ task,
        tsum(L, O1),
        tsum(R, O2).
    """

    def run_tree_sum(self, depth: int, processors: int, seed: int = 1):
        from repro.strand.parser import parse_program as parse

        app = parse(self.APP, name="tsum")
        motif = scheduled_application(
            entry=("tsum", 2),
            outputs={("combine", 3): 2},
            sync_outputs={("combine", 3): 2},
            dependencies={("combine", 3): (0, 1)},
        )
        applied = motif.apply(app)
        applied.foreign_setup.append(
            lambda reg: reg.register("combine", 3, lambda a, b: a + b, cost=15.0)
        )
        applied.user_names.add("combine")

        def mk(d):
            if d == 0:
                return Struct("leaf", (1,))
            return Struct("tree", (mk(d - 1), mk(d - 1)))

        out = Var("Out")
        goal = Struct(
            "create",
            (processors,
             Struct("minit", (Struct("boot", (mk(depth), out, Var("D"))),))),
        )
        _, metrics = run_applied(applied, goal, Machine(processors, seed=seed))
        return deref(out), metrics

    def test_dependent_tasks_single_worker(self):
        # Without gating this deadlocks: the combine tasks would hold the
        # only worker while waiting for their children.
        value, _ = self.run_tree_sum(depth=4, processors=1)
        assert value == 16

    def test_dependent_tasks_parallel(self):
        for processors in (2, 4, 8):
            value, _ = self.run_tree_sum(depth=5, processors=processors)
            assert value == 32

    def test_gate_rule_generated(self):
        out = TaskSchedule(
            outputs={("combine", 3): 2},
            dependencies={("combine", 3): (0, 1)},
        ).apply(parse_program(self.APP))
        gate = out.procedure("submit_combine_when_ready", 3)
        assert gate is not None
        assert len(gate.rules[0].guards) == 2  # one known/1 per dependency

    def test_parallelism_helps(self):
        _, one = self.run_tree_sum(depth=5, processors=1)
        _, four = self.run_tree_sum(depth=5, processors=4)
        assert four.makespan < one.makespan
