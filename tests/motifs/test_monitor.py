"""Monitor (serializer) motif tests — atomic shared state."""

from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.monitor import monitor_motif
from repro.strand.parser import parse_program

from repro.strand.terms import Atom, Struct, Var, deref


def run_with_driver(driver_source: str, query_goal: Struct, processors=4,
                    seed=0):
    applied = monitor_motif().apply(parse_program(driver_source, name="driver"))
    machine = Machine(processors, seed=seed)
    engine, metrics = run_applied(applied, query_goal, machine)
    return engine, metrics


class TestCounter:
    DRIVER = """
    go(N, Final) :-
        new_monitor(0, Counter),
        spawn_incrs(N, Counter, Replies),
        wait_all(Replies, Counter, Final).
    spawn_incrs(N, Counter, Rs) :- N > 0 |
        hammer(Counter, R) @ N,
        Rs := [R | Rs1],
        N1 := N - 1,
        spawn_incrs(N1, Counter, Rs1).
    spawn_incrs(0, _, Rs) :- Rs := [].
    hammer(Counter, R) :-
        send_port(Counter, req(incr, R)).
    wait_all([R | Rs], Counter, Final) :- known(R) | wait_all(Rs, Counter, Final).
    wait_all([], Counter, Final) :-
        send_port(Counter, req(get, Final)).
    """

    def test_concurrent_increments_are_atomic(self):
        final = Var("Final")
        goal = Struct("go", (10, final))
        run_with_driver(self.DRIVER, goal, processors=5, seed=2)
        assert deref(final) == 10

    def test_single_processor(self):
        final = Var("Final")
        run_with_driver(self.DRIVER, Struct("go", (4, final)), processors=1)
        assert deref(final) == 4

    def test_replies_are_distinct_values(self):
        # Atomicity means the N replies are exactly 1..N in some order.
        source = self.DRIVER + """
        collect([R | Rs], Acc, Out) :- known(R) |
            collect(Rs, [R | Acc], Out).
        collect([], Acc, Out) :- Out := Acc.
        go2(N, Out) :-
            new_monitor(0, Counter),
            spawn_incrs(N, Counter, Replies),
            collect(Replies, [], Out).
        """
        out = Var("Out")
        engine, _ = run_with_driver(source, Struct("go2", (6, out)),
                                    processors=3, seed=7)
        from repro.strand.terms import iter_list

        values = sorted(deref(v) for v in iter_list(deref(out)))
        assert values == [1, 2, 3, 4, 5, 6]


class TestLock:
    DRIVER = """
    go(A, B) :-
        new_monitor(0, Lock),
        send_port(Lock, req(test_and_set, A)),
        second(A, Lock, B).
    second(A, Lock, B) :- known(A) |
        send_port(Lock, req(test_and_set, B)).
    """

    def test_second_acquire_busy(self):
        a, b = Var("A"), Var("B")
        run_with_driver(self.DRIVER, Struct("go", (a, b)))
        assert deref(a) is Atom("got")
        assert deref(b) is Atom("busy")

    def test_release_frees(self):
        source = self.DRIVER + """
        go3(A, B, C) :-
            new_monitor(0, Lock),
            send_port(Lock, req(test_and_set, A)),
            rel(A, Lock, B, C).
        rel(A, Lock, B, C) :- known(A) |
            send_port(Lock, req(release, B)),
            retry(B, Lock, C).
        retry(B, Lock, C) :- known(B) |
            send_port(Lock, req(test_and_set, C)).
        """
        a, b, c = Var("A"), Var("B"), Var("C")
        run_with_driver(source, Struct("go3", (a, b, c)))
        assert deref(a) is Atom("got")
        assert deref(c) is Atom("got")


class TestPutGet:
    def test_put_returns_old_state(self):
        source = """
        go(Old, New) :-
            new_monitor(init, M),
            send_port(M, req(put(fresh), Old)),
            after(Old, M, New).
        after(Old, M, New) :- known(Old) |
            send_port(M, req(get, New)).
        """
        old, new = Var("Old"), Var("New")
        run_with_driver(source, Struct("go", (old, new)))
        assert deref(old) is Atom("init")
        assert deref(new) is Atom("fresh")

    def test_user_defined_operation(self):
        # Users extend the monitor by adding user_handle/4 rules.
        source = """
        user_handle(double, State, State1, Reply) :-
            State1 := State * 2,
            Reply := State1.
        go(V) :-
            new_monitor(3, M),
            send_port(M, req(double, V)).
        """
        v = Var("V")
        run_with_driver(source, Struct("go", (v,)))
        assert deref(v) == 6
