"""Short-circuit termination motif tests (§3.3)."""

import pytest

from repro.errors import TransformError
from repro.motifs.termination import ShortCircuit
from repro.strand.parser import parse_program
from repro.transform.rewrite import goal_indicator

APP = """
reduce(tree(V, L, R), Value) :-
    reduce(R, RV) @ random,
    reduce(L, LV),
    eval(V, LV, RV, Value).
reduce(leaf(X), Value) :- Value := X.
"""


def transform(**kw):
    params = dict(entry=("reduce", 2), sync_outputs={("eval", 4): 3})
    params.update(kw)
    return ShortCircuit(**params).apply(parse_program(APP))


class TestThreading:
    def test_entry_gains_two_arguments(self):
        out = transform()
        assert ("reduce", 4) in out
        assert ("reduce", 2) not in out

    def test_leaf_rule_closes_segment(self):
        out = transform()
        leaf_rule = out.procedure("reduce", 4).rules[1]
        goals = [goal_indicator(g) for g in leaf_rule.body]
        assert goals[-1] == (":=", 2)
        # The closing assignment connects L directly to R.
        from repro.strand.terms import deref

        closing = leaf_rule.body[-1]
        assert deref(closing.args[0]) is deref(leaf_rule.head.args[2])
        assert deref(closing.args[1]) is deref(leaf_rule.head.args[3])

    def test_internal_rule_splits_segment(self):
        out = transform()
        rule = out.procedure("reduce", 4).rules[0]
        goals = [goal_indicator(g) for g in rule.body]
        # Two threaded reduce calls plus a wait_done for the eval output.
        assert goals.count(("reduce", 4)) == 2
        assert ("wait_done", 3) in goals

    def test_placement_preserved_through_threading(self):
        from repro.strand.terms import Atom, deref
        from repro.transform.rewrite import strip_placement

        out = transform()
        rule = out.procedure("reduce", 4).rules[0]
        placed = [g for g in rule.body
                  if strip_placement(g)[1] is not None]
        assert len(placed) == 1
        inner, where = strip_placement(placed[0])
        assert inner.indicator == ("reduce", 4)
        assert deref(where) is Atom("random")

    def test_chain_is_connected(self):
        # L of the first segment is the head's L; R of the last is the
        # head's R; middles are shared.
        from repro.strand.terms import deref
        from repro.transform.rewrite import strip_placement

        out = transform()
        rule = out.procedure("reduce", 4).rules[0]
        head_l, head_r = rule.head.args[2], rule.head.args[3]
        seg_goals = []
        for g in rule.body:
            inner, _ = strip_placement(g)
            if inner.indicator == ("reduce", 4):
                seg_goals.append((inner.args[2], inner.args[3]))
            if inner.indicator == ("wait_done", 3):
                seg_goals.append((inner.args[1], inner.args[2]))
        assert deref(seg_goals[0][0]) is deref(head_l)
        assert deref(seg_goals[-1][1]) is deref(head_r)
        for (_, right), (left, _) in zip(seg_goals, seg_goals[1:]):
            assert deref(right) is deref(left)

    def test_support_rules_added(self):
        out = transform()
        assert ("boot", 3) in out  # entry arity 2 + Done
        assert ("watch", 1) in out
        assert ("wait_done", 3) in out
        assert ("server", 1) in out

    def test_server_rule_optional(self):
        out = transform(add_server_rule=False)
        assert ("server", 1) not in out

    def test_watch_invokes_halt(self):
        out = transform()
        watch = out.procedure("watch", 1).rules[0]
        assert [goal_indicator(g) for g in watch.body] == [("halt", 0)]
        assert len(watch.guards) == 1

    def test_explicit_procs_subset(self):
        out = ShortCircuit(entry=("reduce", 2), procs={("reduce", 2)}).apply(
            parse_program(APP)
        )
        assert ("reduce", 4) in out

    def test_missing_entry_rejected(self):
        with pytest.raises(TransformError):
            ShortCircuit(entry=("nope", 1)).apply(parse_program(APP))


class TestEndToEnd:
    def test_tr1_with_termination_halts_itself(self):
        """With the circuit, the program halts its own servers: no
        quiescence port-closing needed."""
        from repro.apps.arithmetic import eval_arith_node, paper_example_tree
        from repro.core.api import reduce_tree

        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=3, strategy="tr1", termination=True)
        assert result.value == 24
        assert not result.engine._ports_closed  # halt did the job

    def test_without_termination_relies_on_quiescence(self):
        from repro.apps.arithmetic import eval_arith_node, paper_example_tree
        from repro.core.api import reduce_tree

        result = reduce_tree(paper_example_tree(), eval_arith_node,
                             processors=3, strategy="tr1", termination=False)
        assert result.value == 24
        assert result.engine._ports_closed
