"""The Reliable motif: transformation shape, protocol behaviour under
drops/partitions/duplicates, composition with Supervise, and same-seed
replay of the extended failure model."""

import pytest

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.core.api import reduce_tree, reliable_reduce_tree, supervised_reduce_tree
from repro.errors import DeadlockError, TransformError
from repro.machine import FaultPlan, Machine, Partition
from repro.motifs.reliable import ReliableTransformation, reliable_motif
from repro.strand.parser import parse_program
from repro.strand.terms import deref


DISPATCHED = """
main(X, Out) :- send(2, work(X, Out)).
work(X, Y) :- Y := X * 2.
server([work(X, Y)|In]) :- work(X, Y), server(In).
"""


def _body_indicators(program, name, arity):
    return [
        [deref(goal).indicator for goal in rule.body]
        for rule in program.procedure(name, arity).rules
    ]


class TestTransformation:
    def test_sends_rewritten_and_dispatch_twinned(self):
        out = ReliableTransformation().apply(parse_program(DISPATCHED))
        # send(2, work(..)) became rsend(2, work(..)).
        (main_body,) = _body_indicators(out, "main", 2)
        assert main_body == [("rsend", 2)]
        # The dispatch rule kept its original form and gained an
        # rmsg-accepting twin that acks/dedups before dispatching.
        server_rules = out.procedure("server", 1).rules
        assert len(server_rules) == 2
        twin = server_rules[1]
        msg = deref(deref(twin.head.args[0]).head)
        assert msg.indicator == ("rmsg", 3)
        twin_goals = [deref(goal).indicator for goal in twin.body]
        assert twin_goals == [
            ("rel_accept", 2),
            ("rel_recv_work_2", 4),
            ("server", 1),
        ]
        # Helper rules: dispatch on `new`, ack-only on `dup`.
        helpers = _body_indicators(out, "rel_recv_work_2", 4)
        assert helpers == [
            [("rel_ack", 1), ("work", 2)],
            [("rel_ack", 1)],
        ]

    def test_refuses_a_program_without_dispatch_rules(self):
        program = parse_program("main(X) :- send(2, foo(X)).")
        with pytest.raises(TransformError, match="no server/1 dispatch rules"):
            ReliableTransformation().apply(program)

    def test_refuses_a_send_nobody_would_unwrap(self):
        program = parse_program(
            "main(X) :- send(2, other(X)).\n"
            "server([work(X, Y)|In]) :- work(X, Y), server(In)."
        )
        with pytest.raises(TransformError, match="other/1"):
            ReliableTransformation().apply(program)

    def test_atom_payloads_stay_raw(self):
        # `send(N, halt)` is the broadcast shutdown convention: control
        # atoms bypass the ack protocol.
        out = ReliableTransformation().apply(
            parse_program(DISPATCHED + "stop(N) :- send(N, halt).")
        )
        (stop_body,) = _body_indicators(out, "stop", 1)
        assert stop_body == [("send", 2)]

    def test_motif_parameters_validated(self):
        with pytest.raises(ValueError):
            reliable_motif(retries=-1)
        with pytest.raises(ValueError):
            reliable_motif(timeout=0.0)
        with pytest.raises(ValueError):
            reliable_motif(timeout=50.0, max_timeout=10.0)


TREE = arithmetic_tree(16, seed=3)
EXPECTED = 5781  # == reduce_tree(TREE, eval_arith_node).value, fault-free


class TestReliableDelivery:
    def test_fault_free_run_matches_plain_tree_reduce(self):
        result = reliable_reduce_tree(
            TREE, eval_arith_node, machine=Machine(4, seed=0)
        )
        assert result.value == EXPECTED
        # Every dispatched message was acked on first post; the protocol
        # never had to retransmit or suppress anything.
        assert result.metrics.rel_acks == 15
        assert result.metrics.rel_retransmits == 0
        assert result.metrics.rel_duplicates_suppressed == 0
        assert result.metrics.rel_unreachable == 0
        assert "reliable(" in result.metrics.summary()

    @pytest.mark.parametrize("seed", [3, 5])
    def test_completes_under_drops_where_bare_stack_deadlocks(self, seed):
        plan = FaultPlan(drop_rate=0.2)
        result = reliable_reduce_tree(
            TREE, eval_arith_node, machine=Machine(4, seed=seed, faults=plan)
        )
        assert result.value == EXPECTED
        assert result.metrics.rel_retransmits > 0
        assert result.metrics.rel_acks == 15  # exactly-once dispatch
        with pytest.raises(DeadlockError):
            reduce_tree(
                TREE, eval_arith_node, termination=False,
                machine=Machine(4, seed=seed, faults=plan),
            )

    def test_rides_through_a_healing_partition(self):
        cut = Partition(frozenset({3, 4}), 30.0, 120.0)
        plan = FaultPlan(partitions=(cut,))
        result = reliable_reduce_tree(
            TREE, eval_arith_node, machine=Machine(4, seed=1, faults=plan)
        )
        assert result.value == EXPECTED
        assert result.metrics.partition_dropped > 0
        # Every severed message was retransmitted after the heal.
        assert result.metrics.rel_retransmits >= result.metrics.partition_dropped
        with pytest.raises(DeadlockError):
            reduce_tree(
                TREE, eval_arith_node, termination=False,
                machine=Machine(4, seed=1, faults=plan),
            )

    def test_duplicate_deliveries_are_suppressed(self):
        plan = FaultPlan(duplicate_rate=0.3)
        result = reliable_reduce_tree(
            TREE, eval_arith_node, machine=Machine(4, seed=0, faults=plan)
        )
        assert result.value == EXPECTED
        assert result.metrics.messages_duplicated > 0
        assert (
            result.metrics.rel_duplicates_suppressed
            == result.metrics.messages_duplicated
        )
        assert result.metrics.rel_acks == 15

    def test_supervised_composition_survives_bootstrap_loss(self):
        # Seed 2 drops one of the bootstrap server_init spawns, which the
        # protocol cannot protect (it predates the rsend rewrite): the
        # never-booted server is reported unreachable and Supervise
        # re-dispatches the stranded attempts elsewhere.  The supervised
        # stack *without* Reliable deadlocks outright.
        plan = FaultPlan(drop_rate=0.2)
        result = reliable_reduce_tree(
            TREE, eval_arith_node, supervise=True, sup_timeout=400.0,
            machine=Machine(4, seed=2, faults=plan),
        )
        assert result.value == EXPECTED
        assert result.metrics.rel_unreachable > 0
        assert result.engine.rel_state.unreachable
        with pytest.raises(DeadlockError):
            supervised_reduce_tree(
                TREE, eval_arith_node, timeout=400.0,
                machine=Machine(4, seed=2, faults=plan),
            )

    def test_crashed_destination_reported_unreachable(self):
        # Processor 3 dies before the computation reaches it: the retry
        # budget exhausts and every rsend to it lands on the status stream
        # instead of hanging the sender.
        result = reliable_reduce_tree(
            TREE, eval_arith_node, supervise=True,
            retries=2, timeout=20.0, sup_timeout=400.0,
            machine=Machine(4, seed=0, faults=FaultPlan(crash={3: 5.0})),
        )
        assert result.metrics.rel_unreachable > 0
        unreachable_nodes = {node for _, node, _ in result.engine.rel_state.unreachable}
        assert 3 in unreachable_nodes


class TestSameSeedReplay:
    PLAN = FaultPlan(
        drop_rate=0.1,
        duplicate_rate=0.1,
        partitions=(Partition(frozenset({3, 4}), 30.0, 120.0),),
    )

    def _run(self):
        machine = Machine(4, seed=1, trace=True, faults=self.PLAN)
        result = reliable_reduce_tree(TREE, eval_arith_node, machine=machine)
        return result.value, machine.trace.format(), result.metrics.summary()

    def test_partitions_and_duplicates_replay_byte_for_byte(self):
        first, second = self._run(), self._run()
        assert first[0] == EXPECTED
        assert first == second

    def test_zero_rate_plan_replays_the_fault_free_trace(self):
        # A FaultPlan with every rate at zero must not perturb a single
        # RNG draw: the trace is byte-identical to a machine with no
        # failure model at all.
        def run(faults):
            machine = Machine(4, seed=0, trace=True, faults=faults)
            result = reduce_tree(TREE, eval_arith_node, machine=machine)
            return result.value, machine.trace.format()

        assert run(None) == run(FaultPlan())
