"""Collective (allreduce) motif tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import run_applied
from repro.errors import MotifError
from repro.machine import Machine
from repro.motifs.collective import (
    SUM_OP,
    allreduce_goals,
    central_reduce_goals,
    collective_motif,
)
from repro.strand.parser import parse_program
from repro.strand.program import Program
from repro.strand.terms import deref


def run_allreduce(values, topology="full", op_rules=SUM_OP):
    applied = collective_motif().apply(parse_program(op_rules, name="app"))
    goals, results = allreduce_goals(values)
    machine = Machine(len(values), topology=topology)
    _, metrics = run_applied(applied, goals, machine)
    return [deref(r) for r in results], metrics


def run_central(values, topology="full", op_rules=SUM_OP):
    applied = collective_motif().apply(parse_program(op_rules, name="app"))
    goals, total, dones = central_reduce_goals(values)
    machine = Machine(len(values), topology=topology)
    _, metrics = run_applied(applied, goals, machine)
    return deref(total), [deref(d) for d in dones], metrics


class TestAllreduce:
    def test_sum(self):
        results, _ = run_allreduce([3, 1, 4, 1, 5, 9, 2, 6])
        assert results == [31] * 8

    def test_single_processor(self):
        results, _ = run_allreduce([7])
        assert results == [7]

    def test_two_processors(self):
        results, _ = run_allreduce([5, 8])
        assert results == [13, 13]

    def test_power_of_two_required(self):
        with pytest.raises(MotifError):
            allreduce_goals([1, 2, 3])

    def test_custom_operator(self):
        rules = ("cop(A, B, C) :- A >= B | C := A.\n"
                 "cop(A, B, C) :- A < B | C := B.\n")
        results, _ = run_allreduce([4, 9, 2, 7], op_rules=rules)
        assert results == [9] * 4

    def test_foreign_operator(self):
        applied = collective_motif().apply(Program(name="app"))
        applied.foreign_setup.append(
            lambda reg: reg.register("cop", 3, lambda a, b: a * b, cost=2.0)
        )
        applied.user_names.add("cop")
        goals, results = allreduce_goals([1, 2, 3, 4])
        run_applied(applied, goals, Machine(4))
        assert [deref(r) for r in results] == [24] * 4

    @given(st.integers(0, 4), st.integers(0, 10**4))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_equals_fold(self, log_p, seed):
        import random

        rng = random.Random(seed)
        values = [rng.randint(-50, 50) for _ in range(1 << log_p)]
        results, _ = run_allreduce(values)
        assert results == [sum(values)] * len(values)

    def test_every_processor_participates(self):
        _, metrics = run_allreduce(list(range(8)), topology="hypercube")
        assert all(b > 0 for b in metrics.busy)


class TestCentralReduce:
    def test_total_and_broadcast(self):
        total, dones, _ = run_central([3, 1, 4, 1, 5])
        assert total == 14
        assert len(dones) == 5

    def test_single_value(self):
        total, _, _ = run_central([42])
        assert total == 42

    def test_non_power_of_two_supported(self):
        total, _, _ = run_central(list(range(7)))
        assert total == 21


class TestLatencyShape:
    def test_doubling_beats_central_at_scale(self):
        """O(log P) rounds vs the O(P) fold chain (E15's shape)."""

        def with_cost(plan, P):
            applied = collective_motif().apply(Program(name="app"))
            applied.foreign_setup.append(
                lambda reg: reg.register("cop", 3, lambda a, b: a + b, cost=8.0)
            )
            applied.user_names.add("cop")
            values = list(range(P))
            if plan == "doubling":
                goals, results = allreduce_goals(values)
                _, m = run_applied(applied, goals,
                                   Machine(P, topology="hypercube"))
                assert [deref(r) for r in results] == [sum(values)] * P
            else:
                goals, total, _ = central_reduce_goals(values)
                _, m = run_applied(applied, goals,
                                   Machine(P, topology="hypercube"))
                assert deref(total) == sum(values)
            return m.makespan

        ratio_16 = with_cost("central", 16) / with_cost("doubling", 16)
        ratio_64 = with_cost("central", 64) / with_cost("doubling", 64)
        assert ratio_16 > 1.5
        assert ratio_64 > ratio_16  # the gap widens with the machine
