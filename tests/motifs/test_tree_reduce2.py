"""Tree-Reduce-2 tests (§3.5): correctness plus the paper's two structural
claims — single active evaluation per processor, and at most one
interprocessor communication per node's offspring values."""

from hypothesis import given, settings, strategies as st

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.apps.trees import leaf_count, sequential_reduce, tree_size
from repro.core.api import reduce_tree
from repro.motifs.tree_reduce2 import TREE_REDUCE_LIBRARY
from repro.strand.parser import parse_program


class TestLibraryStructure:
    def test_parses_and_has_message_handlers(self):
        program = parse_program(TREE_REDUCE_LIBRARY)
        serve = program.procedure("serve", 5)
        assert serve is not None
        # init, tree, value, leafval, halt, end-of-stream
        assert len(serve.rules) == 6

    def test_contains_sequencing_token(self):
        program = parse_program(TREE_REDUCE_LIBRARY)
        assert ("seq_eval", 6) in program
        assert ("unlock", 2) in program


class TestCorrectness:
    def test_fixed_shapes(self):
        for shape in ("random", "balanced", "skewed"):
            tree = arithmetic_tree(12, seed=11, shape=shape)
            expected = sequential_reduce(tree, eval_arith_node)
            got = reduce_tree(tree, eval_arith_node, processors=4,
                              strategy="tr2", seed=1).value
            assert got == expected, shape

    def test_two_leaves(self):
        tree = arithmetic_tree(2, seed=1)
        expected = sequential_reduce(tree, eval_arith_node)
        assert reduce_tree(tree, eval_arith_node, processors=3,
                           strategy="tr2").value == expected

    def test_single_processor(self):
        tree = arithmetic_tree(9, seed=2)
        expected = sequential_reduce(tree, eval_arith_node)
        assert reduce_tree(tree, eval_arith_node, processors=1,
                           strategy="tr2").value == expected

    def test_merge_server_library(self):
        tree = arithmetic_tree(6, seed=3)
        expected = sequential_reduce(tree, eval_arith_node)
        got = reduce_tree(tree, eval_arith_node, processors=2,
                          strategy="tr2", server_library="merge").value
        assert got == expected


@given(
    leaves=st.integers(min_value=2, max_value=12),
    tree_seed=st.integers(min_value=0, max_value=10**6),
    processors=st.integers(min_value=1, max_value=6),
    machine_seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=25, deadline=None)
def test_tr2_equals_fold_property(leaves, tree_seed, processors, machine_seed):
    tree = arithmetic_tree(leaves, seed=tree_seed)
    expected = sequential_reduce(tree, eval_arith_node)
    result = reduce_tree(tree, eval_arith_node, processors=processors,
                         strategy="tr2", seed=machine_seed)
    assert result.value == expected


class TestMemoryClaim:
    """§3.5: "only a single node evaluation is active at any given time"."""

    def test_single_active_eval_per_processor(self):
        tree = arithmetic_tree(48, seed=21)
        result = reduce_tree(tree, eval_arith_node, processors=4,
                             strategy="tr2", seed=3)
        assert result.metrics.max_peak_live_tasks == 1

    @given(
        leaves=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_single_active_eval_property(self, leaves, seed):
        tree = arithmetic_tree(leaves, seed=seed)
        result = reduce_tree(tree, eval_arith_node, processors=3,
                             strategy="tr2", seed=seed)
        assert result.metrics.max_peak_live_tasks <= 1

    def test_tr1_exceeds_tr2_on_big_trees(self):
        tree = arithmetic_tree(64, seed=9)
        tr1 = reduce_tree(tree, eval_arith_node, processors=4,
                          strategy="tr1", seed=5).metrics
        tr2 = reduce_tree(tree, eval_arith_node, processors=4,
                          strategy="tr2", seed=5).metrics
        assert tr2.max_peak_live_tasks == 1
        assert tr1.max_peak_live_tasks > tr2.max_peak_live_tasks


def _cross_value_messages(result):
    """Cross-processor reduction-phase ``value(...)`` port sends (leaf
    dispatches travel as ``leafval`` and are excluded)."""
    return sum(
        1
        for e in result.engine.machine.trace.of_kind("send")
        if e.detail.startswith("port:value->")
    )


def _run_traced(tree, processors, seed):
    from repro.machine import Machine

    machine = Machine(processors, seed=seed, trace=True)
    return reduce_tree(tree, eval_arith_node, processors=processors,
                       strategy="tr2", seed=seed, machine=machine)


class TestCommunicationClaim:
    """§3.5: "an interprocessor communication is required for at most one
    of each node's offspring values".

    Every non-root node sends its value toward its parent's evaluation
    site; the labeling makes the left child's trip free, so cross-processor
    ``value`` messages ≤ (non-root nodes) / 2 rounded up — and in fact ≤
    one per *internal* node plus leaf dispatches whose shared label landed
    remote.  The hard bound tested: one message per non-root node, with
    the left-child half guaranteed free only for internal evaluations.
    """

    def test_value_messages_bounded(self):
        tree = arithmetic_tree(40, seed=13)
        nodes = tree_size(tree)
        result = _run_traced(tree, 4, 2)
        value_msgs = _cross_value_messages(result)
        # At most one communication per node's offspring pair: every
        # parent receives at most one remote value (the right child);
        # leaf pairs share a label so their dispatches count once too.
        internal = nodes - leaf_count(tree)
        assert value_msgs <= internal

    @given(
        leaves=st.integers(min_value=3, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_message_bound_property(self, leaves, seed):
        tree = arithmetic_tree(leaves, seed=seed)
        internal = leaves - 1
        result = _run_traced(tree, 4, seed)
        assert _cross_value_messages(result) <= internal

    def test_left_child_values_are_free(self):
        # On one processor everything is local: no value messages at all.
        tree = arithmetic_tree(10, seed=4)
        result = _run_traced(tree, 1, 0)
        assert _cross_value_messages(result) == 0
