"""Tests for the graph-SSSP and bounded-buffer motifs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.graphs import (
    cycle_graph,
    grid_graph,
    random_graph,
    reference_distances,
    run_sssp,
)
from repro.errors import MotifError
from repro.machine import Machine
from repro.motifs.bounded import bounded_motif
from repro.motifs.graph import sssp_goals
from repro.strand.foreign import to_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Var


class TestGraphSSSP:
    def test_grid_matches_networkx(self):
        adj = grid_graph(5, 4)
        assert run_sssp(adj, 0, workers=4, seed=1)[0] == reference_distances(adj, 0)

    def test_cycle(self):
        adj = cycle_graph(12)
        got, _ = run_sssp(adj, 3, workers=3, seed=0)
        assert got == reference_distances(adj, 3)

    def test_random_graphs(self):
        for seed in (0, 1, 2):
            adj = random_graph(25, 0.12, seed=seed)
            got, _ = run_sssp(adj, 0, workers=4, seed=seed)
            assert got == reference_distances(adj, 0)

    def test_single_worker(self):
        adj = grid_graph(3, 3)
        got, metrics = run_sssp(adj, 0, workers=1)
        assert got == reference_distances(adj, 0)
        assert metrics.sends == 0  # everything local

    def test_disconnected_nodes_absent(self):
        adj = {0: [1], 1: [0], 2: []}  # node 2 unreachable
        got, _ = run_sssp(adj, 0, workers=2)
        assert got == {0: 0, 1: 1}
        assert 2 not in got

    def test_unknown_source_rejected(self):
        with pytest.raises(MotifError):
            sssp_goals({0: []}, source=9, workers=2)

    def test_zero_workers_rejected(self):
        with pytest.raises(MotifError):
            sssp_goals({0: []}, source=0, workers=0)

    @given(
        nodes=st.integers(4, 20),
        p=st.floats(0.05, 0.4),
        workers=st.integers(1, 5),
        seed=st.integers(0, 10**4),
    )
    @settings(max_examples=15, deadline=None)
    def test_sssp_matches_networkx_property(self, nodes, p, workers, seed):
        adj = random_graph(nodes, p, seed=seed)
        got, _ = run_sssp(adj, 0, workers=workers, seed=seed)
        assert got == reference_distances(adj, 0)

    def test_messages_stay_on_owners(self):
        # With a ring topology the computation still converges correctly.
        adj = grid_graph(4, 4)
        machine = Machine(4, topology="ring", seed=2)
        got, _ = run_sssp(adj, 0, workers=4, machine=machine)
        assert got == reference_distances(adj, 0)


class TestBoundedBuffer:
    SOURCE_EXTRA = """
    feed(N, Xs) :- N > 0 |
        Xs := [N | Xs1],
        N1 := N - 1,
        feed(N1, Xs1).
    feed(0, Xs) :- Xs := [].
    go(N, K, Items) :-
        feed(N, Xs),
        bounded(K, Xs, Ys),
        bounded_collect(Ys, Items).
    """

    def run(self, n: int, k: int):
        applied = bounded_motif().apply(
            Program(name="bbtest")
        )
        from repro.strand.parser import parse_program

        extra = parse_program(self.SOURCE_EXTRA, name="driver")
        program = applied.program.union(extra)
        from repro.strand.engine import StrandEngine

        machine = Machine(1)
        engine = StrandEngine(program, machine=machine)
        items = Var("Items")
        engine.spawn(Struct("go", (n, k, items)))
        metrics = engine.run()
        return to_python(items), metrics

    def test_delivers_everything_in_order(self):
        items, _ = self.run(10, 3)
        assert items == list(range(10, 0, -1))

    def test_window_respected(self):
        for k in (1, 2, 5):
            _, metrics = self.run(20, k)
            assert metrics.max_peak_live_values <= k, k

    def test_window_one_is_figure1(self):
        items, metrics = self.run(6, 1)
        assert items == [6, 5, 4, 3, 2, 1]
        assert metrics.max_peak_live_values == 1

    def test_empty_stream(self):
        items, _ = self.run(0, 4)
        assert items == []

    def test_large_window_does_not_block(self):
        items, _ = self.run(5, 100)
        assert len(items) == 5

    @given(n=st.integers(0, 30), k=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_bounded_property(self, n, k):
        items, metrics = self.run(n, k)
        assert items == list(range(n, 0, -1))
        assert metrics.max_peak_live_values <= k
