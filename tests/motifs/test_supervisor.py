"""The Supervise motif: transformation errors, monitor threading,
standalone (local-placement) supervision, and the full
Server ∘ Rand ∘ Supervise ∘ Tree1′ stack under injected crashes."""

import pytest

from repro.apps.arithmetic import arithmetic_tree, eval_arith_node, paper_example_tree
from repro.core.api import as_application, run_applied, supervised_reduce_tree
from repro.errors import TransformError
from repro.machine import FaultPlan, Machine
from repro.motifs.supervisor import (
    SUPERVISE_SERVICES,
    SuperviseTransformation,
    supervise_motif,
    supervised_tree_reduce,
)
from repro.strand.parser import parse_program
from repro.strand.terms import Struct, Var, deref


DOUBLER = """
main(X, Out) :- double(X, Out) @ supervised(2).
double(X, Y) :- Y := X * 2.
"""


class TestTransformationErrors:
    def test_requires_an_annotation(self):
        program = parse_program("main(X, Out) :- double(X, Out).\ndouble(X, Y) :- Y := X * 2.")
        t = SuperviseTransformation({("double", 2): 2}, entry=("main", 2))
        with pytest.raises(TransformError, match="no '@ supervised"):
            t.apply(program)

    def test_entry_must_reach_a_supervised_goal(self):
        program = parse_program(DOUBLER + "\nunrelated(X) :- X := 1.")
        t = SuperviseTransformation({("double", 2): 2}, entry=("unrelated", 1))
        with pytest.raises(TransformError, match="does not reach"):
            t.apply(program)

    def test_supervised_goal_needs_declared_output(self):
        program = parse_program(DOUBLER)
        t = SuperviseTransformation({("other", 3): 1}, entry=("main", 2))
        with pytest.raises(TransformError, match="no declared output position"):
            t.apply(program)

    def test_output_position_range_checked(self):
        with pytest.raises(TransformError, match="out of range"):
            SuperviseTransformation({("double", 2): 3}, entry=("main", 2))

    def test_arity_shift_collision_detected(self):
        program = parse_program(
            DOUBLER + "\nmain(X, Out, Extra) :- Out := X, Extra := X."
        )
        t = SuperviseTransformation({("double", 2): 2}, entry=("main", 2))
        with pytest.raises(TransformError, match="collide"):
            t.apply(program)


class TestMonitorThreading:
    def test_affected_procedures_gain_monitor_argument(self):
        program = parse_program(DOUBLER)
        t = SuperviseTransformation({("double", 2): 2}, entry=("main", 2))
        out = t.apply(program)
        # main/2 became main/3 (monitor threaded); the supervised callee
        # itself is untouched — attempts call it through the supervisor.
        assert ("main", 3) in out
        assert ("main", 2) not in out
        assert ("double", 2) in out
        assert ("sup_run", 2) in out

    def test_supervised_goal_rewritten_to_watch(self):
        program = parse_program(DOUBLER)
        t = SuperviseTransformation({("double", 2): 2}, entry=("main", 2))
        out = t.apply(program)
        (rule,) = out.procedure("main", 3).rules
        (goal,) = rule.body
        assert goal.indicator == ("sup_watch", 5)
        assert deref(goal.args[1]) == 2  # output position
        assert deref(goal.args[3]) == 2  # retries from the annotation


class TestStandaloneLocalSupervision:
    def run_doubler(self, machine, timeout=500.0):
        motif = supervise_motif(
            {("double", 2): 2}, entry=("main", 2),
            timeout=timeout, fallback="none", place="local",
        )
        application, _ = as_application(DOUBLER)
        applied = motif.apply(application)
        out = Var("Out")
        engine, metrics = run_applied(
            applied, Struct("sup_run", (21, out)), machine
        )
        return deref(out), metrics

    def test_supervised_call_completes_locally(self):
        value, metrics = self.run_doubler(Machine(1))
        assert value == 42
        assert metrics.sup_retries == 0
        assert metrics.sup_degraded == 0

    def test_services_declared_for_quiescence(self):
        assert ("supervisor", 2) in SUPERVISE_SERVICES
        assert ("supervisor", 3) in SUPERVISE_SERVICES

    def test_unknown_place_rejected(self):
        with pytest.raises(ValueError):
            supervise_motif({("double", 2): 2}, entry=("main", 2),
                            place="elsewhere")


class TestSupervisedTreeReduce:
    def test_paper_example_fault_free(self):
        result = supervised_reduce_tree(
            paper_example_tree(), eval_arith_node, processors=4, seed=0
        )
        assert result.value == 24
        assert result.metrics.sup_retries == 0
        assert result.metrics.faults_injected == 0

    def test_crash_does_not_change_the_answer(self):
        tree = arithmetic_tree(32, seed=3)
        baseline = supervised_reduce_tree(
            tree, eval_arith_node, processors=4, seed=11
        )
        machine = Machine(4, seed=11, faults=FaultPlan(crash={3: 25.0}))
        recovered = supervised_reduce_tree(tree, eval_arith_node, machine=machine)
        assert recovered.value == baseline.value
        assert recovered.metrics.crashes == 1
        assert recovered.metrics.sup_retries > 0
        assert recovered.metrics.makespan > baseline.metrics.makespan

    def test_exhausted_retries_degrade_to_fallback(self):
        # Kill half the machine after the server network bootstraps: with
        # a single retry, subtrees whose attempts keep landing on dead
        # processors run out of budget and degrade to the fallback instead
        # of hanging the run.
        tree = arithmetic_tree(16, seed=3)
        machine = Machine(
            4, seed=11, faults=FaultPlan(crash={2: 25.0, 3: 25.0})
        )
        result = supervised_reduce_tree(
            tree, eval_arith_node, machine=machine,
            retries=1, timeout=400.0,
        )
        assert result.metrics.sup_degraded > 0
        assert result.metrics.sup_timeouts > 0
        assert result.metrics.crashes == 2

    def test_motif_stack_shape(self):
        motif = supervised_tree_reduce()
        names = [m.name for m in motif.pipeline]
        assert names[0] == "tree1-sup"
        assert "supervise" in names
        assert names.index("supervise") == 1
