"""Tests for the §4 future-work motifs: farm, pipeline, dnc, search, sort,
grid."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.gridapp import (
    jacobi_reference,
    join_strips,
    make_grid,
    register_grid,
    split_strips,
)
from repro.apps.queens import (
    KNOWN_COUNTS,
    count_solutions_sequential,
    register_queens,
    root_node,
)
from repro.apps.sorting import merge_sorted, random_list, register_sorting
from repro.core.api import run_applied
from repro.errors import MotifError
from repro.machine import Machine
from repro.motifs.dnc import dnc_stack
from repro.motifs.farm import farm_stack
from repro.motifs.grid import grid_goals, grid_motif
from repro.motifs.pipeline import pipeline_library_source, pipeline_motif
from repro.motifs.search import search_stack
from repro.motifs.sort import sort_stack
from repro.strand.foreign import from_python, to_python
from repro.strand.parser import parse_program
from repro.strand.program import Program
from repro.strand.terms import Struct, Var, deref


def empty_app(name):
    return Program(name=name)


class TestFarm:
    def run_farm(self, items, processors=4, seed=0, fn=lambda x: x * x):
        applied = farm_stack(worker="f").apply(empty_app("farm"))
        applied.foreign_setup.append(
            lambda reg: reg.register("f", 2, fn, cost=4.0)
        )
        applied.user_names.add("f")
        ys = Var("Ys")
        goal = Struct(
            "create",
            (processors, Struct("boot", (from_python(items), ys, Var("D")))),
        )
        _, metrics = run_applied(applied, goal, Machine(processors, seed=seed))
        return to_python(ys), metrics

    def test_maps_in_order(self):
        values, _ = self.run_farm(list(range(12)))
        assert values == [x * x for x in range(12)]

    def test_empty_input(self):
        values, _ = self.run_farm([])
        assert values == []

    def test_single_item(self):
        values, _ = self.run_farm([5])
        assert values == [25]

    def test_spreads_work(self):
        _, metrics = self.run_farm(list(range(40)), processors=4, seed=1)
        assert sum(1 for b in metrics.busy if b > 0) == 4

    @given(st.lists(st.integers(-100, 100), max_size=15),
           st.integers(1, 6), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_farm_equals_map_property(self, items, processors, seed):
        values, _ = self.run_farm(items, processors=processors, seed=seed)
        assert values == [x * x for x in items]


class TestPipeline:
    def test_source_generation(self):
        src = pipeline_library_source(["f", "g"])
        program = parse_program(src)
        assert ("pipe", 2) in program
        assert ("f_stream", 2) in program
        assert ("g_stream", 2) in program

    def test_empty_stages_rejected(self):
        with pytest.raises(MotifError):
            pipeline_motif([])

    def run_pipe(self, items, stages, processors):
        applied = pipeline_motif([s[0] for s in stages]).apply(empty_app("p"))

        def setup(reg, stages=stages):
            for name, fn in stages:
                reg.register(name, 2, fn, cost=2.0)

        applied.foreign_setup.append(setup)
        applied.user_names.update(s[0] for s in stages)
        ys = Var("Ys")
        goal = Struct("pipe", (from_python(items), ys))
        _, metrics = run_applied(applied, goal, Machine(processors))
        return to_python(ys), metrics

    def test_three_stage_pipeline(self):
        values, _ = self.run_pipe(
            [1, 2, 3, 4],
            [("dbl", lambda x: 2 * x), ("inc", lambda x: x + 1),
             ("neg", lambda x: -x)],
            processors=3,
        )
        assert values == [-(2 * x + 1) for x in [1, 2, 3, 4]]

    def test_single_stage(self):
        values, _ = self.run_pipe([3], [("inc", lambda x: x + 1)], 1)
        assert values == [4]

    def test_stages_overlap_in_time(self):
        # With S stages of cost c and N items, a pipeline takes roughly
        # (N + S) * c, far below the serial N * S * c.
        items = list(range(10))
        stages = [("a", lambda x: x), ("b", lambda x: x), ("c", lambda x: x)]
        _, metrics = self.run_pipe(items, stages, 3)
        serial_cost = len(items) * 3 * 2.0
        assert metrics.makespan < serial_cost


class TestSearch:
    def run_queens(self, n, processors=4, depth=2, seed=0):
        applied = search_stack().apply(empty_app("queens"))
        applied.foreign_setup.append(register_queens)
        applied.user_names.update({"expand", "sol"})
        count = Var("C")
        goal = Struct(
            "create",
            (processors,
             Struct("boot", (from_python(root_node(n)), count, depth, Var("D")))),
        )
        _, metrics = run_applied(applied, goal, Machine(processors, seed=seed))
        return deref(count), metrics

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_counts_match_known(self, n):
        count, _ = self.run_queens(n)
        assert count == KNOWN_COUNTS[n]

    def test_depth_zero_fully_local(self):
        count, metrics = self.run_queens(5, processors=4, depth=0)
        assert count == KNOWN_COUNTS[5]

    def test_sequential_reference(self):
        assert count_solutions_sequential(6) == KNOWN_COUNTS[6]
        assert count_solutions_sequential(8) == KNOWN_COUNTS[8]


class TestSort:
    def run_sort(self, xs, processors=4, depth=2, seed=0):
        applied = sort_stack().apply(empty_app("sorting"))
        applied.foreign_setup.append(register_sorting)
        applied.user_names.update({"halve", "merge_sorted", "sort_seq"})
        out = Var("Out")
        goal = Struct(
            "create",
            (processors, Struct("boot", (from_python(xs), out, depth, Var("D")))),
        )
        run_applied(applied, goal, Machine(processors, seed=seed))
        return to_python(out)

    def test_sorts(self):
        xs = random_list(60, seed=1)
        assert self.run_sort(xs) == sorted(xs)

    def test_empty_and_singleton(self):
        assert self.run_sort([]) == []
        assert self.run_sort([9]) == [9]

    def test_already_sorted(self):
        assert self.run_sort(list(range(20))) == list(range(20))

    @given(st.lists(st.integers(-1000, 1000), max_size=40),
           st.integers(0, 3), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_sort_property(self, xs, depth, seed):
        assert self.run_sort(xs, depth=depth, seed=seed) == sorted(xs)

    def test_merge_sorted_reference(self):
        assert merge_sorted([1, 3], [2, 4]) == [1, 2, 3, 4]
        assert merge_sorted([], [1]) == [1]


class TestGrid:
    def run_jacobi(self, rows, cols, workers, iterations):
        applied = grid_motif().apply(empty_app("jacobi"))
        applied.foreign_setup.append(register_grid)
        applied.user_names.update({"top_row", "bottom_row", "sweep"})
        grid = make_grid(rows, cols)
        strips = [from_python(s) for s in split_strips(grid, workers)]
        goals, results = grid_goals(strips, iterations)
        _, metrics = run_applied(applied, goals, Machine(workers))
        got = join_strips([to_python(r) for r in results])
        return grid, got, metrics

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_reference(self, workers):
        grid, got, _ = self.run_jacobi(12, 6, workers, iterations=4)
        assert np.allclose(got, jacobi_reference(grid, 4))

    def test_zero_iterations_identity(self):
        grid, got, _ = self.run_jacobi(8, 4, 2, iterations=0)
        assert np.allclose(got, grid)

    def test_uneven_strips(self):
        grid, got, _ = self.run_jacobi(11, 5, 3, iterations=3)
        assert np.allclose(got, jacobi_reference(grid, 3))

    def test_boundary_exchanges_counted(self):
        _, _, metrics = self.run_jacobi(12, 6, 4, iterations=5)
        assert metrics.remote_bindings > 0 or metrics.sends > 0


class TestDnC:
    def run_sum(self, lo, hi, processors=4, depth=3, seed=0):
        applied = dnc_stack().apply(empty_app("sumrange"))

        def setup(reg):
            reg.register("is_base", 2, lambda p: p[1] - p[0] <= 2, cost=1.0)
            reg.register("base", 2, lambda p: sum(range(p[0], p[1] + 1)), cost=2.0)
            reg.register(
                "split", 3,
                lambda p: ([p[0], (p[0] + p[1]) // 2],
                           [(p[0] + p[1]) // 2 + 1, p[1]]),
                outputs=(1, 2), cost=1.0,
            )
            reg.register("combine", 3, lambda a, b: a + b, cost=1.0)

        applied.foreign_setup.append(setup)
        applied.user_names.update({"is_base", "base", "split", "combine"})
        result = Var("R")
        goal = Struct(
            "create",
            (processors,
             Struct("boot", (from_python([lo, hi]), result, depth, Var("D")))),
        )
        run_applied(applied, goal, Machine(processors, seed=seed))
        return deref(result)

    def test_gauss_sum(self):
        assert self.run_sum(1, 100) == 5050

    def test_base_case_only(self):
        assert self.run_sum(1, 2) == 3

    @given(st.integers(1, 50), st.integers(0, 4), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_dnc_sum_property(self, n, depth, seed):
        hi = n + 10
        assert self.run_sum(n, hi, depth=depth, seed=seed) == sum(range(n, hi + 1))


class TestCollectSearch:
    """§1's or-parallel model: return the solutions, not just a count."""

    def run_collect(self, n, processors=4, depth=2, seed=3):
        from repro.motifs.search import collect_search_stack
        from repro.strand.terms import NIL

        applied = collect_search_stack().apply(empty_app("queens"))
        applied.foreign_setup.append(register_queens)
        applied.user_names.update({"expand", "sol"})
        sols = Var("Sols")
        goal = Struct(
            "create",
            (processors,
             Struct("boot", (from_python(root_node(n)), sols, NIL, depth,
                             Var("D")))),
        )
        run_applied(applied, goal, Machine(processors, seed=seed))
        return to_python(sols)

    @staticmethod
    def _valid(node):
        n, cols = node[0], node[1:]
        if len(cols) != n:
            return False
        return all(
            cols[i] != cols[j] and abs(cols[i] - cols[j]) != j - i
            for i in range(n) for j in range(i + 1, n)
        )

    def test_collects_all_solutions(self):
        sols = self.run_collect(6)
        assert len(sols) == KNOWN_COUNTS[6]
        assert all(self._valid(s) for s in sols)
        assert len({tuple(s) for s in sols}) == len(sols)

    def test_unsolvable_board_empty(self):
        assert self.run_collect(3) == []

    def test_matches_count_motif(self):
        for n in (4, 5):
            sols = self.run_collect(n, processors=3, seed=1)
            assert len(sols) == KNOWN_COUNTS[n]

    def test_depth_zero_local(self):
        sols = self.run_collect(5, depth=0)
        assert len(sols) == KNOWN_COUNTS[5]

    def test_schedule_independent_solution_set(self):
        a = {tuple(s) for s in self.run_collect(6, processors=2, seed=1)}
        b = {tuple(s) for s in self.run_collect(6, processors=5, seed=9)}
        assert a == b
