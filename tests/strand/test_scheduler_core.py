"""Scheduler-half regression tests: deadlock reporting and quiescence.

The deadlock report must be *deterministic* (sorted by processor, then
spawn sequence — not by dict iteration order over process ids) and must say
which variables each stuck process is waiting on.  Port auto-close on
service quiescence must fire exactly once per run.
"""

import pytest

from repro.errors import DeadlockError
from repro.machine.simulator import Machine
from repro.strand import parse_program, run_query
from repro.strand.engine import StrandEngine
from repro.strand.parser import parse_term

WAIT = "wait(X, Out) :- known(X) | Out := done.\n"


class TestDeadlockReport:
    def test_message_names_blocked_variables(self):
        program = parse_program(WAIT)
        with pytest.raises(DeadlockError) as err:
            run_query(program, "wait(Input, Out)")
        message = str(err.value)
        assert "wait(Input, Out)" in message
        assert "[waiting on Input]" in message

    def test_processes_sorted_by_processor_then_sequence(self):
        # Spawn on processor 2 *first* (lower sequence number): the report
        # must still list p1 before p2.
        program = parse_program(WAIT)
        engine = StrandEngine(program, machine=Machine(2))
        engine.spawn(parse_term("wait(B, Out1)"), proc=2)
        engine.spawn(parse_term("wait(A, Out2)"), proc=1)
        with pytest.raises(DeadlockError) as err:
            engine.run()
        message = str(err.value)
        assert message.index("p1: wait(A") < message.index("p2: wait(B")

    def test_report_is_stable_across_runs(self):
        program = parse_program(WAIT)
        query = "wait(A, O1), wait(B, O2), wait(C, O3)"
        messages = []
        for _ in range(2):
            with pytest.raises(DeadlockError) as err:
                run_query(program, query, machine=Machine(2))
            messages.append(str(err.value))
        assert messages[0] == messages[1]
        # All three suspensions listed, in spawn order.
        a, b, c = (messages[0].index(f"wait({v}") for v in "ABC")
        assert a < b < c

    def test_long_reports_truncate_with_count(self):
        program = parse_program(WAIT)
        engine = StrandEngine(program, machine=Machine(1))
        for i in range(15):
            engine.spawn(parse_term(f"wait(V{i}, Out{i})"), proc=1)
        with pytest.raises(DeadlockError) as err:
            engine.run()
        message = str(err.value)
        assert "15 suspended" in message
        assert "... and 3 more" in message


class TestQuiescenceCounter:
    SERVER = """
    go(Out) :- open_port(P, S), feed(3, P), loop(S, 0, Out).
    feed(N, P) :- N > 0 | send_port(P, item), N1 := N - 1, feed(N1, P).
    feed(0, _).
    loop([item | In], Acc, Out) :- Acc1 := Acc + 1, loop(In, Acc1, Out).
    loop([], Acc, Out) :- Out := Acc.
    """

    def test_auto_close_fires_exactly_once(self):
        program = parse_program(self.SERVER)
        result = run_query(program, "go(Out)", machine=Machine(1),
                           services=[("loop", 3)])
        assert result["Out"] == 3
        assert result.engine._quiesce_closes == 1
        assert result.engine._ports_closed

    def test_no_quiesce_when_streams_terminate_naturally(self):
        src = """
        go(Out) :- open_port(P, S), produce(2, P), consume(S, 0, Out).
        produce(N, P) :- N > 0 | send_port(P, x), N1 := N - 1, produce(N1, P).
        produce(0, P) :- close_port(P).
        consume([x | In], Acc, Out) :- Acc1 := Acc + 1, consume(In, Acc1, Out).
        consume([], Acc, Out) :- Out := Acc.
        """
        result = run_query(parse_program(src), "go(Out)", machine=Machine(1))
        assert result["Out"] == 2
        assert result.engine._quiesce_closes == 0

    def test_services_only_with_auto_close_disabled_deadlocks(self):
        program = parse_program(self.SERVER)
        with pytest.raises(DeadlockError) as err:
            run_query(program, "go(Out)", machine=Machine(1),
                      services=[("loop", 3)], auto_close_ports=False)
        # The stuck service and its stream variable are reported.
        assert "loop(" in str(err.value)
        assert "waiting on" in str(err.value)
