"""Unit tests for one-way head matching and guard evaluation."""

from repro.strand.match import MatchResult, eval_guards, instantiate, match_head
from repro.strand.parser import parse_rule, parse_term
from repro.strand.terms import Atom, Struct, Var, deref


def match(head_src: str, goal_src: str) -> MatchResult:
    head = parse_term(head_src)
    goal = parse_term(goal_src)
    return match_head(head, goal)


class TestHeadMatching:
    def test_variables_match_anything(self):
        m = match("p(X)", "p(f(1))")
        assert m.status == MatchResult.MATCHED

    def test_constant_match(self):
        assert match("p(0)", "p(0)").status == MatchResult.MATCHED
        assert match("p(a)", "p(a)").status == MatchResult.MATCHED

    def test_constant_clash_fails(self):
        assert match("p(0)", "p(1)").status == MatchResult.FAILED
        assert match("p(a)", "p(b)").status == MatchResult.FAILED

    def test_atom_vs_string_fails(self):
        assert match("p(a)", 'p("a")').status == MatchResult.FAILED

    def test_structure_decomposition(self):
        m = match("p(tree(V, L, R))", "p(tree(add, leaf(1), leaf(2)))")
        assert m.status == MatchResult.MATCHED

    def test_functor_clash_fails(self):
        assert match("p(tree(V, L, R))", "p(leaf(1))").status == MatchResult.FAILED

    def test_arity_clash_fails(self):
        assert match("p(f(X))", "p(f(1, 2))").status == MatchResult.FAILED

    def test_unbound_goal_arg_suspends(self):
        head = parse_term("p(0)")
        goal_var = Var("G")
        m = match_head(head, Struct("p", (goal_var,)))
        assert m.status == MatchResult.SUSPENDED
        assert goal_var in m.blocked

    def test_nested_unbound_suspends(self):
        head = parse_term("p(f(0))")
        inner = Var("I")
        m = match_head(head, Struct("p", (Struct("f", (inner,)),)))
        assert m.status == MatchResult.SUSPENDED
        assert inner in m.blocked

    def test_definite_clash_beats_suspension(self):
        # One position clashes outright: the rule fails even though
        # another position would have to wait.
        head = parse_term("p(0, a)")
        m = match_head(head, Struct("p", (Var("U"), Atom("b"))))
        assert m.status == MatchResult.FAILED

    def test_list_patterns(self):
        assert match("p([X | Xs])", "p([1, 2])").status == MatchResult.MATCHED
        assert match("p([])", "p([])").status == MatchResult.MATCHED
        assert match("p([X | Xs])", "p([])").status == MatchResult.FAILED

    def test_nonlinear_head_equal(self):
        assert match("p(X, X)", "p(3, 3)").status == MatchResult.MATCHED

    def test_nonlinear_head_unequal(self):
        assert match("p(X, X)", "p(3, 4)").status == MatchResult.FAILED

    def test_nonlinear_head_suspends_on_unbound(self):
        head = parse_term("p(X, X)")
        u = Var("U")
        m = match_head(head, Struct("p", (3, u)))
        assert m.status == MatchResult.SUSPENDED

    def test_nonlinear_same_unbound_var_matches(self):
        head = parse_term("p(X, X)")
        u = Var("U")
        m = match_head(head, Struct("p", (u, u)))
        assert m.status == MatchResult.MATCHED

    def test_matching_never_binds_goal_vars(self):
        head = parse_term("p(f(X))")
        u = Var("U")
        match_head(head, Struct("p", (u,)))
        assert not u.is_bound

    def test_tuple_pattern(self):
        assert match("p({A, B})", "p({1, 2})").status == MatchResult.MATCHED
        assert match("p({A})", "p({1, 2})").status == MatchResult.FAILED


class TestGuards:
    def run_guards(self, rule_src: str, goal_src: str) -> MatchResult:
        rule = parse_rule(rule_src)
        goal = parse_term(goal_src)
        m = match_head(rule.head, goal)
        assert m.status == MatchResult.MATCHED
        return eval_guards(rule.guards, m.env)

    def test_comparison_true(self):
        g = self.run_guards("p(N) :- N > 0 | q.", "p(3)")
        assert g.status == MatchResult.MATCHED

    def test_comparison_false(self):
        g = self.run_guards("p(N) :- N > 0 | q.", "p(0)")
        assert g.status == MatchResult.FAILED

    def test_comparison_suspends(self):
        rule = parse_rule("p(N) :- N > 0 | q.")
        u = Var("U")
        m = match_head(rule.head, Struct("p", (u,)))
        g = eval_guards(rule.guards, m.env)
        assert g.status == MatchResult.SUSPENDED
        assert u in g.blocked

    def test_all_comparisons(self):
        for guard, value, expected in [
            ("N < 5", 3, True), ("N < 5", 5, False),
            ("N =< 5", 5, True), ("N >= 5", 5, True),
            ("N =\\= 5", 4, True), ("N =\\= 5", 5, False),
        ]:
            g = self.run_guards(f"p(N) :- {guard} | q.", f"p({value})")
            status = MatchResult.MATCHED if expected else MatchResult.FAILED
            assert g.status == status, guard

    def test_structural_equality(self):
        g = self.run_guards("p(X) :- X == f(1) | q.", "p(f(1))")
        assert g.status == MatchResult.MATCHED
        g = self.run_guards("p(X) :- X == f(1) | q.", "p(f(2))")
        assert g.status == MatchResult.FAILED

    def test_structural_disequality(self):
        g = self.run_guards("p(X) :- X \\== f(1) | q.", "p(f(2))")
        assert g.status == MatchResult.MATCHED

    def test_type_tests(self):
        for guard, value, expected in [
            ("integer(X)", "3", True), ("integer(X)", "3.5", False),
            ("number(X)", "3.5", True), ("float(X)", "3.5", True),
            ("atom(X)", "a", True), ("atom(X)", "3", False),
            ("string(X)", '"s"', True),
            ("list(X)", "[1]", True), ("list(X)", "[]", True),
            ("list(X)", "f(1)", False),
            ("tuple(X)", "{1}", True), ("tuple(X)", "1", False),
        ]:
            g = self.run_guards(f"p(X) :- {guard} | q.", f"p({value})")
            status = MatchResult.MATCHED if expected else MatchResult.FAILED
            assert g.status == status, (guard, value)

    def test_known_guard(self):
        g = self.run_guards("p(X) :- known(X) | q.", "p(42)")
        assert g.status == MatchResult.MATCHED
        rule = parse_rule("p(X) :- known(X) | q.")
        u = Var("U")
        m = match_head(rule.head, Struct("p", (u,)))
        g = eval_guards(rule.guards, m.env)
        assert g.status == MatchResult.SUSPENDED

    def test_true_guard(self):
        g = self.run_guards("p(X) :- true | q.", "p(1)")
        assert g.status == MatchResult.MATCHED

    def test_type_test_suspends_on_unbound(self):
        rule = parse_rule("p(X) :- integer(X) | q.")
        u = Var("U")
        m = match_head(rule.head, Struct("p", (u,)))
        g = eval_guards(rule.guards, m.env)
        assert g.status == MatchResult.SUSPENDED


class TestInstantiate:
    def test_body_shares_head_bindings(self):
        rule = parse_rule("p(X) :- q(X, Y), r(Y).")
        goal = parse_term("p(7)")
        m = match_head(rule.head, goal)
        fresh = {}
        q_goal = instantiate(rule.body[0], m.env, fresh)
        r_goal = instantiate(rule.body[1], m.env, fresh)
        assert deref(q_goal.args[0]) == 7
        # Y is fresh but shared between the two body goals.
        assert q_goal.args[1] is r_goal.args[0]

    def test_fresh_vars_not_rule_vars(self):
        rule = parse_rule("p(X) :- q(Y).")
        m = match_head(rule.head, parse_term("p(1)"))
        g1 = instantiate(rule.body[0], dict(m.env), {})
        g2 = instantiate(rule.body[0], dict(m.env), {})
        assert g1.args[0] is not g2.args[0]


class TestArithmeticEquality:
    """The =:= guard (arithmetic equality, unlike structural ==)."""

    def run_guards(self, rule_src: str, goal_src: str) -> MatchResult:
        rule = parse_rule(rule_src)
        goal = parse_term(goal_src)
        m = match_head(rule.head, goal)
        assert m.status == MatchResult.MATCHED
        return eval_guards(rule.guards, m.env)

    def test_evaluates_expressions(self):
        g = self.run_guards("p(X) :- X mod 2 =:= 0 | q.", "p(4)")
        assert g.status == MatchResult.MATCHED
        g = self.run_guards("p(X) :- X mod 2 =:= 0 | q.", "p(5)")
        assert g.status == MatchResult.FAILED

    def test_int_float_equality(self):
        g = self.run_guards("p(X) :- X =:= 2.0 | q.", "p(2)")
        assert g.status == MatchResult.MATCHED

    def test_suspends_on_unbound(self):
        rule = parse_rule("p(X) :- X =:= 3 | q.")
        u = Var("U")
        m = match_head(rule.head, Struct("p", (u,)))
        g = eval_guards(rule.guards, m.env)
        assert g.status == MatchResult.SUSPENDED

    def test_structural_eq_does_not_evaluate(self):
        # The contrast that motivated =:= — `4 mod 2 == 0` is false
        # structurally (a struct is not the integer 0).
        g = self.run_guards("p(X) :- X mod 2 == 0 | q.", "p(4)")
        assert g.status == MatchResult.FAILED
