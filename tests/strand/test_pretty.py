"""Pretty-printer tests, including the parse∘format round-trip property."""

import string

from hypothesis import given, settings, strategies as st

from repro.strand.parser import parse_program, parse_rule, parse_term
from repro.strand.pretty import format_program, format_rule, format_term
from repro.strand.program import Rule
from repro.strand.terms import Atom, Cons, NIL, Struct, Term, Tup, Var, term_eq


class TestFormatTerm:
    def test_constants(self):
        assert format_term(42) == "42"
        assert format_term(3.5) == "3.5"
        assert format_term("ab") == '"ab"'
        assert format_term(Atom("foo")) == "foo"
        assert format_term(NIL) == "[]"

    def test_quoted_atom(self):
        assert format_term(Atom("hello world")) == "'hello world'"
        assert format_term(Atom("Upper")) == "'Upper'"

    def test_struct(self):
        assert format_term(parse_term("f(1, g(2))")) == "f(1, g(2))"

    def test_list(self):
        assert format_term(parse_term("[1, 2, 3]")) == "[1, 2, 3]"
        assert format_term(parse_term("[H | T]")) == "[H | T]"

    def test_tuple(self):
        assert format_term(parse_term("{1, a}")) == "{1, a}"

    def test_operators_respect_precedence(self):
        assert format_term(parse_term("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert format_term(parse_term("1 + 2 * 3")) == "1 + 2 * 3"

    def test_assignment(self):
        assert format_term(parse_term("X := Y + 1")) == "X := Y + 1"

    def test_placement(self):
        assert format_term(parse_term("f(X) @ random")) == "f(X) @ random"

    def test_negative_number(self):
        assert format_term(-1) == "-1"
        assert format_term(parse_term("f(-1)")) == "f(-1)"

    def test_bound_vars_print_values(self):
        v = Var("X")
        v.bind(Struct("f", (1,)))
        assert format_term(v) == "f(1)"

    def test_distinct_vars_same_name_uniquified(self):
        a, b = Var("X"), Var("X")
        text = format_term(Struct("f", (a, b)))
        reparsed = parse_term(text)
        assert reparsed.args[0] is not reparsed.args[1]


class TestFormatRule:
    def test_fact(self):
        assert format_rule(parse_rule("consumer([]).")) == "consumer([])."

    def test_rule_with_guard(self):
        text = format_rule(parse_rule("p(N) :- N > 0 | q(N)."))
        rule = parse_rule(text)
        assert len(rule.guards) == 1
        assert len(rule.body) == 1


def _roundtrip_rule(rule: Rule) -> Rule:
    return parse_rule(format_rule(rule))


def _rules_equal(a: Rule, b: Rule) -> bool:
    # Compare by renaming both to canonical structure via format.
    return format_rule(a) == format_rule(b)


class TestRoundTrip:
    def test_figure1_roundtrip(self):
        from tests.helpers import FIGURE1_SOURCE

        p = parse_program(FIGURE1_SOURCE)
        q = parse_program(format_program(p))
        assert format_program(p) == format_program(q)

    def test_motif_libraries_roundtrip(self):
        from repro.motifs.server import MERGE_LIBRARY, PORT_LIBRARY
        from repro.motifs.tree_reduce2 import TREE_REDUCE_LIBRARY
        from repro.motifs.scheduler import FLAT_LIBRARY, HIER_LIBRARY

        for source in (PORT_LIBRARY, MERGE_LIBRARY, TREE_REDUCE_LIBRARY,
                       FLAT_LIBRARY, HIER_LIBRARY):
            p = parse_program(source)
            text = format_program(p)
            q = parse_program(text)
            assert format_program(q) == text


# ---------------------------------------------------------------------------
# Property: format ∘ parse is the identity on rendered text (fixed point
# after one round), for randomly generated terms.
# ---------------------------------------------------------------------------

_atom_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_var_names = st.sampled_from(["X", "Y", "Z", "Acc", "V1", "_tmp"])


def _terms(depth: int = 3) -> st.SearchStrategy:
    base = st.one_of(
        st.integers(min_value=-1000, max_value=1000),
        st.floats(min_value=-100, max_value=100, allow_nan=False).map(
            lambda f: round(f, 3)
        ),
        _atom_names.map(Atom),
        st.text(alphabet=string.ascii_letters + " ", max_size=8),
        _var_names.map(Var),
    )
    if depth == 0:
        return base
    sub = _terms(depth - 1)
    return st.one_of(
        base,
        st.builds(
            lambda name, args: Struct(name, tuple(args)),
            _atom_names,
            st.lists(sub, min_size=1, max_size=3),
        ),
        st.lists(sub, max_size=3).map(
            lambda items: _mk_list(items)
        ),
        st.lists(sub, max_size=3).map(Tup),
    )


def _mk_list(items: list) -> Term:
    out: Term = NIL
    for item in reversed(items):
        out = Cons(item, out)
    return out


@given(_terms())
@settings(max_examples=200, deadline=None)
def test_term_roundtrip_property(term):
    text = format_term(term)
    reparsed = parse_term(text)
    assert format_term(reparsed) == text


@given(_terms())
@settings(max_examples=100, deadline=None)
def test_ground_terms_roundtrip_structurally(term):
    from repro.strand.terms import term_vars

    if term_vars(term):
        return  # structural equality is only meaningful for ground terms
    reparsed = parse_term(format_term(term))
    assert term_eq(term, reparsed)
