"""The compile layer: symbol tables, plans, and first-argument indexing.

The load-bearing property: indexed rule selection must be observationally
identical to the seed engine's linear scan — same committed rule (the first
*textual* match), same suspension variables, same definite failures — on
arbitrary programs and goals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strand import parse_program, run_query
from repro.strand.arith import Suspend
from repro.strand.compile import (
    COMPILE_STATS,
    CompiledProcedure,
    compile_program,
    compile_template,
    symbol_table,
)
from repro.strand.match import MatchResult, eval_guards, match_head
from repro.strand.program import Procedure, Rule
from repro.strand.terms import Atom, Cons, NIL, Struct, Tup, Var, deref


# ---------------------------------------------------------------------------
# Reference selector: the seed engine's linear scan, verbatim semantics
# ---------------------------------------------------------------------------

def _goal_var_ids(term):
    ids = set()
    stack = [term]
    while stack:
        t = deref(stack.pop())
        tt = type(t)
        if tt is Var:
            ids.add(id(t))
        elif tt is Struct or tt is Tup:
            stack.extend(t.args)
        elif tt is Cons:
            stack.append(t.head)
            stack.append(t.tail)
    return ids


def reference_select(rules, goal):
    """("commit", index) | ("suspend", {blocked goal-var ids}) | ("fail",)

    Guards may also block on rule-fresh variables; those have per-run
    identities, so the comparison is restricted to variables of the goal
    (the only ones a binding can ever wake).
    """
    blocked = []
    for index, rule in enumerate(rules):
        m = match_head(rule.head, goal)
        if m.status == MatchResult.FAILED:
            continue
        if m.status == MatchResult.SUSPENDED:
            blocked.extend(m.blocked)
            continue
        g = eval_guards(rule.guards, m.env)
        if g.status == MatchResult.FAILED:
            continue
        if g.status == MatchResult.SUSPENDED:
            blocked.extend(g.blocked)
            continue
        return ("commit", index)
    if blocked:
        goal_vars = _goal_var_ids(goal)
        return ("suspend", frozenset(id(v) for v in blocked) & goal_vars)
    return ("fail",)


def compiled_select(compiled: CompiledProcedure, goal):
    try:
        selected = compiled.select(goal.args)
    except Suspend as s:
        goal_vars = _goal_var_ids(goal)
        return ("suspend",
                frozenset(id(deref(v)) for v in s.variables) & goal_vars)
    if selected is None:
        return ("fail",)
    return ("commit", selected[0].order)


# Head-pattern strategy: atoms, numbers, strings, vars, and nested
# structures sharing a small vocabulary so collisions are common.
_ATOMS = [Atom("a"), Atom("b"), Atom("c"), NIL]


def _patterns(depth):
    leaf = st.one_of(
        st.sampled_from(_ATOMS),
        st.integers(min_value=0, max_value=3),
        st.sampled_from([1.0, 2.5]),
        st.sampled_from(["s1", "s2"]),
        st.builds(lambda: Var()),
    )
    if depth == 0:
        return leaf
    sub = _patterns(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda a: Struct("f", (a,)), sub),
        st.builds(lambda a, b: Struct("g", (a, b)), sub, sub),
        st.builds(Cons, sub, sub),
        st.builds(lambda a: Tup([a]), sub),
    )


_GUARDS = st.sampled_from([None, (">", 1), ("<", 3), ("==", Atom("a"))])


@st.composite
def _procedures(draw):
    n_rules = draw(st.integers(min_value=1, max_value=8))
    proc = Procedure("p", 2)
    for i in range(n_rules):
        pat = draw(_patterns(2))
        second = Var("X")
        out = Var("Out")
        guard_spec = draw(_GUARDS)
        guards = []
        if guard_spec is not None:
            name, operand = guard_spec
            guards = [Struct(name, (second, operand))]
        head = Struct("p", (pat, draw(st.sampled_from([second, out]))))
        proc.add(Rule(head=head, guards=guards, body=[]))
    return proc


@st.composite
def _goals(draw):
    first = draw(_patterns(2))
    second = draw(st.one_of(
        st.integers(min_value=0, max_value=4),
        st.sampled_from(_ATOMS),
        st.builds(lambda: Var()),
    ))
    return Struct("p", (first, second))


class TestIndexedEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(_procedures(), _goals())
    def test_indexed_selection_matches_linear_and_reference(self, proc, goal):
        indexed = CompiledProcedure(proc, index=True)
        linear = CompiledProcedure(proc, index=False)
        expected = reference_select(proc.rules, goal)
        assert compiled_select(linear, goal) == expected
        assert compiled_select(indexed, goal) == expected

    def test_var_headed_rules_stay_in_every_bucket(self):
        proc = Procedure("p", 1)
        proc.add(Rule(head=Struct("p", (Atom("a"),)), body=[]))
        wildcard = Rule(head=Struct("p", (Var("X"),)), body=[])
        proc.add(wildcard)
        proc.add(Rule(head=Struct("p", (Atom("b"),)), body=[]))
        compiled = CompiledProcedure(proc, index=True)
        assert compiled.indexed
        for key, bucket in compiled.buckets.items():
            assert any(r.rule is wildcard for r in bucket), key
        # Textual order inside the bucket: a-rule before the wildcard.
        a_bucket = compiled.buckets[("a", "a")]
        assert [r.order for r in a_bucket] == [0, 1]
        # Unseen key → only the wildcard can match.
        assert [r.order for r in compiled.candidates((Atom("zzz"),))] == [1]
        # Unbound first argument → the full rule list, in order.
        assert [r.order for r in compiled.candidates((Var(),))] == [0, 1, 2]

    def test_commit_order_preserved_within_bucket(self):
        # Two rules with the same key: the textually-first one commits.
        src = """
        p(k, Out) :- Out := first.
        p(k, Out) :- Out := second.
        """
        result = run_query(parse_program(src), "p(k, Out)")
        assert deref(result.bindings["Out"]) is Atom("first")

    def test_numeric_keys_cross_int_float(self):
        src = """
        p(1, Out) :- Out := one.
        p(2, Out) :- Out := two.
        """
        program = parse_program(src)
        assert deref(run_query(program, "p(1.0, Out)")["Out"]) is Atom("one")
        assert deref(run_query(program, "p(2, Out)")["Out"]) is Atom("two")


class TestCompileCache:
    def test_same_program_compiles_once(self):
        program = parse_program("p(a).\np(b).")
        first = compile_program(program)
        hits = COMPILE_STATS["hits"]
        second = compile_program(program)
        assert second is first
        assert COMPILE_STATS["hits"] == hits + 1

    def test_indexed_and_linear_cached_separately(self):
        program = parse_program("p(a).\np(b).")
        indexed = compile_program(program, index=True)
        linear = compile_program(program, index=False)
        assert indexed is not linear
        assert compile_program(program, index=True) is indexed
        assert compile_program(program, index=False) is linear

    def test_mutation_invalidates(self):
        program = parse_program("p(a).")
        first = compile_program(program)
        program.add_rule(parse_program("p(b).").procedure("p", 1).rules[0])
        second = compile_program(program)
        assert second is not first
        assert len(second.procedure(("p", 1)).rules) == 2


class TestSymbolTable:
    def test_interned_indicators_are_shared(self):
        program = parse_program("go :- work, work.\nwork.")
        table = symbol_table(program)
        assert table.intern("work", 0) is table.intern("work", 0)
        assert ("go", 0) in table and ("work", 0) in table
        assert table.callees(("go", 0)) == (("work", 0), ("work", 0))

    def test_calls_look_through_placement(self):
        program = parse_program("go :- work @ 2.\nwork.")
        table = symbol_table(program)
        assert table.callees(("go", 0)) == (("work", 0),)

    def test_counts_match_program(self):
        program = parse_program("""
        go(N) :- N > 0 | work, go(N).
        go(0).
        work.
        """)
        table = symbol_table(program)
        assert table.total_rules() == program.rule_count()
        assert table.total_goals() == program.goal_count()

    def test_cached_per_version(self):
        program = parse_program("p.")
        first = symbol_table(program)
        assert symbol_table(program) is first
        program.add_rule(parse_program("q.").procedure("q", 0).rules[0])
        assert symbol_table(program) is not first


class TestTemplates:
    def test_ground_structs_are_shared(self):
        term = Struct("point", (1, 2))
        build = compile_template(term)
        assert build({}, {}) is term

    def test_tuples_are_never_shared(self):
        # Tup cells are mutable (put_arg), so each instantiation is fresh.
        term = Tup([1, 2])
        build = compile_template(term)
        first = build({}, {})
        second = build({}, {})
        assert first is not second and first is not term

    def test_fresh_vars_shared_across_goals_of_a_rule(self):
        shared = Var("S")
        build_one = compile_template(Struct("f", (shared,)))
        build_two = compile_template(Struct("g", (shared,)))
        env, fresh = {}, {}
        one = build_one(env, fresh)
        two = build_two(env, fresh)
        assert one.args[0] is two.args[0]


class TestEngineIndexingFlag:
    def test_linear_mode_semantics_identical(self):
        src = """
        classify(0, Out) :- Out := zero.
        classify(N, Out) :- N > 0 | Out := pos.
        classify(N, Out) :- N < 0 | Out := neg.
        """
        program = parse_program(src)
        for value, expect in ((0, "zero"), (7, "pos"), (-2, "neg")):
            on = run_query(program, f"classify({value}, Out)", indexing=True)
            off = run_query(program, f"classify({value}, Out)", indexing=False)
            assert deref(on.bindings["Out"]) is Atom(expect)
            assert deref(off.bindings["Out"]) is Atom(expect)
            assert on.metrics.reductions == off.metrics.reductions
