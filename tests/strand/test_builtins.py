"""Unit tests for body builtins (assignment, tuples, ports, merge...)."""

import pytest

from repro.errors import StrandError
from repro.strand.terms import Atom, deref, iter_list, term_eq
from tests.helpers import run


class TestAssignment:
    def test_structural(self):
        res = run("p(V) :- V := f(1, [2]).", "p(V)")
        from repro.strand.parser import parse_term

        assert term_eq(deref(res["V"]), parse_term("f(1, [2])"))

    def test_arithmetic_rhs_evaluated(self):
        assert deref(run("p(V) :- V := 2 + 3 * 4.", "p(V)")["V"]) == 14

    def test_aliasing_two_unbound(self):
        res = run("p(A, B) :- A := B, B := 9.", "p(A, B)")
        assert deref(res["A"]) == 9

    def test_arith_waits_for_operands(self):
        res = run("p(V) :- V := X + 1, X := 41.", "p(V)")
        assert deref(res["V"]) == 42

    def test_non_arith_struct_not_evaluated(self):
        res = run("p(V) :- V := pair(1 + 1, a).", "p(V)")
        value = deref(res["V"])
        # The outer struct is data; inner arithmetic inside data is also
        # preserved structurally (only top-level arith RHS evaluates).
        assert value.functor == "pair"


class TestTuples:
    def test_make_tuple_and_length(self):
        res = run("p(N) :- make_tuple(5, T), length(T, N).", "p(N)")
        assert deref(res["N"]) == 5

    def test_put_arg_then_arg(self):
        res = run("p(V) :- make_tuple(2, T), put_arg(1, T, hi), arg(1, T, V).", "p(V)")
        assert deref(res["V"]) is Atom("hi")

    def test_put_arg_out_of_range(self):
        with pytest.raises(StrandError):
            run("p :- make_tuple(2, T), put_arg(3, T, x).", "p")

    def test_put_arg_twice_fails(self):
        with pytest.raises(StrandError):
            run("p :- make_tuple(1, T), put_arg(1, T, a), put_arg(1, T, b).", "p")

    def test_length_of_list(self):
        assert deref(run("p(N) :- length([a, b, c], N).", "p(N)")["N"]) == 3

    def test_length_of_literal_tuple(self):
        assert deref(run("p(N) :- length({a, b}, N).", "p(N)")["N"]) == 2

    def test_arg_on_struct(self):
        assert deref(run("p(V) :- arg(2, f(a, b), V).", "p(V)")["V"]) is Atom("b")

    def test_make_tuple_negative(self):
        with pytest.raises(StrandError):
            run("p :- make_tuple(-1, T).", "p")


class TestRandNum:
    def test_in_range(self):
        res = run("p(R) :- rand_num(10, R).", "p(R)", seed=5)
        assert 1 <= deref(res["R"]) <= 10

    def test_deterministic_per_seed(self):
        a = deref(run("p(R) :- rand_num(1000, R).", "p(R)", seed=5)["R"])
        b = deref(run("p(R) :- rand_num(1000, R).", "p(R)", seed=5)["R"])
        c = deref(run("p(R) :- rand_num(1000, R).", "p(R)", seed=6)["R"])
        assert a == b
        assert a != c  # overwhelmingly likely

    def test_bad_bound(self):
        with pytest.raises(StrandError):
            run("p(R) :- rand_num(0, R).", "p(R)")


class TestPorts:
    def test_open_send_close(self):
        src = """
        p(Out) :- open_port(P, S), send_port(P, a), send_port(P, b),
                  close_port(P), collect(S, Out).
        collect([X | Xs], Out) :- Out := [X | Out1], collect(Xs, Out1).
        collect([], Out) :- Out := [].
        """
        res = run(src, "p(Out)")
        items = [deref(x) for x in iter_list(res["Out"])]
        assert items == [Atom("a"), Atom("b")]

    def test_send_after_close_fails(self):
        with pytest.raises(StrandError):
            run("p :- open_port(P, _), close_port(P), send_port(P, x).", "p")

    def test_distribute_routes_by_index(self):
        src = """
        p(Out) :- open_port(P1, S1), open_port(P2, S2),
                  make_tuple(2, DT), put_arg(1, DT, P1), put_arg(2, DT, P2),
                  distribute(2, hello, DT),
                  close_port(P1), close_port(P2),
                  first(S2, Out).
        first([X | _], Out) :- Out := X.
        """
        res = run(src, "p(Out)")
        assert deref(res["Out"]) is Atom("hello")

    def test_distribute_bad_index(self):
        src = """
        p :- open_port(P, _), make_tuple(1, DT), put_arg(1, DT, P),
             distribute(2, x, DT).
        """
        with pytest.raises(StrandError):
            run(src, "p")

    def test_message_can_carry_unbound_vars(self):
        # The backchannel pattern: send a message containing a variable,
        # the receiver binds it.
        src = """
        p(V) :- open_port(P, S), send_port(P, ask(V)), close_port(P), serve(S).
        serve([ask(X) | Xs]) :- X := 42, serve(Xs).
        serve([]).
        """
        assert deref(run(src, "p(V)")["V"]) == 42


class TestMerge:
    def test_merges_all_items(self):
        src = """
        p(N) :- gen(3, A), gen(2, B), merge(A, B, M), count(M, N).
        gen(K, S) :- K > 0 | S := [K | S1], K1 := K - 1, gen(K1, S1).
        gen(0, S) :- S := [].
        count([_ | Xs], N) :- count(Xs, N1), N := N1 + 1.
        count([], N) :- N := 0.
        """
        assert deref(run(src, "p(N)")["N"]) == 5

    def test_forwards_tail_on_nil(self):
        src = """
        p(Out) :- merge([], [a, b], Out).
        """
        res = run(src, "p(Out)")
        items = [deref(x) for x in iter_list(res["Out"])]
        assert items == [Atom("a"), Atom("b")]

    def test_interleaves_incrementally(self):
        # Merge output is consumable before either input closes.
        src = """
        p(First) :- merge(A, B, M), A := [x | A1], first(M, First),
                    A1 := [], B := [].
        first([X | _], Out) :- Out := X.
        """
        assert deref(run(src, "p(F)")["F"]) is Atom("x")


class TestInstrumentation:
    def test_value_counters(self):
        src = """
        p :- note_value_produced, note_value_produced, note_value_consumed.
        """
        res = run(src, "p")
        procs = res.engine.machine.procs
        assert procs[0].peak_live_values == 2
        assert procs[0].live_values == 1
