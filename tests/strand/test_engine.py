"""Engine tests: reduction, synchronization, failure modes, placement."""

import pytest

from repro.errors import (
    DeadlockError,
    DoubleAssignmentError,
    PragmaError,
    ProcessFailureError,
    StrandError,
    UnknownProcedureError,
)
from repro.machine import Machine
from repro.strand import parse_program, run_query
from repro.strand.terms import deref
from tests.helpers import FIGURE1_SOURCE, SEQ_REDUCE_SOURCE, run


class TestFigure1:
    """The paper's Figure 1 producer/consumer."""

    def test_runs_to_completion(self):
        res = run(FIGURE1_SOURCE, "go(4)")
        assert res.metrics.reductions > 0

    def test_zero_messages(self):
        run(FIGURE1_SOURCE, "go(0)")

    def test_synchronous_rendezvous(self):
        # Producer sends N messages and waits for each acknowledgement:
        # reductions grow linearly in N.
        small = run(FIGURE1_SOURCE, "go(2)").metrics.reductions
        large = run(FIGURE1_SOURCE, "go(12)").metrics.reductions
        assert large - small == 10 * (
            (run(FIGURE1_SOURCE, "go(3)").metrics.reductions - small)
        )

    def test_consumer_acknowledges(self):
        # The stream variable ends up fully acknowledged: run again with a
        # variable query to observe the stream.
        source = FIGURE1_SOURCE + "\nobserve(N, Xs) :- producer(N, Xs, sync), consumer(Xs).\n"
        res = run(source, "observe(3, Xs)")
        from repro.strand.terms import iter_list, Atom

        items = [deref(x) for x in iter_list(res["Xs"])]
        assert items == [Atom("sync")] * 3


class TestReduction:
    def test_sequential_tree_reduce(self):
        res = run(
            SEQ_REDUCE_SOURCE,
            "reduce(tree(add, tree(mul, leaf(3), leaf(2)), leaf(4)), V)",
        )
        assert deref(res["V"]) == 10

    def test_rule_order_commit(self):
        # First matching rule commits.
        res = run("pick(X, V) :- V := first.\npick(X, V) :- V := second.",
                  "pick(1, V)")
        from repro.strand.terms import Atom

        assert deref(res["V"]) is Atom("first")

    def test_guard_selects_rule(self):
        src = """
        sign(N, S) :- N > 0 | S := pos.
        sign(N, S) :- N < 0 | S := neg.
        sign(0, S) :- S := zero.
        """
        from repro.strand.terms import Atom

        assert deref(run(src, "sign(5, S)")["S"]) is Atom("pos")
        assert deref(run(src, "sign(-5, S)")["S"]) is Atom("neg")
        assert deref(run(src, "sign(0, S)")["S"]) is Atom("zero")

    def test_dataflow_order_independence(self):
        # Consumer spawned before producer: suspension handles it.
        src = """
        go(V) :- use(X, V), make(X).
        make(X) :- X := 41.
        use(X, V) :- V := X + 1.
        """
        assert deref(run(src, "go(V)")["V"]) == 42

    def test_deep_recursion_iterative(self):
        src = """
        count(N, Out) :- N > 0 | N1 := N - 1, count(N1, Out).
        count(0, Out) :- Out := done.
        """
        res = run(src, "count(5000, Out)")
        from repro.strand.terms import Atom

        assert deref(res["Out"]) is Atom("done")


class TestFailureModes:
    def test_process_failure(self):
        with pytest.raises(ProcessFailureError):
            run("p(1).", "p(2)")

    def test_unknown_procedure(self):
        with pytest.raises(UnknownProcedureError):
            run("p(1).", "q(1)")

    def test_deadlock_detection(self):
        with pytest.raises(DeadlockError) as err:
            run("p(X) :- X > 0 | q.\nq.", "p(Y)")
        assert "suspended" in str(err.value)

    def test_double_assignment(self):
        with pytest.raises(DoubleAssignmentError):
            run("p :- X := 1, X := 2.", "p")

    def test_identical_reassignment_tolerated(self):
        run("p(V) :- V := 1, V := 1.", "p(V)")

    def test_pragma_reaching_engine(self):
        with pytest.raises(PragmaError):
            run("p :- q @ random.\nq.", "p")

    def test_reduction_budget(self):
        src = "loop :- loop."
        program = parse_program(src)
        with pytest.raises(StrandError, match="budget"):
            run_query(program, "loop", max_reductions=100)


class TestPlacement:
    def test_at_spawns_on_processor(self):
        src = "go :- work @ 3.\nwork."
        res = run(src, "go", processors=4)
        assert res.metrics.busy[2] > 0

    def test_at_wraps_modulo(self):
        src = "go :- work @ 7.\nwork."
        res = run(src, "go", processors=4)  # 7 -> processor 3
        assert res.metrics.busy[2] > 0

    def test_remote_spawn_counts_message(self):
        src = "go :- work @ 2.\nwork."
        res = run(src, "go", processors=2)
        assert res.metrics.sends == 1

    def test_local_spawn_no_message(self):
        src = "go :- work @ 1.\nwork."
        res = run(src, "go", processors=2)
        assert res.metrics.sends == 0

    def test_placement_by_expression(self):
        src = "go(N) :- work @ N + 1.\nwork."
        res = run(src, "go(1)", processors=4)
        assert res.metrics.busy[1] > 0

    def test_remote_binding_latency(self):
        # A value produced remotely arrives later than a local one.
        src = """
        golocal(V) :- make(V) @ 1.
        goremote(V) :- make(V) @ 2.
        make(V) :- V := 1.
        """
        local = run(src, "golocal(V)", processors=2).metrics.makespan
        remote = run(src, "goremote(V)", processors=2).metrics.makespan
        assert remote > local


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = run(SEQ_REDUCE_SOURCE,
                "reduce(tree(add, leaf(1), tree(mul, leaf(2), leaf(3))), V)",
                processors=4, seed=9)
        b = run(SEQ_REDUCE_SOURCE,
                "reduce(tree(add, leaf(1), tree(mul, leaf(2), leaf(3))), V)",
                processors=4, seed=9)
        assert a.metrics.makespan == b.metrics.makespan
        assert a.metrics.busy == b.metrics.busy

    def test_output_collection(self):
        res = run('p :- write(f(1)), write("done").', "p")
        assert res.output == ["f(1)", '"done"']


class TestMetricsAccounting:
    def test_busy_equals_reduction_costs(self):
        res = run("p. q :- p, p.", "q")
        assert res.metrics.total_busy == res.metrics.reductions  # unit costs

    def test_library_cost_split(self):
        src = "lib_thing :- helper.\nhelper.\nuser_thing."
        program = parse_program(src)
        result = run_query(
            program, "lib_thing, user_thing",
            machine=Machine(1),
            library=[("lib_thing", 0), ("helper", 0)],
        )
        assert result.metrics.library_cost == 2.0
        assert result.metrics.user_cost == 1.0

    def test_watched_tasks_high_water(self):
        src = """
        go :- eval(1, A), eval(2, B), fire(A, B).
        fire(A, B) :- A := go, B := go.
        eval(N, T) :- T == go | true.
        """
        program = parse_program(src)
        result = run_query(program, "go", machine=Machine(1),
                           watched=[("eval", 2)])
        # Both evals are spawned and pending before fire releases them.
        assert result.metrics.max_peak_live_tasks == 2
