"""Rule provenance: structural rule keys, motif stamping of library and
transformation-produced rules, and the compiled ``motif_of`` map the
engine uses to attribute spawned goals."""

from repro.core.motif import Motif
from repro.core.registry import get_motif
from repro.strand.compile import compile_program
from repro.strand.parser import parse_program
from repro.strand.program import rule_key

SOURCE = """
go(N, V) :- work(N, V).
work(N, V) :- N > 0 | V := N * 2.
work(0, V) :- V := 0.
"""

ALPHA_RENAMED = """
go(A, B) :- work(A, B).
work(A, B) :- A > 0 | B := A * 2.
work(0, Out) :- Out := 0.
"""


class TestRuleKey:
    def test_alpha_renamed_rules_have_equal_keys(self):
        rules_a = list(parse_program(SOURCE).rules())
        rules_b = list(parse_program(ALPHA_RENAMED).rules())
        for a, b in zip(rules_a, rules_b):
            assert rule_key(a) == rule_key(b)

    def test_structurally_different_rules_differ(self):
        rules = list(parse_program(SOURCE).rules())
        keys = {rule_key(r) for r in rules}
        assert len(keys) == len(rules)

    def test_rename_preserves_both_key_and_tag(self):
        rule = next(iter(parse_program(SOURCE).rules()))
        rule.motif = "m"
        fresh = rule.rename()
        assert rule_key(fresh) == rule_key(rule)
        assert fresh.motif == "m"


class TestLibraryStamping:
    def test_library_rules_are_stamped_with_the_motif_name(self):
        motif = Motif("mylib", library="helper(X, Y) :- Y := X + 1.")
        assert all(r.motif == "mylib" for r in motif.library.rules())

    def test_stamping_does_not_overwrite_an_existing_tag(self):
        inner = Motif("inner", library="helper(X, Y) :- Y := X + 1.")
        outer = Motif("outer", library=inner.library)
        assert all(r.motif == "inner" for r in outer.library.rules())


class TestTransformationStamping:
    def test_untouched_user_rules_stay_untagged(self):
        motif = get_motif("tree-reduce-1")
        applied = motif.apply(parse_program(SOURCE))
        user = [r for r in applied.program.rules()
                if r.head.functor in ("go", "work")]
        assert user and all(r.motif is None for r in user)

    def test_server_transformation_stamps_rewritten_rules(self):
        from repro.apps.arithmetic import EVAL_SOURCE
        from repro.core.api import as_application
        from repro.motifs.tree_reduce1 import tree_reduce_1

        application, _ = as_application(EVAL_SOURCE)
        applied = tree_reduce_1(termination=False).apply(application)
        tags = {r.motif for r in applied.program.rules()}
        # The outermost rewriter wins for rewritten rules; rules it passed
        # through keep their prior tag (None = user).
        assert "server[ports]" in tags
        assert None in tags


class TestCompiledMotifMap:
    def test_motif_of_maps_indicators_to_first_rule_tags(self):
        program = parse_program(SOURCE)
        for rule in program.rules():
            if rule.head.functor == "work":
                rule.motif = "m"
        compiled = compile_program(program)
        assert compiled.motif_of[("work", 2)] == "m"
        assert compiled.motif_of[("go", 2)] is None

    def test_traced_run_attributes_library_reductions(self):
        from repro.apps.arithmetic import eval_arith_node, paper_example_tree
        from repro.core.api import reduce_tree
        from repro.machine import Machine

        machine = Machine(4, seed=0, trace=True)
        reduce_tree(paper_example_tree(), eval_arith_node,
                    machine=machine, strategy="tr1")
        reduces = machine.trace.of_kind("reduce")
        motifs = {e.motif for e in reduces}
        assert "server[ports]" in motifs
        assert "" in motifs  # user code reduces untagged
        # server/2 reductions carry the server tag specifically.
        servers = [e for e in reduces if e.detail == "server"]
        assert servers and all(e.motif == "server[ports]" for e in servers)
