"""Stream helper tests."""

from repro.strand.streams import PortRef, collect_stream, stream_items
from repro.strand.terms import Atom, Cons, NIL, Var


class TestStreamItems:
    def test_closed_stream(self):
        s = Cons(1, Cons(2, NIL))
        items, tail = stream_items(s)
        assert items == [1, 2]
        assert tail is NIL

    def test_open_stream(self):
        t = Var("T")
        s = Cons(1, t)
        items, tail = stream_items(s)
        assert items == [1]
        assert tail is t

    def test_through_bound_vars(self):
        v = Var("S")
        v.bind(Cons(Atom("a"), NIL))
        items, tail = stream_items(v)
        assert items == [Atom("a")]

    def test_collect_with_convert(self):
        s = Cons(1, Cons(2, NIL))
        assert collect_stream(s, lambda t: t * 2) == [2, 4]

    def test_empty(self):
        assert collect_stream(NIL) == []


class TestPortRef:
    def test_initial_state(self):
        tail = Var("T")
        port = PortRef(tail, owner=3, label="inbox")
        assert port.tail is tail
        assert port.owner == 3
        assert not port.closed
        assert "inbox" in repr(port)
