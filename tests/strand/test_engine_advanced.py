"""Advanced engine behaviour: quiescence, services, placement edge cases,
cross-processor interactions, and failure injection."""

import pytest

from repro.errors import DeadlockError, DoubleAssignmentError, StrandError
from repro.machine import Machine
from repro.strand import parse_program, run_query
from repro.strand.engine import StrandEngine
from repro.strand.terms import Atom, deref


class TestQuiescence:
    SERVER = """
    go(Out) :- open_port(P, S), feed(3, P), loop(S, 0, Out).
    feed(N, P) :- N > 0 | send_port(P, item), N1 := N - 1, feed(N1, P).
    feed(0, _).
    loop([item | In], Acc, Out) :- Acc1 := Acc + 1, loop(In, Acc1, Out).
    loop([], Acc, Out) :- Out := Acc.
    """

    def test_service_quiescence_closes_ports(self):
        program = parse_program(self.SERVER)
        result = run_query(program, "go(Out)", machine=Machine(1),
                           services=[("loop", 3)])
        assert deref(result.bindings["Out"]) == 3
        assert result.engine._ports_closed

    def test_without_service_declaration_deadlocks(self):
        program = parse_program(self.SERVER)
        with pytest.raises(DeadlockError):
            run_query(program, "go(Out)", machine=Machine(1))

    def test_auto_close_disabled_deadlocks(self):
        program = parse_program(self.SERVER)
        with pytest.raises(DeadlockError):
            run_query(program, "go(Out)", machine=Machine(1),
                      services=[("loop", 3)], auto_close_ports=False)

    def test_non_service_suspension_still_deadlocks(self):
        # A stuck non-service process prevents the port-close shortcut.
        program = parse_program(self.SERVER + "\nstuck(X) :- X > 0 | t.\nt.")
        with pytest.raises(DeadlockError):
            run_query(program, "go(Out), stuck(Y)", machine=Machine(1),
                      services=[("loop", 3)])


class TestPlacementEdges:
    def test_placement_waits_for_processor_expression(self):
        src = """
        go :- work @ Where, Where := 2.
        work.
        """
        result = run_query(parse_program(src), "go", machine=Machine(2))
        assert result.metrics.busy[1] > 0

    def test_chained_placement_uses_innermost_goal(self):
        src = "go :- work @ 1 @ 2.\nwork."
        result = run_query(parse_program(src), "go", machine=Machine(2))
        assert result.metrics.reductions > 0

    def test_zero_arity_goal_placement(self):
        src = "go :- halted @ 2.\nhalted."
        result = run_query(parse_program(src), "go", machine=Machine(2))
        assert result.metrics.busy[1] > 0


class TestCrossProcessor:
    def test_remote_double_assignment_detected(self):
        src = """
        go :- both(X), X := 1.
        both(X) :- assign_remote(X) @ 2.
        assign_remote(X) :- X := 2.
        """
        with pytest.raises(DoubleAssignmentError):
            run_query(parse_program(src), "go", machine=Machine(2))

    def test_hops_accumulate_on_ring(self):
        src = "go :- work @ 3.\nwork."
        machine = Machine(4, topology="ring")
        result = run_query(parse_program(src), "go", machine=machine)
        assert result.metrics.hops == 2  # 1 -> 3 on a 4-ring

    def test_port_send_counts_by_owner(self):
        src = """
        go(Out) :- open_remote(P), send_port(P, x), send_port(P, y), Out := sent.
        open_remote(P) :- mk(P) @ 2.
        mk(P) :- open_port(P, S), drain(S).
        drain([_ | In]) :- drain(In).
        drain([]).
        """
        machine = Machine(2)
        result = run_query(parse_program(src), "go(Out)", machine=machine,
                           services=[("drain", 1)])
        # Two sends from proc 1 to the port owned by proc 2.
        assert result.metrics.sends >= 2


class TestEngineAPI:
    def test_spawn_rejects_non_goal(self):
        engine = StrandEngine(parse_program("p."))
        with pytest.raises(StrandError):
            engine.spawn(42)

    def test_spawn_accepts_atom(self):
        engine = StrandEngine(parse_program("p."))
        engine.spawn(Atom("p"))
        engine.run()

    def test_output_and_bindings_roundtrip(self):
        program = parse_program('p(X) :- X := done, write("side effect").')
        result = run_query(program, "p(X)")
        assert result.output == ['"side effect"']
        assert result["X"] is Atom("done")
        assert result.value("X") is Atom("done")

    def test_run_twice_is_safe(self):
        # A second run() finds no work and returns the same metrics.
        engine = StrandEngine(parse_program("p."))
        engine.spawn(Atom("p"))
        first = engine.run()
        second = engine.run()
        assert first.reductions == second.reductions

    def test_watched_not_in_program_is_harmless(self):
        program = parse_program("p.")
        result = run_query(program, "p", watched=[("ghost", 9)])
        assert result.metrics.max_peak_live_tasks == 0


class TestGuardsAdvanced:
    def test_otherwise_guard(self):
        src = """
        classify(N, C) :- N > 10 | C := big.
        classify(_, C) :- otherwise | C := small.
        """
        assert deref(run_query(parse_program(src), "classify(50, C)")["C"]) is Atom("big")
        assert deref(run_query(parse_program(src), "classify(3, C)")["C"]) is Atom("small")

    def test_guard_on_deep_structure(self):
        src = "p(f(N), Out) :- N > 0 | Out := pos.\np(f(N), Out) :- N =< 0 | Out := neg."
        assert deref(run_query(parse_program(src), "p(f(4), Out)")["Out"]) is Atom("pos")

    def test_multiple_rules_suspend_then_resolve(self):
        src = """
        go(Out) :- pick(X, Out), X := 7.
        pick(X, Out) :- X > 5 | Out := high.
        pick(X, Out) :- X =< 5 | Out := low.
        """
        assert deref(run_query(parse_program(src), "go(Out)")["Out"]) is Atom("high")


class TestMergeNetworkStress:
    def test_many_producers_through_merge_chain(self):
        src = """
        go(Total) :-
            gen(5, A), gen(7, B), gen(3, C),
            merge(A, B, AB), merge(AB, C, All),
            count(All, 0, Total).
        gen(N, S) :- N > 0 | S := [N | S1], N1 := N - 1, gen(N1, S1).
        gen(0, S) :- S := [].
        count([_ | Xs], Acc, T) :- Acc1 := Acc + 1, count(Xs, Acc1, T).
        count([], Acc, T) :- T := Acc.
        """
        result = run_query(parse_program(src), "go(Total)")
        assert deref(result.bindings["Total"]) == 15

    def test_merge_chain_cross_processor(self):
        src = """
        go(Total) :-
            produce(4, A) @ 2,
            produce(4, B) @ 3,
            merge(A, B, All),
            count(All, 0, Total).
        produce(N, S) :- N > 0 | S := [N | S1], N1 := N - 1, produce(N1, S1).
        produce(0, S) :- S := [].
        count([_ | Xs], Acc, T) :- Acc1 := Acc + 1, count(Xs, Acc1, T).
        count([], Acc, T) :- T := Acc.
        """
        result = run_query(parse_program(src), "go(Total)", machine=Machine(3))
        assert deref(result.bindings["Total"]) == 8
