"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.strand.tokenizer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop eof


class TestBasicTokens:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_atom_and_var(self):
        assert kinds("foo Bar _baz")[:-1] == ["atom", "var", "var"]

    def test_underscore_is_var(self):
        assert kinds("_")[0] == "var"

    def test_integers(self):
        toks = tokenize("42 007")
        assert [t.kind for t in toks[:-1]] == ["int", "int"]
        assert [t.text for t in toks[:-1]] == ["42", "007"]

    def test_floats(self):
        assert kinds("3.14")[0] == "float"
        assert kinds("1e5")[0] == "float"
        assert kinds("2.5e-3")[0] == "float"

    def test_int_followed_by_clause_dot(self):
        assert kinds("f(3).")[:-1] == ["atom", "punct", "int", "punct", "punct"]

    def test_strings(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind == "string"
        assert toks[0].text == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb"')[0].text == "a\nb"
        assert tokenize(r'"q\"q"')[0].text == 'q"q'

    def test_quoted_atom(self):
        toks = tokenize("'hello world'")
        assert toks[0].kind == "atom"
        assert toks[0].text == "hello world"

    def test_symbols_longest_match(self):
        assert texts("X := Y") == ["X", ":=", "Y"]
        assert texts("a :- b") == ["a", ":-", "b"]
        assert texts("X =< Y >= Z") == ["X", "=<", "Y", ">=", "Z"]
        assert texts("X =\\= Y") == ["X", "=\\=", "Y"]

    def test_comma_bar_brackets(self):
        assert texts("[a|B]") == ["[", "a", "|", "B", "]"]
        assert texts("{1, 2}") == ["{", "1", ",", "2", "}"]


class TestComments:
    def test_line_comment(self):
        assert texts("a % comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never ends")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"never ends')

    def test_unterminated_quoted_atom(self):
        with pytest.raises(ParseError):
            tokenize("'never ends")


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("abc\n  #")
        assert err.value.line == 2

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("a ~ b")
