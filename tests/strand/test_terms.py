"""Unit tests for the term layer."""

import pytest

from repro.errors import DoubleAssignmentError
from repro.strand.terms import (
    Atom,
    Cons,
    NIL,
    Struct,
    Tup,
    Var,
    deref,
    is_constant,
    is_list_term,
    iter_list,
    list_to_python,
    make_list,
    rename_term,
    term_eq,
    term_size,
    term_vars,
    walk_terms,
)


class TestVar:
    def test_fresh_variable_is_unbound(self):
        v = Var("X")
        assert not v.is_bound
        assert v.name == "X"

    def test_bind_sets_value(self):
        v = Var("X")
        v.bind(42)
        assert v.is_bound
        assert deref(v) == 42

    def test_double_bind_raises(self):
        v = Var("X")
        v.bind(1)
        with pytest.raises(DoubleAssignmentError):
            v.bind(2)

    def test_bind_to_self_raises(self):
        v = Var("X")
        with pytest.raises(DoubleAssignmentError):
            v.bind(v)

    def test_auto_names_are_unique(self):
        assert Var().name != Var().name


class TestAtom:
    def test_interning(self):
        assert Atom("foo") is Atom("foo")

    def test_distinct_names_distinct_atoms(self):
        assert Atom("foo") is not Atom("bar")

    def test_atom_not_equal_to_string(self):
        assert Atom("foo") != "foo"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Atom("foo").name = "bar"

    def test_nil_is_the_empty_list_atom(self):
        assert NIL is Atom("[]")


class TestDeref:
    def test_follows_chain(self):
        a, b = Var("A"), Var("B")
        a.bind(b)
        b.bind(7)
        assert deref(a) == 7

    def test_unbound_returns_var(self):
        v = Var("X")
        assert deref(v) is v

    def test_non_var_passthrough(self):
        assert deref(5) == 5
        assert deref("s") == "s"


class TestLists:
    def test_make_and_iterate(self):
        lst = make_list([1, 2, 3])
        assert list(iter_list(lst)) == [1, 2, 3]

    def test_make_list_empty(self):
        assert make_list([]) is NIL

    def test_list_to_python_with_convert(self):
        lst = make_list([1, 2])
        assert list_to_python(lst, lambda t: t * 10) == [10, 20]

    def test_improper_list_raises(self):
        improper = Cons(1, 2)
        with pytest.raises(ValueError):
            list(iter_list(improper))

    def test_open_list_raises(self):
        open_list = Cons(1, Var("T"))
        with pytest.raises(ValueError):
            list(iter_list(open_list))

    def test_is_list_term(self):
        assert is_list_term(NIL)
        assert is_list_term(Cons(1, NIL))
        assert not is_list_term(42)


class TestTermEq:
    def test_constants(self):
        assert term_eq(1, 1)
        assert term_eq(1, 1.0)
        assert not term_eq(1, 2)
        assert term_eq("a", "a")
        assert not term_eq("a", Atom("a"))

    def test_structs(self):
        a = Struct("f", (1, Atom("x")))
        b = Struct("f", (1, Atom("x")))
        assert term_eq(a, b)
        assert not term_eq(a, Struct("f", (1, Atom("y"))))
        assert not term_eq(a, Struct("g", (1, Atom("x"))))
        assert not term_eq(a, Struct("f", (1,)))

    def test_through_bound_vars(self):
        v = Var("X")
        v.bind(Struct("f", (1,)))
        assert term_eq(v, Struct("f", (1,)))

    def test_distinct_unbound_vars_unequal(self):
        assert not term_eq(Var("X"), Var("Y"))

    def test_same_unbound_var_equal(self):
        v = Var("X")
        assert term_eq(v, v)

    def test_tuples_and_lists(self):
        assert term_eq(Tup([1, 2]), Tup([1, 2]))
        assert not term_eq(Tup([1]), Tup([1, 2]))
        assert term_eq(make_list([1, 2]), make_list([1, 2]))
        assert not term_eq(make_list([1, 2]), make_list([2, 1]))


class TestTermVars:
    def test_collects_in_first_occurrence_order(self):
        x, y = Var("X"), Var("Y")
        t = Struct("f", (x, Struct("g", (y, x))))
        assert term_vars(t) == [x, y]

    def test_skips_bound(self):
        x = Var("X")
        x.bind(1)
        assert term_vars(Struct("f", (x,))) == []

    def test_list_tails(self):
        t = Var("T")
        assert term_vars(Cons(1, t)) == [t]


class TestRename:
    def test_rename_preserves_structure(self):
        x = Var("X")
        t = Struct("f", (x, x, 3))
        r = rename_term(t)
        assert r.functor == "f"
        assert r.args[2] == 3
        assert r.args[0] is r.args[1]  # sharing preserved
        assert r.args[0] is not x  # but fresh

    def test_shared_mapping_across_terms(self):
        x = Var("X")
        mapping = {}
        a = rename_term(Struct("f", (x,)), mapping)
        b = rename_term(Struct("g", (x,)), mapping)
        assert a.args[0] is b.args[0]

    def test_bound_vars_flattened(self):
        x = Var("X")
        x.bind(Struct("h", ()))
        r = rename_term(Struct("f", (x,)))
        assert term_eq(r, Struct("f", (Struct("h", ()),)))


class TestSizeAndWalk:
    def test_term_size(self):
        assert term_size(1) == 1
        assert term_size(Struct("f", (1, 2))) == 3
        assert term_size(make_list([1, 2])) == 5  # 2 cons + 2 items + nil

    def test_walk_visits_everything(self):
        t = Struct("f", (Tup([1]), Cons(2, NIL)))
        kinds = [type(x).__name__ for x in walk_terms(t)]
        assert "Struct" in kinds and "Tup" in kinds and "Cons" in kinds

    def test_is_constant(self):
        assert is_constant(1)
        assert is_constant(1.5)
        assert is_constant("s")
        assert is_constant(Atom("a"))
        assert not is_constant(Var("X"))
        assert not is_constant(Struct("f", ()))
