"""Unit tests for dataflow arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.strand.arith import ArithFail, Suspend, eval_arith, is_arith_expr
from repro.strand.parser import parse_term
from repro.strand.terms import Atom, Struct, Var


class TestEval:
    def test_constants(self):
        assert eval_arith(5) == 5
        assert eval_arith(2.5) == 2.5

    def test_operators(self):
        assert eval_arith(parse_term("1 + 2 * 3")) == 7
        assert eval_arith(parse_term("10 - 4")) == 6
        assert eval_arith(parse_term("7 // 2")) == 3
        assert eval_arith(parse_term("7 / 2")) == 3.5
        assert eval_arith(parse_term("7 mod 3")) == 1
        assert eval_arith(parse_term("-(5)")) == -5

    def test_functions(self):
        assert eval_arith(Struct("abs", (-3,))) == 3
        assert eval_arith(Struct("min", (3, 5))) == 3
        assert eval_arith(Struct("max", (3, 5))) == 5
        assert eval_arith(Struct("truncate", (3.7,))) == 3

    def test_through_bound_vars(self):
        x = Var("X")
        x.bind(4)
        assert eval_arith(Struct("+", (x, 1))) == 5

    def test_suspend_on_unbound(self):
        x = Var("X")
        with pytest.raises(Suspend) as err:
            eval_arith(Struct("+", (x, 1)))
        assert err.value.variables == [x]

    def test_suspend_collects_all_blockers(self):
        x, y = Var("X"), Var("Y")
        with pytest.raises(Suspend) as err:
            eval_arith(Struct("+", (x, y)))
        assert set(err.value.variables) == {x, y}

    def test_atom_operand_fails(self):
        with pytest.raises(ArithFail):
            eval_arith(Struct("+", (Atom("a"), 1)))

    def test_string_operand_fails(self):
        with pytest.raises(ArithFail):
            eval_arith("abc")

    def test_unknown_operator_fails(self):
        with pytest.raises(ArithFail):
            eval_arith(Struct("frob", (1, 2)))

    def test_division_by_zero(self):
        with pytest.raises(ArithFail):
            eval_arith(parse_term("1 / 0"))
        with pytest.raises(ArithFail):
            eval_arith(parse_term("1 // 0"))
        with pytest.raises(ArithFail):
            eval_arith(parse_term("1 mod 0"))


class TestIsArithExpr:
    def test_yes(self):
        assert is_arith_expr(parse_term("1 + 2"))
        assert is_arith_expr(parse_term("X mod Y"))

    def test_no(self):
        assert not is_arith_expr(parse_term("f(1, 2)"))
        assert not is_arith_expr(parse_term("[1, 2]"))
        assert not is_arith_expr(5)
        assert not is_arith_expr(Atom("a"))


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_addition_matches_python(a, b):
    assert eval_arith(Struct("+", (a, b))) == a + b


@given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
def test_divmod_identity(a, b):
    q = eval_arith(Struct("//", (a, b)))
    r = eval_arith(Struct("mod", (a, b)))
    assert q * b + r == a
    assert 0 <= r < b
