"""Failure injection: how the engine behaves when user code misbehaves."""

import pytest

from repro.errors import (
    DeadlockError,
    DoubleAssignmentError,
    ForeignProcedureError,
    ProcessFailureError,
    StrandError,
)
from repro.machine import Machine
from repro.strand import parse_program, run_query
from repro.strand.foreign import ForeignRegistry


class TestForeignFailures:
    def run_with(self, source, query, registry, **kw):
        return run_query(parse_program(source), query,
                         machine=Machine(kw.pop("processors", 1)),
                         foreign=registry, **kw)

    def test_raising_foreign_propagates(self):
        reg = ForeignRegistry()

        def boom(x):
            raise ValueError("injected fault")

        reg.register("boom", 2, boom)
        with pytest.raises(ValueError, match="injected fault"):
            self.run_with("go(V) :- boom(1, V).", "go(V)", reg)

    def test_failure_mid_computation_leaves_no_hang(self):
        # The exception surfaces immediately; the engine does not attempt
        # to continue or hang waiting for the dead call's output.
        reg = ForeignRegistry()
        calls = []

        def flaky(x):
            calls.append(x)
            if x == 3:
                raise RuntimeError("third call dies")
            return x

        reg.register("flaky", 2, flaky)
        src = """
        go :- run(1), run(2), run(3), run(4).
        run(N) :- flaky(N, _Out).
        """
        with pytest.raises(RuntimeError):
            self.run_with(src, "go", reg)
        assert 3 in calls

    def test_foreign_returning_unconvertible_value(self):
        reg = ForeignRegistry()
        reg.register("bad", 2, lambda x: object())
        with pytest.raises(ForeignProcedureError):
            self.run_with("go(V) :- bad(1, V).", "go(V)", reg)

    def test_foreign_cost_function_fault(self):
        reg = ForeignRegistry()
        reg.register("pricey", 2, lambda x: x,
                      cost=lambda x: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            self.run_with("go(V) :- pricey(1, V).", "go(V)", reg)

    def test_improper_list_to_foreign(self):
        reg = ForeignRegistry()
        reg.register("wants_list", 2, sum)
        with pytest.raises(ForeignProcedureError):
            self.run_with("go(V) :- wants_list([1 | 2], V).", "go(V)", reg)


class TestProtocolFaults:
    def test_unknown_message_type_fails_loudly(self):
        # A server receiving a message it has no rule for is a process
        # failure, not a silent drop.
        src = """
        go :- open_port(P, S), send_port(P, mystery), loop(S).
        loop([known_msg | In]) :- loop(In).
        loop([]).
        """
        with pytest.raises(ProcessFailureError):
            run_query(parse_program(src), "go", machine=Machine(1),
                      services=[("loop", 1)])

    def test_conflicting_writers_detected(self):
        src = """
        go :- race(X), race(X).
        race(X) :- X := mine.
        """
        # Identical values are tolerated (no-op); conflicting ones are not.
        run_query(parse_program(src), "go", machine=Machine(1))
        src2 = """
        go :- a(X), b(X).
        a(X) :- X := 1.
        b(X) :- X := 2.
        """
        with pytest.raises(DoubleAssignmentError):
            run_query(parse_program(src2), "go", machine=Machine(1))

    def test_deadlock_report_names_the_stuck_goals(self):
        src = "go :- need(X).\nneed(X) :- X > 0 | t.\nt."
        with pytest.raises(DeadlockError) as err:
            run_query(parse_program(src), "go", machine=Machine(1))
        assert "need" in str(err.value)

    def test_budget_exhaustion_mid_protocol(self):
        src = """
        go :- open_port(P, S), flood(P), loop(S).
        flood(P) :- send_port(P, x), flood(P).
        loop([_ | In]) :- loop(In).
        loop([]).
        """
        with pytest.raises(StrandError, match="budget"):
            run_query(parse_program(src), "go", machine=Machine(1),
                      services=[("loop", 1)], max_reductions=2000)


class TestScaleStress:
    def test_thousand_leaf_tree(self):
        from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
        from repro.apps.trees import sequential_reduce
        from repro.core.api import reduce_tree

        tree = arithmetic_tree(1000, seed=42, ops=("add",), leaf_range=(0, 3))
        expected = sequential_reduce(tree, eval_arith_node)
        result = reduce_tree(tree, eval_arith_node, processors=8,
                             strategy="tr1", seed=1)
        assert result.value == expected
        assert result.metrics.reductions > 10_000

    def test_deep_stream_chain(self):
        src = """
        go(N, Out) :- gen(N, Xs), consume(Xs, 0, Out).
        gen(N, Xs) :- N > 0 | Xs := [N | Xs1], N1 := N - 1, gen(N1, Xs1).
        gen(0, Xs) :- Xs := [].
        consume([X | Xs], Acc, Out) :- Acc1 := Acc + X, consume(Xs, Acc1, Out).
        consume([], Acc, Out) :- Out := Acc.
        """
        from repro.strand.terms import deref

        result = run_query(parse_program(src), "go(20000, Out)",
                           machine=Machine(1), max_reductions=200_000)
        assert deref(result.bindings["Out"]) == 20000 * 20001 // 2
