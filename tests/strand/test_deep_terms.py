"""Deep-term stress tests: the term walkers must not recurse.

The seed implementations of ``rename_term``, ``instantiate``, and the
head-match walkers recursed down list spines, so a 100k-element list blew
the interpreter's recursion limit.  These tests pin the iterative rewrites
end to end: every walker that touches user terms has to survive a list far
deeper than any recursion limit.
"""

import pytest

from repro.strand.match import MatchResult, instantiate, match_head
from repro.strand.terms import (
    Cons,
    NIL,
    Struct,
    Var,
    copy_term,
    deref,
    list_to_python,
    make_list,
    rename_term,
    term_eq,
)

DEEP = 100_000


def deep_list(n: int = DEEP, tail=NIL) -> Cons:
    term = tail
    for i in range(n, 0, -1):
        term = Cons(i, term)
    return term


class TestDeepRename:
    def test_rename_deep_list(self):
        big = deep_list()
        out = rename_term(big)
        assert term_eq(out, big)

    def test_rename_shares_variables_at_depth(self):
        shared = Var("X")
        big = Cons(shared, deep_list(DEEP, tail=Cons(shared, NIL)))
        mapping = {}
        out = rename_term(big, mapping)
        assert deref(out.head) is deref(mapping[id(shared)])
        spine = out
        while type(deref(spine.tail)) is Cons:
            spine = deref(spine.tail)
        assert deref(spine.head) is deref(mapping[id(shared)])

    def test_copy_term_mixed_depth(self):
        term = deep_list(DEEP // 2, tail=Struct("t", (Var("Y"), deep_list(10))))
        out = copy_term(term, lambda v: Var(v.name))
        assert term_eq(out, term) is False  # fresh var != original var
        assert list_to_python(deep_list(10)) == list(range(1, 11))


class TestDeepMatch:
    def test_match_head_deep_ground_list(self):
        big = deep_list()
        head = Struct("p", (Var("Xs"),))
        result = match_head(head, Struct("p", (big,)))
        assert result.status == MatchResult.MATCHED

    def test_match_head_nonlinear_deep(self):
        # A repeated head variable forces the ground-equality walker over
        # the full depth of both lists.
        big = deep_list()
        x = Var("X")
        head = Struct("p", (x, x))
        result = match_head(head, Struct("p", (big, deep_list())))
        assert result.status == MatchResult.MATCHED

    def test_match_head_deep_mismatch(self):
        pattern_list = deep_list(DEEP, tail=Cons(Struct("end", (1,)), NIL))
        call_list = deep_list(DEEP, tail=Cons(Struct("end", (2,)), NIL))
        head = Struct("p", (pattern_list,))
        result = match_head(head, Struct("p", (call_list,)))
        assert result.status == MatchResult.FAILED

    def test_match_head_deep_suspend(self):
        hole = Var("Hole")
        call_list = deep_list(DEEP, tail=Cons(hole, NIL))
        pattern = deep_list(DEEP, tail=Cons(Struct("end", ()), NIL))
        head = Struct("p", (pattern,))
        result = match_head(head, Struct("p", (call_list,)))
        assert result.status == MatchResult.SUSPENDED
        assert deref(result.blocked[0]) is hole


class TestDeepInstantiate:
    def test_instantiate_deep_body(self):
        xs = Var("Xs")
        env = {id(xs): deep_list()}
        body = Struct("consume", (xs, Var("Out")))
        out = instantiate(body, env, {})
        assert list_to_python(deref(out.args[0]))[:3] == [1, 2, 3]

    def test_instantiate_fresh_at_depth(self):
        tail_var = Var("T")
        body = deep_list(DEEP, tail=tail_var)
        fresh: dict = {}
        out = instantiate(body, {}, fresh)
        assert id(tail_var) in fresh
        assert len(fresh) == 1


class TestDeepConversions:
    def test_list_to_python_deep(self):
        values = list_to_python(deep_list())
        assert len(values) == DEEP
        assert values[0] == 1 and values[-1] == DEEP

    def test_make_list_round_trip(self):
        data = list(range(DEEP))
        assert list_to_python(make_list(data)) == data


class TestDeepEndToEnd:
    def test_deep_stream_through_engine(self):
        # A producer/consumer pipeline threading a 20k-element stream
        # through spawn, match, instantiate, and bind on every element.
        from tests.helpers import run

        n = 20_000
        src = """
        go(N, Out) :- produce(N, Xs), total(Xs, 0, Out).
        produce(0, Xs) :- Xs := [].
        produce(N, Xs) :- N > 0 |
            Xs := [N | Rest], N1 := N - 1, produce(N1, Rest).
        total([], Acc, Out) :- Out := Acc.
        total([X | Xs], Acc, Out) :- Acc1 := Acc + X, total(Xs, Acc1, Out).
        """
        result = run(src, f"go({n}, Out)", max_reductions=500_000)
        assert result.value("Out") == n * (n + 1) // 2

    def test_deep_reduce_tree(self):
        # End-to-end motif run on a maximally unbalanced tree: rename_term
        # and instantiate walk the remaining left spine on every reduction.
        from repro.apps.trees import sequential_reduce, skewed_tree
        from repro.core.api import reduce_tree

        tree = skewed_tree(300, lambda rng: "add", lambda rng: rng.randint(1, 9))
        expected = sequential_reduce(tree, lambda op, lv, rv: lv + rv)
        result = reduce_tree(
            tree, "eval(add, L, R, V) :- V := L + R.",
            processors=4, strategy="tr1", seed=3,
        )
        assert result.value == expected


@pytest.mark.parametrize("depth", [10, 1000, DEEP])
def test_rename_depth_sweep(depth):
    assert term_eq(rename_term(deep_list(depth)), deep_list(depth))
