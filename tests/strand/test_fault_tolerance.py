"""Injected processor crashes at the runtime layer: abandoned and orphaned
processes, deterministic deadlock reports, quiescence after a crash, and
byte-identical same-seed failure runs."""

import pytest

from repro.errors import DeadlockError
from repro.machine import FaultPlan, Machine
from repro.strand import parse_program
from repro.strand.engine import StrandEngine
from repro.strand.terms import Struct, Var, deref


PRODUCER_CONSUMER = """
consume(X, Out) :- known(X) | Out := X.
produce(Go, X) :- known(Go) | X := 1.
"""


def run_crashed_producer():
    """Consumer on p2 waits for X; producer on p3 would bind it but is
    itself suspended when p3 crashes.  Returns the DeadlockError."""
    program = parse_program(PRODUCER_CONSUMER)
    machine = Machine(4, seed=5, faults=FaultPlan(crash={3: 10.0}))
    engine = StrandEngine(program, machine=machine)
    go, x, out = Var("Go"), Var("X"), Var("Out")
    engine.spawn(Struct("consume", (x, out)), proc=2)
    engine.spawn(Struct("produce", (go, x)), proc=3)
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    return engine, excinfo.value


class TestCrashSemantics:
    def test_suspensions_on_crashed_processor_become_orphans(self):
        engine, _ = run_crashed_producer()
        assert engine.machine.fault_stats.crashes == 1
        assert engine.machine.fault_stats.orphaned_suspensions == 1
        assert len(engine.scheduler.orphans) == 1
        assert engine.scheduler.orphans[0].goal.functor == "produce"
        assert not engine.machine.proc(3).alive
        assert engine.machine.proc(3).crashed_at == 10.0

    def test_deadlock_report_names_survivors_and_orphans(self):
        _, err = run_crashed_producer()
        message = str(err)
        assert "1 suspended process(es)" in message
        assert "p2: consume(" in message
        assert "orphaned by crashed processor(s)" in message
        assert "p3: produce(" in message

    def test_deadlock_report_is_deterministic(self):
        _, first = run_crashed_producer()
        _, second = run_crashed_producer()
        assert str(first) == str(second)

    def test_runnable_work_on_crashed_processor_is_abandoned(self):
        # An infinite spinner on p3 stops producing reductions at the crash.
        program = parse_program("spin(N) :- N1 := N + 1, spin(N1).\nidle.")
        machine = Machine(4, seed=0, faults=FaultPlan(crash={3: 25.0}))
        engine = StrandEngine(program, machine=machine)
        engine.spawn(Struct("spin", (0,)), proc=3)
        metrics = engine.run()
        assert metrics.crashes == 1
        assert machine.fault_stats.processes_abandoned >= 1
        assert machine.proc(3).clock <= 25.0 + 1.0

    def test_migration_requeues_runnable_work(self):
        program = parse_program("work(Out) :- Out := done.")
        machine = Machine(
            4, seed=0, faults=FaultPlan(crash={3: 5.0}, migrate=True)
        )
        engine = StrandEngine(program, machine=machine)
        out = Var("Out")
        # Ready far after the crash: still runnable at kill time, migrated.
        engine.spawn(Struct("work", (out,)), proc=3, ready=50.0)
        engine.run()
        assert str(deref(out)) == "done"
        assert machine.fault_stats.processes_migrated == 1
        assert machine.fault_stats.processes_abandoned == 0

    def test_spawns_to_dead_processor_are_lost(self):
        # Explicit placement onto a crashed processor: the message is
        # dropped and the rest of the computation deadlocks waiting for it.
        src = """
        go(Out) :- task(Out) @ 3, wait(Out).
        task(Out) :- Out := 42.
        wait(Out) :- known(Out) | true.
        """
        machine = Machine(4, seed=0, faults=FaultPlan(crash={3: 1.0}))
        engine = StrandEngine(parse_program(src), machine=machine)
        out = Var("Out")
        engine.spawn(Struct("go", (out,)), proc=1, ready=5.0)
        with pytest.raises(DeadlockError):
            engine.run()
        assert machine.fault_stats.messages_dropped == 1


SERVER = """
boot(P, Out) :- open_port(P0, S), P := P0, serve(S, 0, Out).
serve([bump | In], N, Out) :- N1 := N + 1, serve(In, N1, Out).
serve([], N, Out) :- Out := N.
emit(P) :- known(P) | send_port(P, bump).
emit_when(P, Go) :- known(Go) | send_port(P, bump).
"""


class TestQuiescenceAfterCrash:
    def test_close_once_when_a_client_processor_dies(self):
        # The server (a declared service, on immortal p1) must still see
        # end-of-stream exactly once after p3 — holding a never-ready
        # client — crashes; the orphan no longer blocks quiescence.
        program = parse_program(SERVER)
        machine = Machine(4, seed=2, faults=FaultPlan(crash={3: 20.0}))
        engine = StrandEngine(program, machine=machine,
                              services=[("serve", 3)])
        port, out, go = Var("P"), Var("Out"), Var("Go")
        engine.spawn(Struct("boot", (port, out)), proc=1)
        engine.spawn(Struct("emit", (port,)), proc=2)
        engine.spawn(Struct("emit", (port,)), proc=2)
        engine.spawn(Struct("emit_when", (port, go)), proc=3)
        metrics = engine.run()
        assert deref(out) == 2  # both live bumps counted, the orphan none
        assert engine._quiesce_closes == 1
        assert metrics.crashes == 1
        assert metrics.orphaned_suspensions == 1

    def test_server_on_killed_processor_orphans_and_deadlocks(self):
        # Kill the *server's* processor instead: end-of-stream can never be
        # consumed, so the waiting client deadlocks and the report blames
        # the orphaned server.
        program = parse_program(SERVER + "\nwait(Out) :- known(Out) | true.")
        machine = Machine(4, seed=2, faults=FaultPlan(crash={2: 20.0}))
        engine = StrandEngine(program, machine=machine,
                              services=[("serve", 3)])
        port, out = Var("P"), Var("Out")
        engine.spawn(Struct("boot", (port, out)), proc=2)
        engine.spawn(Struct("wait", (out,)), proc=1)
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert "orphaned by crashed processor(s)" in str(excinfo.value)
        assert "serve" in str(excinfo.value)
        # Quiescence never fired a close for the dead server's port.
        assert engine._quiesce_closes == 0


class TestSameSeedReplay:
    def _run(self):
        from repro.core.api import supervised_reduce_tree
        from repro.apps.arithmetic import arithmetic_tree, eval_arith_node

        # Crashes plus message *delays*: delays exercise the lossy RNG path
        # without severing the (unsupervised) monitor channel the way
        # drops can.
        machine = Machine(
            4, seed=11, trace=True,
            faults=FaultPlan(crash={3: 25.0}, delay_rate=0.05),
        )
        tree = arithmetic_tree(24, seed=3)
        result = supervised_reduce_tree(tree, eval_arith_node, machine=machine)
        return result, machine.trace.format(), result.metrics.summary()

    def test_identical_traces_and_metrics(self):
        (r1, trace1, summary1) = self._run()
        (r2, trace2, summary2) = self._run()
        assert r1.value == r2.value
        assert summary1 == summary2
        assert trace1 == trace2
        assert r1.metrics.makespan == r2.metrics.makespan
        assert r1.metrics.sup_retries == r2.metrics.sup_retries

    def test_different_seed_diverges(self):
        # Sanity check that the replay test has teeth: a different machine
        # seed re-draws placement and fault decisions.
        from repro.core.api import supervised_reduce_tree
        from repro.apps.arithmetic import arithmetic_tree, eval_arith_node

        tree = arithmetic_tree(24, seed=3)
        runs = []
        for seed in (11, 12):
            machine = Machine(4, seed=seed, trace=True,
                              faults=FaultPlan(crash={3: 25.0}))
            result = supervised_reduce_tree(
                tree, eval_arith_node, machine=machine
            )
            runs.append((result.value, machine.trace.format()))
        assert runs[0][0] == runs[1][0]  # supervision keeps the answer
        assert runs[0][1] != runs[1][1]  # but the schedule differs
