"""Foreign (Python) procedure tests — the multilingual interface."""

import pytest

from repro.errors import ForeignProcedureError
from repro.machine import Machine
from repro.strand import parse_program, run_query
from repro.strand.foreign import ForeignRegistry, from_python, to_python

from repro.strand.terms import Atom, Cons, NIL, Struct, Tup, Var, deref, make_list


class TestConversions:
    def test_to_python_scalars(self):
        assert to_python(5) == 5
        assert to_python("s") == "s"
        assert to_python(Atom("a")) is Atom("a")

    def test_to_python_list(self):
        assert to_python(make_list([1, 2, 3])) == [1, 2, 3]
        assert to_python(NIL) == []

    def test_to_python_nested(self):
        term = make_list([make_list([1]), Tup([2, 3])])
        assert to_python(term) == [[1], (2, 3)]

    def test_to_python_unbound_raises(self):
        from repro.strand.foreign import NotGround

        with pytest.raises(NotGround):
            to_python(Cons(1, Var("T")))

    def test_from_python_roundtrip(self):
        for value in (7, 2.5, "txt", [1, [2]], (1, 2), True, None):
            term = from_python(value)
            # bool/None map to atoms; everything else round-trips.
            if isinstance(value, bool):
                assert term is Atom("true")
            elif value is None:
                assert term is Atom("nil")
            else:
                assert to_python(term) == value

    def test_from_python_rejects_unknown(self):
        with pytest.raises(ForeignProcedureError):
            from_python(object())


class TestRegistry:
    def test_register_and_lookup(self):
        reg = ForeignRegistry()
        reg.register("f", 2, lambda x: x + 1)
        assert ("f", 2) in reg
        assert reg.lookup("f", 2).inputs == (0,)
        assert reg.lookup("f", 2).outputs == (1,)

    def test_duplicate_rejected(self):
        reg = ForeignRegistry()
        reg.register("f", 2, lambda x: x)
        with pytest.raises(ForeignProcedureError):
            reg.register("f", 2, lambda x: x)

    def test_explicit_positions(self):
        reg = ForeignRegistry()
        reg.register("split", 3, lambda xs: (xs[:1], xs[1:]), outputs=(1, 2))
        fp = reg.lookup("split", 3)
        assert fp.inputs == (0,)
        assert fp.outputs == (1, 2)

    def test_overlapping_positions_rejected(self):
        reg = ForeignRegistry()
        with pytest.raises(ForeignProcedureError):
            reg.register("f", 2, lambda x: x, inputs=(0, 1), outputs=(1,))

    def test_out_of_range_rejected(self):
        reg = ForeignRegistry()
        with pytest.raises(ForeignProcedureError):
            reg.register("f", 1, lambda: 0, outputs=(5,))

    def test_copy_is_independent(self):
        reg = ForeignRegistry()
        reg.register("f", 1, lambda: 0, outputs=(0,), inputs=())
        copy = reg.copy()
        copy.register("g", 1, lambda: 0, outputs=(0,), inputs=())
        assert ("g", 1) not in reg


def run_with(source, query, registry, processors=1):
    program = parse_program(source)
    return run_query(program, query, machine=Machine(processors),
                     foreign=registry)


class TestForeignCalls:
    def test_simple_call(self):
        reg = ForeignRegistry()
        reg.register("square", 2, lambda x: x * x)
        res = run_with("p(V) :- square(7, V).", "p(V)", reg)
        assert deref(res["V"]) == 49

    def test_waits_for_ground_inputs(self):
        reg = ForeignRegistry()
        reg.register("square", 2, lambda x: x * x)
        res = run_with("p(V) :- square(X, V), X := 6.", "p(V)", reg)
        assert deref(res["V"]) == 36

    def test_waits_for_deep_groundness(self):
        reg = ForeignRegistry()
        reg.register("total", 2, sum)
        res = run_with("p(V) :- total([1, X, 3], V), X := 2.", "p(V)", reg)
        assert deref(res["V"]) == 6

    def test_multiple_outputs(self):
        reg = ForeignRegistry()
        reg.register("divmod_", 4, lambda a, b: (a // b, a % b), outputs=(2, 3))
        res = run_with("p(Q, R) :- divmod_(17, 5, Q, R).", "p(Q, R)", reg)
        assert deref(res["Q"]) == 3
        assert deref(res["R"]) == 2

    def test_wrong_output_shape_raises(self):
        from repro.errors import StrandError

        reg = ForeignRegistry()
        reg.register("two", 3, lambda x: x, outputs=(1, 2))
        with pytest.raises(StrandError):
            run_with("p(A, B) :- two(1, A, B).", "p(A, B)", reg)

    def test_cost_charged(self):
        reg = ForeignRegistry()
        reg.register("heavy", 2, lambda x: x, cost=50.0)
        res = run_with("p(V) :- heavy(1, V).", "p(V)", reg)
        assert res.metrics.total_busy >= 50.0

    def test_cost_callable(self):
        reg = ForeignRegistry()
        reg.register("work", 2, lambda xs: len(xs), cost=lambda xs: 10.0 * len(xs))
        res = run_with("p(V) :- work([a, b, c], V).", "p(V)", reg)
        assert res.metrics.total_busy >= 30.0

    def test_list_output(self):
        reg = ForeignRegistry()
        reg.register("explode", 2, lambda n: list(range(n)))
        res = run_with("p(V) :- explode(3, V).", "p(V)", reg)
        assert to_python(res["V"]) == [0, 1, 2]

    def test_raw_foreign(self):
        def raw(engine, process, args, now):
            engine.bind(args[0], 123, process.proc, now)
            return 5.0

        reg = ForeignRegistry()
        reg.register("mystery", 1, raw, raw=True)
        res = run_with("p(V) :- mystery(V).", "p(V)", reg)
        assert deref(res["V"]) == 123

    def test_struct_argument_passed_through(self):
        seen = {}

        def inspect(term):
            seen["term"] = term
            return 1

        reg = ForeignRegistry()
        reg.register("inspect", 2, inspect)
        run_with("p(V) :- inspect(f(1, [2]), V).", "p(V)", reg)
        assert isinstance(seen["term"], Struct)
        assert seen["term"].functor == "f"
