"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.strand.parser import parse_program, parse_query, parse_rule, parse_term
from repro.strand.terms import Atom, Cons, NIL, Struct, Tup, Var, deref


class TestTerms:
    def test_atom(self):
        assert parse_term("foo") is Atom("foo")

    def test_numbers(self):
        assert parse_term("42") == 42
        assert parse_term("3.5") == 3.5
        assert parse_term("-7") == -7

    def test_string(self):
        assert parse_term('"abc"') == "abc"

    def test_variable_scoping(self):
        t = parse_term("f(X, X, Y)")
        assert t.args[0] is t.args[1]
        assert t.args[0] is not t.args[2]

    def test_each_underscore_distinct(self):
        t = parse_term("f(_, _)")
        assert t.args[0] is not t.args[1]

    def test_struct(self):
        t = parse_term("tree(V, L, R)")
        assert isinstance(t, Struct)
        assert t.indicator == ("tree", 3)

    def test_nested_struct(self):
        t = parse_term("f(g(h(1)))")
        assert t.args[0].args[0].functor == "h"

    def test_list_sugar(self):
        t = parse_term("[1, 2, 3]")
        assert isinstance(t, Cons)
        assert deref(t.head) == 1

    def test_empty_list(self):
        assert parse_term("[]") is NIL

    def test_list_with_tail(self):
        t = parse_term("[H | T]")
        assert isinstance(t.head, Var)
        assert isinstance(t.tail, Var)

    def test_tuple(self):
        t = parse_term("{1, a, X}")
        assert isinstance(t, Tup)
        assert t.arity == 3

    def test_empty_tuple(self):
        assert parse_term("{}").arity == 0

    def test_quoted_atom_functor(self):
        t = parse_term("'+'(1, 2)")
        assert t.functor == "+"


class TestOperators:
    def test_assignment(self):
        t = parse_term("X := Y + 1")
        assert t.functor == ":="
        assert t.args[1].functor == "+"

    def test_eq_as_assignment(self):
        assert parse_term("X = 5").functor == ":="

    def test_is_as_assignment(self):
        assert parse_term("X is 5").functor == ":="

    def test_precedence_mul_over_add(self):
        t = parse_term("1 + 2 * 3")
        assert t.functor == "+"
        assert t.args[1].functor == "*"

    def test_left_assoc(self):
        t = parse_term("1 - 2 - 3")
        assert t.functor == "-"
        assert t.args[0].functor == "-"

    def test_parentheses(self):
        t = parse_term("(1 + 2) * 3")
        assert t.functor == "*"

    def test_comparison(self):
        t = parse_term("N > 0")
        assert t.indicator == (">", 2)

    def test_mod(self):
        t = parse_term("X mod 3")
        assert t.functor == "mod"

    def test_intdiv(self):
        assert parse_term("X // 2").functor == "//"

    def test_placement(self):
        t = parse_term("reduce(R, RV) @ random")
        assert t.functor == "@"
        assert t.args[0].indicator == ("reduce", 2)
        assert deref(t.args[1]) is Atom("random")

    def test_placement_numeric_expr(self):
        t = parse_term("server(S) @ N")
        assert t.functor == "@"

    def test_unary_minus_expression(self):
        t = parse_term("-X")
        assert t.functor == "-"
        assert t.args[0] == 0


class TestRules:
    def test_fact(self):
        r = parse_rule("consumer([]).")
        assert r.guards == []
        assert r.body == []

    def test_zero_arity_fact(self):
        r = parse_rule("stop.")
        assert r.indicator == ("stop", 0)

    def test_rule_no_guard(self):
        r = parse_rule("go(N) :- producer(N, Xs, sync), consumer(Xs).")
        assert r.guards == []
        assert len(r.body) == 2

    def test_rule_with_guard(self):
        r = parse_rule("p(N) :- N > 0 | q(N).")
        assert len(r.guards) == 1
        assert len(r.body) == 1

    def test_multiple_guards(self):
        r = parse_rule("p(N, M) :- N > 0, M < 9 | q.")
        assert len(r.guards) == 2

    def test_commit_bar_vs_list_bar(self):
        r = parse_rule("p([X | Xs]) :- X > 0 | q(Xs).")
        assert len(r.guards) == 1
        assert isinstance(r.head.args[0], Cons)

    def test_head_variable_shared_with_body(self):
        r = parse_rule("p(X) :- q(X).")
        assert r.head.args[0] is r.body[0].args[0]

    def test_ampersand_separator(self):
        r = parse_rule("p :- a & b.")
        assert len(r.body) == 2

    def test_negative_number_in_head(self):
        r = parse_rule("emit1(-1, PV, Sol) :- Sol := PV.")
        assert r.head.args[0] == -1


class TestPrograms:
    def test_grouping_into_procedures(self):
        p = parse_program("p(1). p(2). q(X) :- p(X).")
        assert len(p) == 2
        assert len(p.procedure("p", 1).rules) == 2

    def test_figure_one_parses(self):
        from tests.helpers import FIGURE1_SOURCE

        p = parse_program(FIGURE1_SOURCE)
        assert ("go", 1) in p
        assert ("producer", 3) in p
        assert ("consumer", 1) in p
        assert len(p.procedure("producer", 3).rules) == 2

    def test_rule_count(self):
        p = parse_program("a. b. c :- a, b.")
        assert p.rule_count() == 3
        assert p.goal_count() == 2


class TestQueries:
    def test_single_goal(self):
        goals, varmap = parse_query("go(4)")
        assert len(goals) == 1
        assert varmap == {}

    def test_conjunction_and_vars(self):
        goals, varmap = parse_query("reduce(T, V), other(V)")
        assert len(goals) == 2
        assert set(varmap) == {"T", "V"}
        assert goals[0].args[1] is goals[1].args[0]


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")

    def test_trailing_input_term(self):
        with pytest.raises(ParseError):
            parse_term("f(1) g")

    def test_bad_head(self):
        with pytest.raises(ParseError):
            parse_program("42 :- p.")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_term("f(1, 2")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as err:
            parse_program("p :- q(.")
        assert err.value.line is not None
