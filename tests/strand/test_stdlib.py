"""Tests for the Strand standard library."""

from hypothesis import given, settings, strategies as st

from repro.machine import Machine
from repro.strand import run_query
from repro.strand.foreign import from_python, to_python
from repro.strand.stdlib import stdlib
from repro.strand.terms import Atom


def call(query: str, **bindings):
    """Run a query against the stdlib with Python-value substitutions
    spliced in as extra unification goals."""
    program = stdlib().copy()
    return run_query(program, query, machine=Machine(1))


def run1(goal_template: str, *py_args):
    """Build e.g. run1('append_list({0}, {1}, Out)', [1,2], [3])."""
    from repro.strand.engine import StrandEngine
    from repro.strand.parser import parse_query

    args = [from_python(a) for a in py_args]
    goals, varmap = parse_query(goal_template)
    # Substitute placeholders arg1..argN by position:
    def subst(term):
        from repro.strand.terms import Cons, Struct as S, Tup, Var, deref as d

        term = d(term)
        if isinstance(term, Var) and term.name.startswith("ARG"):
            return args[int(term.name[3:]) - 1]
        if isinstance(term, S):
            return S(term.functor, [subst(a) for a in term.args])
        if isinstance(term, Cons):
            return Cons(subst(term.head), subst(term.tail))
        if isinstance(term, Tup):
            return Tup([subst(a) for a in term.args])
        return term

    engine = StrandEngine(stdlib().copy(), machine=Machine(1))
    for goal in goals:
        engine.spawn(subst(goal))
    engine.run()
    out = varmap.get("Out")
    return to_python(out) if out is not None else None


class TestListOps:
    def test_append(self):
        assert run1("append_list(ARG1, ARG2, Out)", [1, 2], [3, 4]) == [1, 2, 3, 4]
        assert run1("append_list(ARG1, ARG2, Out)", [], [1]) == [1]
        assert run1("append_list(ARG1, ARG2, Out)", [1], []) == [1]

    def test_reverse(self):
        assert run1("reverse_list(ARG1, Out)", [1, 2, 3]) == [3, 2, 1]
        assert run1("reverse_list(ARG1, Out)", []) == []

    def test_length(self):
        assert run1("list_length(ARG1, Out)", [7, 8, 9]) == 3
        assert run1("list_length(ARG1, Out)", []) == 0

    def test_nth(self):
        assert run1("nth_item(2, ARG1, Out)", [10, 20, 30]) == 20
        assert run1("nth_item(1, ARG1, Out)", [10]) == 10

    def test_member(self):
        assert run1("member_check(20, ARG1, Out)", [10, 20]) is Atom("yes")
        assert run1("member_check(99, ARG1, Out)", [10, 20]) is Atom("no")
        assert run1("member_check(1, ARG1, Out)", []) is Atom("no")

    def test_sum_and_max(self):
        assert run1("sum_list(ARG1, Out)", [1, 2, 3, 4]) == 10
        assert run1("sum_list(ARG1, Out)", []) == 0
        assert run1("max_list(ARG1, Out)", [3, 9, 2]) == 9

    def test_take_drop(self):
        assert run1("take_n(2, ARG1, Out)", [1, 2, 3]) == [1, 2]
        assert run1("take_n(5, ARG1, Out)", [1, 2]) == [1, 2]
        assert run1("drop_n(2, ARG1, Out)", [1, 2, 3]) == [3]
        assert run1("drop_n(5, ARG1, Out)", [1, 2]) == []

    def test_zip(self):
        pairs = run1("zip_lists(ARG1, ARG2, Out)", [1, 2], [Atom("a"), Atom("b"), Atom("c")])
        assert len(pairs) == 2

    def test_range(self):
        assert run1("range_list(3, 6, Out)") == [3, 4, 5, 6]
        assert run1("range_list(4, 3, Out)") == []


@given(st.lists(st.integers(-100, 100), max_size=20),
       st.lists(st.integers(-100, 100), max_size=20))
@settings(max_examples=20, deadline=None)
def test_append_matches_python(xs, ys):
    assert run1("append_list(ARG1, ARG2, Out)", xs, ys) == xs + ys


@given(st.lists(st.integers(-100, 100), max_size=20))
@settings(max_examples=20, deadline=None)
def test_reverse_matches_python(xs):
    assert run1("reverse_list(ARG1, Out)", xs) == list(reversed(xs))


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
@settings(max_examples=20, deadline=None)
def test_sum_max_match_python(xs):
    assert run1("sum_list(ARG1, Out)", xs) == sum(xs)
    assert run1("max_list(ARG1, Out)", xs) == max(xs)
