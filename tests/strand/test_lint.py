"""Linter tests."""

from repro.strand.lint import lint_program
from repro.strand.parser import parse_program


def lint(source: str, **kw):
    return lint_program(parse_program(source), **kw)


def categories(warnings):
    return [w.category for w in warnings]


class TestUndefinedCalls:
    def test_typo_detected(self):
        ws = lint("go :- helper.\nhelpr.")
        assert "undefined-call" in categories(ws)

    def test_builtins_known(self):
        assert lint("go(X) :- X := 1, rand_num(5, _R).") == []

    def test_foreign_declared(self):
        src = "go(V) :- eval(a, 1, 2, V)."
        assert categories(lint(src)) == ["undefined-call"]
        assert lint(src, foreign=[("eval", 4)]) == []

    def test_arity_mismatch_detected(self):
        ws = lint("go :- p(1, 2).\np(_).")
        assert "undefined-call" in categories(ws)

    def test_unknown_guard(self):
        ws = lint("go(X) :- frobnicate(X) | t.\nt.")
        assert "undefined-call" in categories(ws)

    def test_known_guards_pass(self):
        assert lint("go(X, Y) :- X > 0, known(Y), integer(X) | use(X, Y).\nuse(_, _).") == []


class TestSingletons:
    def test_singleton_flagged(self):
        ws = lint("go(Lonely) :- t.\nt.")
        assert "singleton-variable" in categories(ws)
        assert any("Lonely" in w.message for w in ws)

    def test_underscore_prefix_suppresses(self):
        assert lint("go(_Lonely) :- t.\nt.") == []
        assert lint("go(_) :- t.\nt.") == []

    def test_used_twice_ok(self):
        assert lint("go(X, X).") == []

    def test_head_to_guard_counts(self):
        assert lint("go(X) :- X > 0 | t.\nt.") == []


class TestPragmas:
    def test_pragma_flagged(self):
        ws = lint("go :- t @ random.\nt.")
        assert "pragma-without-motif" in categories(ws)

    def test_allow_pragmas(self):
        ws = lint("go :- t @ random.\nt.", allow_pragmas=True)
        assert "pragma-without-motif" not in categories(ws)

    def test_numeric_placement_is_fine(self):
        assert lint("go :- t @ 3.\nt.") == []


class TestUnused:
    def test_unused_detected_with_entries(self):
        ws = lint("go :- a.\na.\norphan.", entries=[("go", 0)])
        assert any(w.category == "unused-procedure" and "orphan" in w.procedure
                   for w in ws)

    def test_no_entries_disables_check(self):
        assert lint("go :- a.\na.\norphan.") == []

    def test_reachable_not_flagged(self):
        ws = lint("go :- a.\na :- b.\nb.", entries=[("go", 0)])
        assert "unused-procedure" not in categories(ws)


class TestRealLibrariesAreClean:
    def test_motif_libraries_lint_clean(self):
        """Eat our own dog food: the shipped motif libraries produce no
        undefined-call or singleton warnings (modulo their declared
        interfaces)."""
        from repro.motifs.server import PORT_LIBRARY
        from repro.motifs.tree_reduce2 import TREE_REDUCE_LIBRARY
        from repro.strand.stdlib import STDLIB_SOURCE

        ws = lint_program(
            parse_program(PORT_LIBRARY),
            foreign=[("server", 2)],  # supplied by the transformed user code
        )
        assert categories(ws).count("undefined-call") == 0

        ws = lint_program(
            parse_program(TREE_REDUCE_LIBRARY),
            foreign=[("eval", 4), ("send", 2), ("nodes", 1), ("halt", 0)],
            allow_pragmas=True,
        )
        assert categories(ws).count("undefined-call") == 0

        assert lint_program(parse_program(STDLIB_SOURCE)) == []
