"""CLI and Gantt-rendering tests."""

import pytest

from repro.cli import build_parser, main
from repro.machine import Machine
from repro.machine.gantt import render_gantt
from repro.machine.trace import Trace

PROGRAM = """
go(N, Sum) :- accumulate(N, Sum).
accumulate(N, Sum) :- N > 0 |
    work(N, O) @ N,
    N1 := N - 1,
    accumulate(N1, Sum1),
    Sum := O + Sum1.
accumulate(0, Sum) :- Sum := 0.
work(N, O) :- O := N * N.
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.str"
    path.write_text(PROGRAM)
    return path


class TestRunCommand:
    def test_run_prints_bindings(self, program_file, capsys):
        code = main(["run", str(program_file), "go(5, Sum)", "-P", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sum = 55" in out
        assert "makespan" in out

    def test_quiet_suppresses_metrics(self, program_file, capsys):
        main(["run", str(program_file), "go(3, Sum)", "--quiet"])
        out = capsys.readouterr().out
        assert "Sum = 14" in out
        assert "makespan" not in out

    def test_gantt_flag(self, program_file, capsys):
        main(["run", str(program_file), "go(4, Sum)", "-P", "4", "--gantt"])
        out = capsys.readouterr().out
        assert "█" in out
        assert "p1" in out and "p4" in out

    def test_topology_option(self, program_file, capsys):
        code = main(["run", str(program_file), "go(4, Sum)", "-P", "4",
                     "--topology", "ring"])
        assert code == 0

    def test_missing_file(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope.str"), "go(1, S)"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_runtime_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.str"
        path.write_text("p(1).")
        code = main(["run", str(path), "p(2)"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.str"
        path.write_text("p :- q(")
        code = main(["run", str(path), "p"])
        assert code == 1

    def test_service_flag(self, tmp_path, capsys):
        path = tmp_path / "srv.str"
        path.write_text("""
        go(Out) :- open_port(P, S), send_port(P, item), loop(S, Out).
        loop([item | In], Out) :- loop(In, Out).
        loop([], Out) :- Out := finished.
        """)
        code = main(["run", str(path), "go(Out)", "--service", "loop/2"])
        assert code == 0
        assert "Out = finished" in capsys.readouterr().out

    def test_bad_service_spec(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", str(program_file), "go(1, S)", "--service", "bogus"])


class TestOtherCommands:
    def test_motifs_lists_registry(self, capsys):
        assert main(["motifs"]) == 0
        out = capsys.readouterr().out
        assert "tree-reduce-1" in out
        assert "graph-sssp" in out

    def test_demo_runs_all_strategies(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert out.count("value=24") == 4

    def test_parser_has_version(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--version"])


class TestGantt:
    def test_disabled_trace_message(self):
        text = render_gantt(Trace(enabled=False), 2, 10.0)
        assert "disabled" in text

    def test_rows_per_processor(self):
        trace = Trace(enabled=True)
        trace.record(0.0, 1, "reduce", "p")
        trace.record(5.0, 2, "send", "q")
        text = render_gantt(trace, 2, 10.0, width=20)
        lines = text.splitlines()
        assert any(line.startswith("p1") and "█" in line for line in lines)
        assert any(line.startswith("p2") and "↑" in line for line in lines)

    def test_zero_makespan_safe(self):
        trace = Trace(enabled=True)
        render_gantt(trace, 1, 0.0)

    def test_events_clamped_to_width(self):
        trace = Trace(enabled=True)
        trace.record(999.0, 1, "reduce", "p")  # beyond makespan
        text = render_gantt(trace, 1, 10.0, width=10)
        assert "█" in text

    def test_integration_with_engine(self):
        from repro.strand import parse_program, run_query

        machine = Machine(2, trace=True)
        result = run_query(parse_program(PROGRAM), "go(6, S)", machine=machine)
        text = render_gantt(machine.trace, 2, result.metrics.makespan)
        assert "p1" in text and "p2" in text


class TestObservabilityFlags:
    def test_profile_prints_cost_table(self, program_file, capsys):
        code = main(["run", str(program_file), "go(5, Sum)", "-P", "2",
                     "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-motif / per-predicate profile" in out
        assert "user" in out
        assert "accumulate/2" in out

    def test_trace_out_writes_jsonl(self, program_file, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        code = main(["run", str(program_file), "go(4, Sum)", "-P", "4",
                     "--trace-out", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert out_file.exists()
        assert "trace: wrote" in out
        from repro.machine import read_jsonl

        trace, meta = read_jsonl(out_file)
        assert len(trace) > 0
        assert meta["processors"] == 4
        assert meta["query"] == "go(4, Sum)"

    def test_trace_limit_warns_on_truncation(self, program_file, tmp_path,
                                             capsys):
        out_file = tmp_path / "run.jsonl"
        code = main(["run", str(program_file), "go(8, Sum)", "-P", "2",
                     "--trace-out", str(out_file), "--trace-limit", "10"])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace truncated" in captured.err

    def test_trace_ring_keeps_the_tail(self, program_file, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        code = main(["run", str(program_file), "go(8, Sum)", "-P", "2",
                     "--trace-out", str(out_file), "--trace-limit", "10",
                     "--trace-ring"])
        assert code == 0
        from repro.machine import read_jsonl

        trace, _ = read_jsonl(out_file)
        assert len(trace) == 10
        assert trace.events[-1].eid > 10  # the tail, not the head


class TestTraceCommand:
    @pytest.fixture
    def trace_file(self, program_file, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run", str(program_file), "go(4, Sum)", "-P", "4",
              "--trace-out", str(path)])
        capsys.readouterr()
        return path

    def test_summary(self, trace_file, capsys):
        code = main(["trace", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "events" in out
        assert "by kind:" in out
        assert "by motif:" in out
        assert "reduce=" in out

    def test_kind_filter_and_show(self, trace_file, capsys):
        code = main(["trace", str(trace_file), "--kind", "reduce",
                     "--show", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "matching kind=reduce" in out
        assert out.count(" reduce ") >= 3

    def test_chain(self, trace_file, capsys):
        from repro.machine import read_jsonl

        trace, _ = read_jsonl(trace_file)
        last = trace.events[-1].eid
        code = main(["trace", str(trace_file), "--chain", str(last)])
        out = capsys.readouterr().out
        assert code == 0
        assert "causal chain" in out
        assert f"#{last} <-" in out

    def test_chain_unknown_eid_fails(self, trace_file, capsys):
        code = main(["trace", str(trace_file), "--chain", "999999"])
        assert code == 1
        assert "no event" in capsys.readouterr().err

    def test_gantt_from_file(self, trace_file, capsys):
        code = main(["trace", str(trace_file), "--gantt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "█" in out

    def test_chrome_conversion(self, trace_file, tmp_path, capsys):
        import json

        out_file = tmp_path / "run.chrome.json"
        code = main(["trace", str(trace_file), "--chrome", str(out_file)])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]

    def test_missing_file(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err


class TestLintCommand:
    def test_clean_file(self, tmp_path, capsys):
        path = tmp_path / "clean.str"
        path.write_text("go(X) :- X := 1.")
        assert main(["lint", str(path)]) == 0
        assert "0 warning(s)" in capsys.readouterr().out

    def test_warnings_exit_code(self, tmp_path, capsys):
        path = tmp_path / "warn.str"
        path.write_text("go :- missing.")
        assert main(["lint", str(path)]) == 3
        out = capsys.readouterr().out
        assert "undefined-call" in out

    def test_foreign_and_entry_flags(self, tmp_path, capsys):
        path = tmp_path / "f.str"
        path.write_text("go(V) :- eval(a, 1, 2, V).\norphan.")
        code = main(["lint", str(path), "--foreign", "eval/4",
                     "--entry", "go/1"])
        out = capsys.readouterr().out
        assert code == 3
        assert "unused-procedure" in out
        assert "undefined-call" not in out

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.str"
        path.write_text("((")
        assert main(["lint", str(path)]) == 1


class TestShippedStrandPrograms:
    """The examples/strand/*.str programs run under the CLI."""

    import pathlib

    STRAND_DIR = pathlib.Path(__file__).parent.parent / "examples" / "strand"

    def test_figure1(self, capsys):
        assert main(["run", str(self.STRAND_DIR / "figure1.str"),
                     "go(4)", "--quiet"]) == 0

    def test_sieve(self, capsys):
        assert main(["run", str(self.STRAND_DIR / "sieve.str"),
                     "primes(30, Ps)", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Ps = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]" in out

    def test_pingpong(self, capsys):
        assert main(["run", str(self.STRAND_DIR / "pingpong.str"),
                     "rally(6, Winner)", "-P", "2", "--quiet",
                     "--service", "player/4"]) == 0
        out = capsys.readouterr().out
        assert "Winner = a" in out  # even rally count: first player wins

    def test_all_shipped_programs_lint(self):
        for path in sorted(self.STRAND_DIR.glob("*.str")):
            code = main(["lint", str(path)])
            assert code in (0, 3), path  # parse cleanly; warnings tolerated
