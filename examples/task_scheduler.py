#!/usr/bin/env python
"""The scheduler motif: §1's reuse-through-modification example.

Three runs of the same bag-of-tasks application:

1. the **flat** manager/worker scheduler (the Argonne Schedule model:
   server 1 holds the queue and the idle-worker list);
2. the **hierarchical** variant — the modification §1 describes
   ("introducing additional levels in its manager/worker hierarchy");
3. a **dependent-task** workload using declared data dependencies
   ("A user provides a set of procedures and defines data dependencies
   between them; the system schedules their execution appropriately").

The user interface is a single pragma: ``work(N, O) @ task``.

Run:  python examples/task_scheduler.py
"""

from repro.analysis import Table
from repro.apps.taskbag import TASKBAG_SOURCE, expected_sum, register_taskbag
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.scheduler import scheduled_application
from repro.strand.parser import parse_program
from repro.strand.terms import Struct, Var, deref

TASKS = 40
PROCESSORS = 9
COST = 35.0

DEPENDENT_APP = """
% Pairwise tree sum where every combine step is itself a scheduled task
% that depends on its two operands.
tsum(leaf(X), Out) :- Out := X.
tsum(tree(L, R), Out) :-
    combine(O1, O2, Out) @ task,
    tsum(L, O1),
    tsum(R, O2).
"""


def run_bag(hierarchical: bool):
    app = parse_program(TASKBAG_SOURCE, name="taskbag")
    motif = scheduled_application(
        entry=("main", 2),
        hierarchical=hierarchical,
        outputs={("work", 2): 1},
        sync_outputs={("work", 2): 1},
    )
    applied = motif.apply(app)
    applied.foreign_setup.append(lambda reg: register_taskbag(reg, cost=COST))
    applied.user_names.add("work")
    total = Var("Sum")
    boot = Struct("boot", (TASKS, total, Var("Done")))
    if hierarchical:
        goal = Struct("create", (PROCESSORS, Struct("hinit", (4, boot))))
    else:
        goal = Struct("create", (PROCESSORS, Struct("minit", (boot,))))
    _, metrics = run_applied(applied, goal, Machine(PROCESSORS, seed=1))
    assert deref(total) == expected_sum(TASKS)
    return metrics


def run_dependent(depth: int = 5):
    app = parse_program(DEPENDENT_APP, name="tsum")
    motif = scheduled_application(
        entry=("tsum", 2),
        outputs={("combine", 3): 2},
        sync_outputs={("combine", 3): 2},
        dependencies={("combine", 3): (0, 1)},  # both operands must be known
    )
    applied = motif.apply(app)
    applied.foreign_setup.append(
        lambda reg: reg.register("combine", 3, lambda a, b: a + b, cost=25.0)
    )
    applied.user_names.add("combine")

    def tree(d):
        if d == 0:
            return Struct("leaf", (1,))
        return Struct("tree", (tree(d - 1), tree(d - 1)))

    out = Var("Out")
    goal = Struct(
        "create",
        (PROCESSORS,
         Struct("minit", (Struct("boot", (tree(depth), out, Var("D"))),))),
    )
    _, metrics = run_applied(applied, goal, Machine(PROCESSORS, seed=2))
    return deref(out), metrics


def main() -> None:
    table = Table(
        f"Bag of {TASKS} tasks on {PROCESSORS} processors",
        ["scheduler", "makespan", "manager busy", "manager share",
         "efficiency"],
    )
    for name, hierarchical in (("flat", False), ("hierarchical", True)):
        m = run_bag(hierarchical)
        table.add(name, m.makespan, m.busy[0], m.busy[0] / m.total_busy,
                  m.efficiency)
    table.note("the hierarchy moves dispatch/completion traffic off the "
               "top manager (paper §1)")
    table.show()

    value, metrics = run_dependent(depth=5)
    print(f"dependent-task tree sum: {value} (expect 32) — tasks were "
          f"submitted only when their operands were known, so the worker "
          f"pool never deadlocked; makespan {metrics.makespan:.0f}")


if __name__ == "__main__":
    main()
