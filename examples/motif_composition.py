#!/usr/bin/env python
"""Motif composition, stage by stage — the paper's Figures 5 and 6.

Tree-Reduce-1 = Server ∘ Rand ∘ Tree1.  This example applies the stack one
motif at a time to a user program consisting of *nothing but* a node
evaluation function, and prints the program after every stage — the exact
progression Figure 5 shows:

1. after **Tree1**: the four-line divide-and-conquer reduce with the
   ``@ random`` pragma;
2. after **Rand**: the pragma expanded to ``nodes/rand_num/send`` and the
   synthesized ``server/1`` dispatcher;
3. after **Server**: the ``DT`` argument threaded everywhere, the
   operations rewritten to ``length``/``distribute``/``broadcast``, and the
   server-network library linked in.

Because the output of each motif is *itself a program*, each stage is
readable, printable, and runnable — the property the paper's whole
composition story rests on.

Run:  python examples/motif_composition.py
"""

from repro.analysis import banner, measure
from repro.core.motif import ComposedMotif
from repro.motifs.random_map import rand_motif
from repro.motifs.server import server_motif
from repro.motifs.tree_reduce1 import tree1_motif
from repro.strand.parser import parse_program

USER_PROGRAM = """
% The entire user contribution: a node evaluation function.
eval(add, L, R, Value) :- Value := L + R.
eval(mul, L, R, Value) :- Value := L * R.
"""


def main() -> None:
    application = parse_program(USER_PROGRAM, name="arithmetic-eval")
    motif = ComposedMotif([tree1_motif(), rand_motif(), server_motif()])

    print(f"Composition: Tree-Reduce-1 = {motif.name}")
    print(f"User program: {measure(application).rules} rules\n")

    stages = motif.apply_staged(application)
    for stage_motif, applied in zip(motif.stages(), stages):
        size = measure(applied.program)
        banner(
            f"after {stage_motif.name}: "
            f"{size.rules} rules, {size.goals} goals, {size.lines} lines"
        )
        print(applied.program.pretty())

    # And the final stage is executable:
    from repro.apps.arithmetic import paper_example_tree
    from repro.apps.trees import tree_term
    from repro.core.api import run_applied
    from repro.machine import Machine
    from repro.strand.terms import Struct, Var, deref

    value = Var("Value")
    goal = Struct("create", (4, Struct("reduce", (tree_term(paper_example_tree()),
                                                  value))))
    run_applied(stages[-1], goal, Machine(4, seed=1))
    banner(f"running the composed program: Value = {deref(value)}")


if __name__ == "__main__":
    main()
