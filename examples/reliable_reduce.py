#!/usr/bin/env python
"""Reliable tree reduction riding through a healing network partition.

The Reliable motif (``Server ∘ Reliable ∘ Rand ∘ Tree1``) rewrites every
``send`` into an acked ``rsend``: each message carries a sequence token,
races its ack against a retransmit timer with capped exponential
backoff, and the receive side acks-then-dedups so retransmissions and
network duplicates dispatch exactly once.

This script reduces the same 16-leaf arithmetic tree four times on a
4-processor virtual machine:

1. fault-free — every message acked on first post, zero retransmits;
2. processors {3, 4} cut off from t=30 to t=120 — messages crossing the
   cut are lost until the heal, then retransmission delivers them all;
3. 30% duplicate delivery — the seen-set suppresses every replay;
4. 20% message drops with the Supervise layer composed underneath
   (``Server ∘ Reliable ∘ Rand ∘ Supervise ∘ Tree1′``) — even a server
   whose *bootstrap* spawn was lost (the one message the protocol cannot
   protect) is reported unreachable, and supervision re-dispatches its
   work elsewhere.

Fault injection is deterministic — partitions, drops, and duplicates all
come from the machine's seeded RNG — so every line this prints is
exactly reproducible.

Run:  python examples/reliable_reduce.py
"""

from repro import reliable_reduce_tree
from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.machine import FaultPlan, Machine, Partition

PROCESSORS = 4


def main() -> None:
    tree = arithmetic_tree(16, seed=3)

    table = Table(
        "Reliable Tree-Reduce under message faults (P=4)",
        ["scenario", "value", "virtual time", "lost", "retransmit",
         "acks", "dedup", "unreachable"],
    )

    scenarios = [
        ("fault-free", 0, None, {}),
        ("partition {p3,p4} t=30..120", 1,
         FaultPlan(partitions=(Partition(frozenset({3, 4}), 30.0, 120.0),)),
         {}),
        ("30% duplicates", 0, FaultPlan(duplicate_rate=0.3), {}),
        ("20% drops + Supervise", 2, FaultPlan(drop_rate=0.2),
         {"supervise": True, "sup_timeout": 400.0}),
    ]
    baseline = None
    for label, seed, faults, overrides in scenarios:
        machine = Machine(PROCESSORS, seed=seed, faults=faults)
        result = reliable_reduce_tree(
            tree, eval_arith_node, machine=machine, **overrides
        )
        m = result.metrics
        table.add(
            label, result.value, m.makespan,
            m.messages_dropped + m.partition_dropped,
            m.rel_retransmits, m.rel_acks,
            m.rel_duplicates_suppressed, m.rel_unreachable,
        )
        if result.engine.rel_state.unreachable:
            nodes = sorted({n for _, n, _ in result.engine.rel_state.unreachable})
            print(f"  [{label}] destinations reported unreachable: "
                  f"{', '.join(f'p{n}' for n in nodes)}")
        if baseline is None:
            baseline = result.value
        else:
            assert result.value == baseline, "reliable delivery kept the answer"
    table.note(
        "every lost message is retransmitted after the cut heals; duplicates "
        "dispatch exactly once; unreachable servers are reported, not hung on"
    )
    table.show()


if __name__ == "__main__":
    main()
