#!/usr/bin/env python
"""Supervised tree reduction surviving injected processor crashes.

The Supervise motif (``Server ∘ Rand ∘ Supervise ∘ Tree1′``) turns the
five-line tree reduction into a fault-tolerant one: each right-branch
subtree runs as a *supervised attempt* — a fresh copy raced against a
timeout — retried with exponential backoff when its processor crashes,
and degraded to a fallback value when retries run out.

This script reduces the same 32-leaf arithmetic tree three times on a
4-processor virtual machine with the same seed:

1. fault-free,
2. with processor 3 crashing at virtual time 25 (recovered: same answer),
3. with half the machine crashing and a single retry (degraded: the run
   still terminates and reports how much of the answer it lost).

Fault injection is deterministic — the crash schedule and every
drop/delay draw come from the machine's seeded RNG — so every line this
prints is exactly reproducible.

Run:  python examples/supervised_reduce.py
"""

from repro import supervised_reduce_tree
from repro.analysis import Table
from repro.apps.arithmetic import arithmetic_tree, eval_arith_node
from repro.machine import FaultPlan, Machine

PROCESSORS = 4
SEED = 11


def main() -> None:
    tree = arithmetic_tree(32, seed=3)

    table = Table(
        "Supervised Tree-Reduce under injected crashes (P=4, seed=11)",
        ["scenario", "value", "virtual time", "crashes", "retries",
         "degraded"],
    )

    scenarios = [
        ("fault-free", None, {}),
        ("crash p3 @ t=25", FaultPlan(crash={3: 25.0}), {}),
        ("crash p2+p3 @ t=25, 1 retry",
         FaultPlan(crash={2: 25.0, 3: 25.0}),
         {"retries": 1, "timeout": 400.0}),
    ]
    baseline = None
    for label, faults, overrides in scenarios:
        machine = Machine(PROCESSORS, seed=SEED, faults=faults)
        result = supervised_reduce_tree(
            tree, eval_arith_node, machine=machine, **overrides
        )
        m = result.metrics
        table.add(label, result.value, m.makespan, m.crashes,
                  m.sup_retries, m.sup_degraded)
        if baseline is None:
            baseline = result.value
        elif not overrides:
            assert result.value == baseline, "supervision recovered the answer"
    table.note(
        "retries recover the exact answer; exhausted retries degrade to the "
        "fallback instead of hanging"
    )
    table.show()


if __name__ == "__main__":
    main()
