#!/usr/bin/env python
"""Grid relaxation with the grid motif (§4 "grid problems").

A 2-D Jacobi relaxation decomposed into row strips: each virtual processor
owns one strip and exchanges boundary rows with its neighbours through
streams every iteration — the DIME model from §1 (the system owns the mesh
and the communication; the user supplies the per-strip computation as
foreign procedures).

The distributed result is checked against a NumPy reference.

Run:  python examples/jacobi_grid.py
"""

import numpy as np

from repro.analysis import Table
from repro.apps.gridapp import (
    jacobi_reference,
    join_strips,
    make_grid,
    register_grid,
    split_strips,
)
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.grid import grid_goals, grid_motif
from repro.strand.foreign import from_python, to_python
from repro.strand.program import Program

ROWS, COLS = 24, 12
ITERATIONS = 8


def run_jacobi(workers: int):
    applied = grid_motif().apply(Program(name="jacobi"))
    # unit: virtual cost per cell per sweep — large enough that compute,
    # not protocol, dominates (a realistic stencil).
    applied.foreign_setup.append(lambda reg: register_grid(reg, unit=0.5))
    applied.user_names.update({"top_row", "bottom_row", "sweep"})
    grid = make_grid(ROWS, COLS)
    strips = [from_python(s) for s in split_strips(grid, workers)]
    goals, results = grid_goals(strips, ITERATIONS)
    _, metrics = run_applied(applied, goals, Machine(workers, seed=0))
    final = join_strips([to_python(r) for r in results])
    return grid, final, metrics


def main() -> None:
    table = Table(
        f"Jacobi relaxation, {ROWS}x{COLS} grid, {ITERATIONS} sweeps",
        ["workers", "virtual time", "speedup", "efficiency",
         "boundary messages", "matches numpy"],
    )
    base = None
    for workers in (1, 2, 4, 8):
        grid, final, metrics = run_jacobi(workers)
        ok = np.allclose(final, jacobi_reference(grid, ITERATIONS))
        if base is None:
            base = metrics.makespan
        table.add(workers, metrics.makespan, base / metrics.makespan,
                  metrics.efficiency, metrics.messages, ok)
    table.note("strip decomposition: boundary traffic grows with workers, "
               "compute time shrinks")
    table.show()


if __name__ == "__main__":
    main()
