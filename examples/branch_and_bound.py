#!/usr/bin/env python
"""Branch-and-bound knapsack with the B&B motif (§3.6 "specialized motifs").

The distributed search prunes subtrees against a machine-wide incumbent
(broadcast through the server network) and terminates through a manually
written short-circuit chain — the §3.3 idiom in library form.  Results are
checked against an exact dynamic-programming solver.

Run:  python examples/branch_and_bound.py
"""

from repro.analysis import Table
from repro.apps.knapsack import (
    random_knapsack,
    register_knapsack,
    root_node,
    solve_reference,
)
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.bnb import bnb_stack
from repro.strand.foreign import from_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Var, deref

ITEMS = 12


def run(problem, processors, prune=True, seed=1):
    applied = bnb_stack().apply(Program(name="knapsack"))
    applied.foreign_setup.append(
        lambda reg: register_knapsack(reg, problem, prune=prune)
    )
    applied.user_names.update({"bound_bb", "leaf_bb", "value_bb", "expand_bb"})
    best = Var("Best")
    goal = Struct("create", (processors,
                             Struct("binit", (from_python(root_node()), best))))
    _, metrics = run_applied(applied, goal, Machine(processors, seed=seed),
                             watched=[("step", 5)])
    return deref(best), metrics


def main() -> None:
    problem = random_knapsack(ITEMS, seed=7)
    optimum = solve_reference(problem)
    print(f"{ITEMS}-item knapsack, capacity {problem.capacity}; "
          f"exact optimum (DP): {optimum}\n")

    table = Table(
        "Distributed branch-and-bound",
        ["P", "pruning", "result", "exact", "nodes explored", "virtual time"],
    )
    for processors in (1, 2, 4, 8):
        best, metrics = run(problem, processors)
        table.add(processors, True, best, best == optimum,
                  metrics.tasks_started, metrics.makespan)
        assert best == optimum
    best, metrics = run(problem, 4, prune=False)
    table.add(4, False, best, best == optimum, metrics.tasks_started,
              metrics.makespan)
    table.note("pruning removes the nodes the incumbent bound rules out; "
               "the answer never changes")
    table.show()


if __name__ == "__main__":
    main()
