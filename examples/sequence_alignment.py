#!/usr/bin/env python
"""The paper's motivating application: multiple RNA sequence alignment.

§3: "This application first generates a binary 'phylogenetic tree', in
which subtrees represent clusters of more closely related organisms.
Reduction of this tree using an 'align-node' function produces the desired
alignment."

Pipeline (all built in this repository — see DESIGN.md for the
substitutions standing in for the paper's proprietary rRNA data):

1. evolve a synthetic family of related RNA sequences,
2. estimate pairwise distances (Needleman–Wunsch + Jukes–Cantor),
3. build the UPGMA guide tree,
4. reduce the tree with the profile–profile ``align_node`` operator under
   Tree-Reduce-1 and Tree-Reduce-2, and compare their machine behaviour.

Run:  python examples/sequence_alignment.py
"""

from repro import reduce_tree
from repro.analysis import Table
from repro.apps.bio import (
    align_cost,
    align_node,
    alignment_workload,
    sum_of_pairs,
)
from repro.apps.trees import leaf_count, tree_depth

N_SEQUENCES = 8
PROCESSORS = 4


def main() -> None:
    family, tree = alignment_workload(
        n_sequences=N_SEQUENCES, root_length=40, seed=7
    )
    print(f"Synthetic family: {len(family.sequences)} related RNA sequences")
    for name, seq in zip(family.names, family.sequences):
        print(f"  {name}  {seq}")
    print(f"\nUPGMA guide tree: {leaf_count(tree)} leaves, depth {tree_depth(tree)}")

    table = Table(
        "Guide-tree reduction with the align-node operator",
        ["strategy", "virtual time", "messages", "peak live aligns",
         "sum-of-pairs score"],
    )
    alignments = {}
    for strategy in ("sequential", "tr1", "tr2"):
        result = reduce_tree(
            tree,
            align_node,
            processors=PROCESSORS,
            strategy=strategy,
            seed=11,
            eval_cost=align_cost,  # cost = the DP work of each align-node
        )
        alignments[strategy] = result.value
        m = result.metrics
        table.add(strategy, m.makespan, m.messages, m.max_peak_live_tasks,
                  sum_of_pairs(result.value))
    table.note("Tree-Reduce-2 keeps at most ONE alignment in flight per "
               "processor (the paper's memory argument, §3.5)")
    table.show()

    assert alignments["tr1"] == alignments["tr2"] == alignments["sequential"]

    print("Final multiple alignment (Tree-Reduce-2):")
    for row in alignments["tr2"]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
