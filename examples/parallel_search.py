#!/usr/bin/env python
"""Parallel search with the search motif: counting N-queens solutions.

§1 cites or-parallel Prolog ("the user provides logic clauses that specify
a search problem and the system explores the corresponding search tree");
§4 lists search among the areas "in which motifs seem appropriate".  The
search motif fans subtree exploration out with the paper's own Random
motif; the user supplies just two foreign procedures, ``expand`` and
``sol``.

Run:  python examples/parallel_search.py
"""

from repro.analysis import Table
from repro.apps.queens import KNOWN_COUNTS, register_queens, root_node
from repro.core.api import run_applied
from repro.machine import Machine
from repro.motifs.search import search_stack
from repro.strand.foreign import from_python
from repro.strand.program import Program
from repro.strand.terms import Struct, Var, deref

N = 7
DEPTH = 2  # levels of remote fan-out before exploration goes local


def count_queens(processors: int, seed: int = 0):
    applied = search_stack().apply(Program(name="queens"))
    applied.foreign_setup.append(register_queens)
    applied.user_names.update({"expand", "sol"})
    machine = Machine(processors, seed=seed)
    count = Var("Count")
    goal = Struct(
        "create",
        (processors,
         Struct("boot", (from_python(root_node(N)), count, DEPTH, Var("Done")))),
    )
    _, metrics = run_applied(applied, goal, machine)
    return deref(count), metrics


def main() -> None:
    table = Table(
        f"{N}-queens under the search motif (expected {KNOWN_COUNTS[N]} solutions)",
        ["P", "solutions", "virtual time", "speedup", "efficiency", "messages"],
    )
    base = None
    for processors in (1, 2, 4, 8):
        count, metrics = count_queens(processors, seed=3)
        assert count == KNOWN_COUNTS[N]
        if base is None:
            base = metrics.makespan
        table.add(processors, count, metrics.makespan,
                  base / metrics.makespan, metrics.efficiency,
                  metrics.messages)
    table.note("same solution count on every machine size; virtual time falls")
    table.show()


if __name__ == "__main__":
    main()
