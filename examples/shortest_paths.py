#!/usr/bin/env python
"""Distributed shortest paths with the graph motif (§4 "graph theory").

A vertex-partitioned graph, asynchronous chaotic relaxation, no global
synchronization: the computation is finished exactly when the message
system goes quiet, and the engine's quiescence detection turns that into
end-of-stream for every worker.  Results are checked against NetworkX.

Run:  python examples/shortest_paths.py
"""

from repro.analysis import Table
from repro.apps.graphs import grid_graph, random_graph, reference_distances, run_sssp

SOURCE = 0


def main() -> None:
    table = Table(
        "Single-source shortest paths by chaotic relaxation",
        ["graph", "nodes", "workers", "matches networkx", "virtual time",
         "relaxation messages"],
    )
    for name, adj in (("6x6 lattice", grid_graph(6, 6)),
                      ("random n=48 p=0.09", random_graph(48, 0.09, seed=5))):
        ref = reference_distances(adj, SOURCE)
        for workers in (1, 2, 4, 8):
            got, metrics = run_sssp(adj, SOURCE, workers=workers, seed=2)
            assert got == ref
            table.add(name, len(adj), workers, got == ref,
                      metrics.makespan, metrics.sends)
    table.note("relaxation is order-independent: every schedule converges "
               "to the exact BFS distances")
    table.show()


if __name__ == "__main__":
    main()
