#!/usr/bin/env python
"""Quickstart: reduce the paper's example expression tree four ways.

The paper's §3.1 example — an arithmetic expression tree whose reduction
"yields the value 24 at the root" — evaluated with:

* the sequential baseline,
* the static partition (§3.1),
* Tree-Reduce-1 = Server ∘ Rand ∘ Tree1 (§3.4), and
* Tree-Reduce-2 = Server ∘ TreeReduce (§3.5),

each on a 4-processor virtual multicomputer.  The node evaluator is a plain
Python function registered as the foreign procedure ``eval/4`` — the
paper's multilingual model (coordination in the high-level language,
computation in the low-level one).

Run:  python examples/quickstart.py
"""

from repro import reduce_tree
from repro.analysis import Table
from repro.apps.arithmetic import eval_arith_node, paper_example_tree

PROCESSORS = 4


def main() -> None:
    tree = paper_example_tree()

    table = Table(
        "Paper §3.1 example tree on 4 virtual processors",
        ["strategy", "value", "virtual time", "reductions", "messages",
         "peak live evals"],
    )
    for strategy in ("sequential", "static", "tr1", "tr2"):
        result = reduce_tree(
            tree,
            eval_arith_node,          # Python callable as foreign eval/4
            processors=PROCESSORS,
            strategy=strategy,
            seed=42,
        )
        assert result.value == 24, "the paper's stated root value"
        m = result.metrics
        table.add(strategy, result.value, m.makespan, m.reductions,
                  m.messages, m.max_peak_live_tasks)
    table.note("every strategy computes 24 — the schedules differ, the answer cannot")
    table.show()

    # The same thing with the evaluator written *in the language*:
    from repro.apps.arithmetic import EVAL_SOURCE

    result = reduce_tree(tree, EVAL_SOURCE, processors=PROCESSORS,
                         strategy="tr1", seed=42)
    print(f"Strand-source evaluator under Tree-Reduce-1: value = {result.value}")


if __name__ == "__main__":
    main()
